//! Cross-configuration integration tests: functional results must be
//! invariant across ranks, channels, schedulers and row policies —
//! those knobs change *timing*, never *data*.

use gsdram::dram::controller::{RowPolicy, SchedPolicy};
use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::Program;
use gsdram::system::trace::{TraceRecorder, TraceReplayer};
use gsdram::workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};
use std::io::BufReader;

fn run_config(cfg: SystemConfig) -> (u64, u64) {
    let mut m = Machine::new(cfg);
    let table = Table::create(&mut m, Layout::GsDram, 4096);
    let mut p = analytics(table, &[0, 3]);
    let r = {
        let mut programs: Vec<&mut dyn Program> = vec![&mut p];
        m.run(&mut programs, StopWhen::AllDone)
    };
    let want = table.expected_column_sum(0) + table.expected_column_sum(3);
    (r.results[0], want)
}

#[test]
fn results_invariant_across_memory_configurations() {
    let base = || SystemConfig::table1(1, 8 << 20);
    let mut sums = Vec::new();
    for cfg in [
        base(),
        base().with_prefetch(),
        base().with_ranks(2),
        base().with_channels(2),
        base().with_channels(4).with_ranks(2),
        {
            let mut c = base();
            c.controller.policy = SchedPolicy::Fcfs;
            c
        },
        {
            let mut c = base();
            c.controller.row_policy = RowPolicy::Closed;
            c
        },
    ] {
        let (got, want) = run_config(cfg);
        assert_eq!(got, want);
        sums.push(got);
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn transactions_deterministic_across_ranks() {
    // Same seed, different rank count: identical committed state.
    let run = |ranks: usize| {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20).with_ranks(ranks));
        let table = Table::create(&mut m, Layout::GsDram, 2048);
        let spec = TxnSpec {
            read_only: 1,
            write_only: 2,
            read_write: 1,
        };
        let mut p = transactions(table, spec, 300, 99);
        {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone);
        }
        m.drain_caches();
        let image: Vec<u64> = (0..2048u64)
            .flat_map(|t| (0..8).map(move |f| (t, f)))
            .map(|(t, f)| m.peek(table.field_addr(t, f)))
            .collect();
        image
    };
    assert_eq!(run(1), run(2));
}

#[test]
fn workload_trace_round_trips_through_a_real_run() {
    // Record a transaction run, replay it on a fresh identical machine:
    // cycle counts, DRAM traffic and final memory all match.
    let build = || {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20));
        let table = Table::create(&mut m, Layout::GsDram, 2048);
        (m, table)
    };
    let (mut m1, table1) = build();
    let spec = TxnSpec {
        read_only: 2,
        write_only: 1,
        read_write: 0,
    };
    let inner = transactions(table1, spec, 200, 7);
    let mut rec = TraceRecorder::new(inner, Vec::new());
    let r1 = {
        let mut programs: Vec<&mut dyn Program> = vec![&mut rec];
        m1.run(&mut programs, StopWhen::AllDone)
    };
    let (_, trace) = rec.into_parts();

    let (mut m2, _table2) = build();
    let mut rep = TraceReplayer::new(BufReader::new(&trace[..]));
    let r2 = {
        let mut programs: Vec<&mut dyn Program> = vec![&mut rep];
        m2.run(&mut programs, StopWhen::AllDone)
    };
    assert_eq!(r1.cpu_cycles, r2.cpu_cycles);
    assert_eq!(r1.dram.reads, r2.dram.reads);
    assert_eq!(r1.dram.writes, r2.dram.writes);
    m1.drain_caches();
    m2.drain_caches();
    for t in 0..2048u64 {
        for f in 0..8 {
            let a = table1.field_addr(t, f);
            assert_eq!(m1.peek(a), m2.peek(a), "tuple {t} field {f}");
        }
    }
}
