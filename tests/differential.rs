//! Differential testing: the full machine (caches + coherence + DRAM +
//! shuffle/CTL datapath) against a flat reference memory.
//!
//! For any sequence of `pattload`/`pattstore` operations, every value
//! the machine returns must equal what an ideal flat memory would
//! return, and the drained final memory image must match exactly. This
//! catches coherence bugs (stale overlapping lines, missed flushes,
//! wrong scatter routing) that no single-scenario test would.
//!
//! Op streams come from a deterministic PRNG
//! ([`gsdram::core::rng::SplitMix`]) instead of `proptest`, keeping the
//! workspace dependency-free and failures bit-reproducible.

use gsdram::cache::cache::LineKey;
use gsdram::cache::overlap::OverlapCalc;
use gsdram::core::rng::SplitMix;
use gsdram::core::{GsDramConfig, PatternId};
use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::{Op, Program, ScriptedProgram};
use std::collections::HashMap;

/// The flat-memory address a `(byte address, pattern)` access actually
/// touches: word `(addr % 64)/8` of the gathered line containing
/// `addr`.
fn flat_addr(calc: &OverlapCalc, addr: u64, pattern: PatternId) -> u64 {
    let key = LineKey::new(addr, 64, pattern);
    let word = ((addr % 64) / 8) as usize;
    calc.word_addresses(key, true)[word]
}

#[derive(Debug, Clone)]
struct RawOp {
    tuple: u16,
    field: u8,
    pattern_alt: bool,
    write: Option<u64>,
}

fn raw_ops(rng: &mut SplitMix) -> Vec<RawOp> {
    let n = rng.range(1, 200) as usize;
    (0..n)
        .map(|_| RawOp {
            tuple: rng.below(64) as u16,
            field: rng.below(8) as u8,
            pattern_alt: rng.flip(),
            write: if rng.flip() {
                Some(rng.next_u64())
            } else {
                None
            },
        })
        .collect()
}

/// Converts a raw op to a machine op plus its reference flat address.
///
/// Default-pattern ops address tuple-major fields; alternate-pattern
/// (7) ops use the Figure 8 addressing: line of tuple `(tuple & !7) +
/// field`, offset selecting the `tuple % 8`-th gathered word.
fn to_op(base: u64, r: &RawOp) -> (Op, PatternId, u64) {
    if r.pattern_alt {
        let group = (r.tuple as u64) & !7;
        let addr = base + (group + r.field as u64) * 64 + ((r.tuple as u64) % 8) * 8;
        let op = match r.write {
            Some(v) => Op::Store {
                pc: 1,
                addr,
                pattern: PatternId(7),
                value: v,
            },
            None => Op::Load {
                pc: 2,
                addr,
                pattern: PatternId(7),
            },
        };
        (op, PatternId(7), addr)
    } else {
        let addr = base + (r.tuple as u64) * 64 + (r.field as u64) * 8;
        let op = match r.write {
            Some(v) => Op::Store {
                pc: 3,
                addr,
                pattern: PatternId(0),
                value: v,
            },
            None => Op::Load {
                pc: 4,
                addr,
                pattern: PatternId(0),
            },
        };
        (op, PatternId(0), addr)
    }
}

fn run_differential(ops: Vec<RawOp>, prefetch: bool, impulse: bool) {
    let tuples: u64 = 64;
    let cfg = SystemConfig::table1(1, 4 << 20);
    let cfg = if prefetch { cfg.with_prefetch() } else { cfg };
    let cfg = if impulse { cfg.with_impulse() } else { cfg };
    let mut m = Machine::new(cfg);
    // Impulse runs on a commodity (unshuffled) module; GS-DRAM shuffles.
    let base = m.pattmalloc(tuples * 64, !impulse, PatternId(7));
    let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);

    // Initialise machine memory and the reference model identically.
    let mut flat: HashMap<u64, u64> = HashMap::new();
    for t in 0..tuples {
        for f in 0..8u64 {
            let a = base + t * 64 + f * 8;
            let v = 0x5000_0000 + t * 8 + f;
            m.poke(a, v);
            flat.insert(a, v);
        }
    }

    // Build the op stream and the expected load values.
    let mut machine_ops = Vec::new();
    let mut expected_loads = Vec::new();
    for r in &ops {
        let (op, pattern, addr) = to_op(base, r);
        let fa = flat_addr(&calc, addr, pattern);
        match r.write {
            Some(v) => {
                flat.insert(fa, v);
            }
            None => expected_loads.push(*flat.get(&fa).expect("initialised")),
        }
        machine_ops.push(op);
    }

    let mut p = ScriptedProgram::new(machine_ops);
    {
        let mut programs: Vec<&mut dyn Program> = vec![&mut p];
        m.run(&mut programs, StopWhen::AllDone);
    }
    assert_eq!(
        p.loaded_values(),
        &expected_loads[..],
        "loaded values diverge"
    );

    // Final memory image must match the reference exactly.
    m.drain_caches();
    for (a, v) in &flat {
        assert_eq!(m.peek(*a), *v, "final memory diverges at {a:#x}");
    }
}

const CASES: usize = 48;

/// Single-core machine ≡ flat memory, mixed patterns, no prefetch.
#[test]
fn machine_matches_flat_memory() {
    let mut rng = SplitMix(0xD1F1);
    for _ in 0..CASES {
        run_differential(raw_ops(&mut rng), false, false);
    }
}

/// Same with the prefetcher enabled (prefetches must never corrupt or
/// stale-fill).
#[test]
fn machine_matches_flat_memory_with_prefetch() {
    let mut rng = SplitMix(0xD1F2);
    for _ in 0..CASES {
        run_differential(raw_ops(&mut rng), true, false);
    }
}

/// The Impulse-baseline machine (controller-side gather over a
/// commodity module) is functionally identical to flat memory too —
/// the §7 comparison differs only in timing/traffic, never in data.
#[test]
fn impulse_machine_matches_flat_memory() {
    let mut rng = SplitMix(0xD1F3);
    for _ in 0..CASES {
        run_differential(raw_ops(&mut rng), false, true);
    }
}

/// Two cores on disjoint tuple ranges: per-core load values match the
/// reference, and the merged final image is exact.
#[test]
fn two_core_disjoint_matches_flat_memory() {
    let mut rng = SplitMix(0xD1F4);
    for _ in 0..CASES {
        let ops0 = raw_ops(&mut rng);
        let ops1 = raw_ops(&mut rng);
        let tuples: u64 = 64;
        let mut m = Machine::new(SystemConfig::table1(2, 4 << 20));
        let base = m.pattmalloc(tuples * 64, true, PatternId(7));
        let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);
        let mut flat: HashMap<u64, u64> = HashMap::new();
        for t in 0..tuples {
            for f in 0..8u64 {
                let a = base + t * 64 + f * 8;
                let v = 0x6000_0000 + t * 8 + f;
                m.poke(a, v);
                flat.insert(a, v);
            }
        }
        // Core 0 owns tuple groups 0..4 (tuples 0..32); core 1 owns
        // 32..64. Pattern-7 lines never cross the 8-tuple group
        // boundary, so the cores touch disjoint data.
        let confine = |r: &RawOp, lo: u16| RawOp {
            tuple: lo + r.tuple % 32,
            ..r.clone()
        };
        let mut progs = Vec::new();
        let mut expected: Vec<Vec<u64>> = Vec::new();
        for (ops, lo) in [(&ops0, 0u16), (&ops1, 32u16)] {
            let mut machine_ops = Vec::new();
            let mut exp = Vec::new();
            for r in ops {
                let r = confine(r, lo);
                let (op, pattern, addr) = to_op(base, &r);
                let fa = flat_addr(&calc, addr, pattern);
                match r.write {
                    Some(v) => {
                        flat.insert(fa, v);
                    }
                    None => exp.push(*flat.get(&fa).expect("initialised")),
                }
                machine_ops.push(op);
            }
            progs.push(ScriptedProgram::new(machine_ops));
            expected.push(exp);
        }
        let mut it = progs.iter_mut();
        let (p0, p1) = (it.next().unwrap(), it.next().unwrap());
        {
            let mut programs: Vec<&mut dyn Program> = vec![p0, p1];
            m.run(&mut programs, StopWhen::AllDone);
        }
        assert_eq!(progs[0].loaded_values(), &expected[0][..]);
        assert_eq!(progs[1].loaded_values(), &expected[1][..]);
        m.drain_caches();
        for (a, v) in &flat {
            assert_eq!(m.peek(*a), *v, "final memory diverges at {a:#x}");
        }
    }
}

/// `StopWhen::CoreDone`: stopping when core 0 finishes (the §5.1 HTAP
/// cutoff) must not corrupt anything. Core 0 runs a mixed read/write
/// stream to completion; core 1 issues only loads, so however far it
/// gets before the cutoff, its values and the drained memory image must
/// still match the flat reference exactly.
#[test]
fn core_done_cutoff_matches_flat_memory() {
    let mut rng = SplitMix(0xD1F5);
    for _ in 0..CASES {
        let ops0 = raw_ops(&mut rng);
        let ops1 = raw_ops(&mut rng);
        let tuples: u64 = 64;
        let mut m = Machine::new(SystemConfig::table1(2, 4 << 20));
        let base = m.pattmalloc(tuples * 64, true, PatternId(7));
        let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);
        let mut flat: HashMap<u64, u64> = HashMap::new();
        for t in 0..tuples {
            for f in 0..8u64 {
                let a = base + t * 64 + f * 8;
                let v = 0x7000_0000 + t * 8 + f;
                m.poke(a, v);
                flat.insert(a, v);
            }
        }
        // Core 0: mixed stream on tuples 0..32; core 1: loads only on
        // tuples 32..64 (its cutoff point therefore cannot change the
        // final image). Pattern-7 lines never cross the 8-tuple group
        // boundary, so the ranges are disjoint.
        let mut ops_c0 = Vec::new();
        let mut exp_c0 = Vec::new();
        for r in &ops0 {
            let r = RawOp {
                tuple: r.tuple % 32,
                ..r.clone()
            };
            let (op, pattern, addr) = to_op(base, &r);
            let fa = flat_addr(&calc, addr, pattern);
            match r.write {
                Some(v) => {
                    flat.insert(fa, v);
                }
                None => exp_c0.push(*flat.get(&fa).expect("initialised")),
            }
            ops_c0.push(op);
        }
        let mut ops_c1 = Vec::new();
        let mut exp_c1 = Vec::new();
        for r in &ops1 {
            let r = RawOp {
                tuple: 32 + r.tuple % 32,
                write: None,
                ..r.clone()
            };
            let (op, pattern, addr) = to_op(base, &r);
            let fa = flat_addr(&calc, addr, pattern);
            exp_c1.push(*flat.get(&fa).expect("initialised"));
            ops_c1.push(op);
        }
        let mut p0 = ScriptedProgram::new(ops_c0);
        let mut p1 = ScriptedProgram::new(ops_c1);
        {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p0, &mut p1];
            m.run(&mut programs, StopWhen::CoreDone(0));
        }
        // Core 0 ran to completion: its loads match the reference
        // exactly. Core 1 was cut off at an arbitrary point: whatever
        // it did load must be a prefix of the reference sequence.
        assert_eq!(p0.loaded_values(), &exp_c0[..], "core 0 loads diverge");
        assert!(
            exp_c1.starts_with(p1.loaded_values()),
            "core 1 loads are not a prefix of the reference"
        );
        // The drained image equals the reference with only core 0's
        // stores applied — the cutoff leaked nothing.
        m.drain_caches();
        for (a, v) in &flat {
            assert_eq!(m.peek(*a), *v, "final memory diverges at {a:#x}");
        }
    }
}
