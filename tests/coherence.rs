//! Integration tests for the §4.1 coherence rules across the whole
//! stack: overlapping pattern-tagged lines, multi-core sharing, and the
//! two-patterns-per-page restriction.

use gsdram::core::PatternId;
use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::{Op, Program, ScriptedProgram};

fn machine(cores: usize) -> Machine {
    Machine::new(SystemConfig::table1(cores, 8 << 20))
}

fn run_one(m: &mut Machine, p: &mut ScriptedProgram) -> gsdram::system::RunReport {
    let mut programs: Vec<&mut dyn Program> = vec![p];
    m.run(&mut programs, StopWhen::AllDone)
}

/// Interleaved pattern-0 stores and pattern-7 loads over the same data:
/// every gathered load must see the latest store.
#[test]
fn write_read_interleaving_across_patterns() {
    let mut m = machine(1);
    let base = m.pattmalloc(64 * 64, true, PatternId(7));
    let mut ops = Vec::new();
    for round in 0..4u64 {
        for t in 0..8u64 {
            ops.push(Op::Store {
                pc: 1,
                addr: base + t * 64, // field 0 of tuple t
                pattern: PatternId(0),
                value: round * 100 + t,
            });
            // Gathered read of field 0 of tuples 0..8, word t.
            ops.push(Op::Load {
                pc: 2,
                addr: base + 8 * t,
                pattern: PatternId(7),
            });
        }
    }
    let mut p = ScriptedProgram::new(ops);
    run_one(&mut m, &mut p);
    let want: Vec<u64> = (0..4)
        .flat_map(|round| (0..8).map(move |t| round * 100 + t))
        .collect();
    assert_eq!(p.loaded_values(), &want[..]);
}

/// Dirty gathered lines must be flushed before a default-pattern fetch
/// of overlapping data (§4.1 rule 1).
#[test]
fn dirty_gathered_line_flushed_before_tuple_fetch() {
    let mut m = machine(1);
    let base = m.pattmalloc(64 * 64, true, PatternId(7));
    let mut ops = Vec::new();
    // pattstore field 0 of tuples 0..8 (dirty pattern-7 line).
    for k in 0..8u64 {
        ops.push(Op::Store {
            pc: 1,
            addr: base + 8 * k,
            pattern: PatternId(7),
            value: 40 + k,
        });
    }
    // Then read each tuple's field 0 through pattern 0.
    for t in 0..8u64 {
        ops.push(Op::Load {
            pc: 2,
            addr: base + t * 64,
            pattern: PatternId(0),
        });
    }
    let mut p = ScriptedProgram::new(ops);
    run_one(&mut m, &mut p);
    let want: Vec<u64> = (0..8).map(|k| 40 + k).collect();
    assert_eq!(p.loaded_values(), &want[..]);
}

/// A store through one core must invalidate the overlapping gathered
/// line cached by the *other* core (the read-exclusive piggyback of
/// §4.1 rule 2).
#[test]
fn cross_core_overlap_invalidation() {
    let mut m = machine(2);
    let base = m.pattmalloc(64 * 64, true, PatternId(7));
    for t in 0..8u64 {
        m.poke(base + t * 64, t); // field 0 of tuple t = t
    }
    // Core 1 warms the gathered field-0 line, waits, then re-reads it.
    let mut p1 = ScriptedProgram::new(vec![
        Op::Load {
            pc: 1,
            addr: base,
            pattern: PatternId(7),
        },
        Op::Compute(20_000),
        Op::Load {
            pc: 2,
            addr: base + 8 * 3,
            pattern: PatternId(7),
        }, // word 3
    ]);
    // Core 0 meanwhile stores to tuple 3 field 0 through pattern 0.
    let mut p0 = ScriptedProgram::new(vec![
        Op::Compute(5_000),
        Op::Store {
            pc: 3,
            addr: base + 3 * 64,
            pattern: PatternId(0),
            value: 999,
        },
    ]);
    {
        let mut programs: Vec<&mut dyn Program> = vec![&mut p0, &mut p1];
        m.run(&mut programs, StopWhen::AllDone);
    }
    assert_eq!(p1.loaded_values()[0], 0, "warm-up read");
    assert_eq!(p1.loaded_values()[1], 999, "must observe the remote store");
}

/// The same address under different patterns occupies distinct cache
/// lines and both stay readable (pattern-extended tags, §4.1).
#[test]
fn pattern_tagged_lines_coexist() {
    let mut m = machine(1);
    let base = m.pattmalloc(64 * 64, true, PatternId(7));
    for t in 0..8u64 {
        for f in 0..8u64 {
            m.poke(base + t * 64 + f * 8, t * 10 + f);
        }
    }
    let mut p = ScriptedProgram::new(vec![
        Op::Load {
            pc: 1,
            addr: base,
            pattern: PatternId(0),
        }, // tuple 0, field 0
        Op::Load {
            pc: 2,
            addr: base,
            pattern: PatternId(7),
        }, // field 0, tuple 0
        Op::Load {
            pc: 3,
            addr: base + 8,
            pattern: PatternId(0),
        }, // tuple 0, field 1
        Op::Load {
            pc: 4,
            addr: base + 8,
            pattern: PatternId(7),
        }, // field 0, tuple 1
    ]);
    let r = run_one(&mut m, &mut p);
    assert_eq!(p.loaded_values(), &[0, 0, 1, 10]);
    // Two fetches (one per pattern), two hits.
    assert_eq!(r.dram.reads, 2);
    assert_eq!(r.l1[0].hits, 2);
}

/// Pages allocated without pattmalloc reject non-default patterns.
#[test]
#[should_panic(expected = "not allowed")]
fn plain_pages_reject_pattern_loads() {
    let mut m = machine(1);
    let base = m.malloc(4096);
    let mut p = ScriptedProgram::new(vec![Op::Load {
        pc: 1,
        addr: base,
        pattern: PatternId(7),
    }]);
    run_one(&mut m, &mut p);
}

/// Pattern loads must also be rejected when the page's alternate
/// pattern differs.
#[test]
#[should_panic(expected = "not allowed")]
fn wrong_alternate_pattern_faults() {
    let mut m = machine(1);
    let base = m.pattmalloc(4096, true, PatternId(1));
    let mut p = ScriptedProgram::new(vec![Op::Load {
        pc: 1,
        addr: base,
        pattern: PatternId(7),
    }]);
    run_one(&mut m, &mut p);
}

/// Repeated store/load cycles across patterns leave memory in the
/// exact expected state after draining the caches.
#[test]
fn drained_memory_matches_program_history() {
    let mut m = machine(1);
    let base = m.pattmalloc(64 * 64, true, PatternId(7));
    let mut ops = Vec::new();
    // Alternate: scatter via pattern 7, overwrite one via pattern 0.
    for k in 0..8u64 {
        ops.push(Op::Store {
            pc: 1,
            addr: base + 8 * k,
            pattern: PatternId(7),
            value: 70 + k,
        });
    }
    ops.push(Op::Store {
        pc: 2,
        addr: base + 5 * 64,
        pattern: PatternId(0),
        value: 1234,
    });
    let mut p = ScriptedProgram::new(ops);
    run_one(&mut m, &mut p);
    m.drain_caches();
    for t in 0..8u64 {
        let want = if t == 5 { 1234 } else { 70 + t };
        assert_eq!(m.peek(base + t * 64), want, "tuple {t} field 0");
    }
}
