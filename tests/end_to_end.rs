//! Cross-crate integration tests: the full stack (workload → machine →
//! caches → controller → GS-DRAM module) must be functionally exact.

use gsdram::core::PatternId;
use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::{Op, Program, ScriptedProgram};
use gsdram::workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn machine(cores: usize) -> Machine {
    Machine::new(SystemConfig::table1(cores, 16 << 20))
}

fn run_one(m: &mut Machine, p: &mut dyn Program) -> gsdram::system::RunReport {
    let mut programs: Vec<&mut dyn Program> = vec![p];
    m.run(&mut programs, StopWhen::AllDone)
}

#[test]
fn column_sums_identical_across_all_layouts_and_columns() {
    let mut sums = Vec::new();
    for layout in Layout::ALL {
        let mut m = machine(1);
        let table = Table::create(&mut m, layout, 2048);
        let mut per_layout = Vec::new();
        for f in 0..8 {
            let mut p = analytics(table, &[f]);
            let r = run_one(&mut m, &mut p);
            assert_eq!(
                r.results[0],
                table.expected_column_sum(f),
                "{} f{f}",
                layout.label()
            );
            per_layout.push(r.results[0]);
        }
        sums.push(per_layout);
    }
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[0], sums[2]);
}

#[test]
fn multi_column_analytics_sum() {
    for layout in Layout::ALL {
        let mut m = machine(1);
        let table = Table::create(&mut m, layout, 1024);
        let mut p = analytics(table, &[1, 4, 6]);
        let r = run_one(&mut m, &mut p);
        let want = table.expected_column_sum(1)
            + table.expected_column_sum(4)
            + table.expected_column_sum(6);
        assert_eq!(r.results[0], want, "{}", layout.label());
    }
}

#[test]
fn transactions_then_analytics_sees_updates() {
    // Run write transactions, then a full-column scan: the gathered
    // analytics must observe every committed write (GS-DRAM layout —
    // the cross-pattern coherence path).
    let mut m = machine(1);
    let table = Table::create(&mut m, Layout::GsDram, 512);
    // Deterministic writes: set field 0 of tuple t to 7.
    let ops: Vec<Op> = (0..512u64)
        .map(|t| Op::Store {
            pc: 1,
            addr: table.field_addr(t, 0),
            pattern: PatternId(0),
            value: 7,
        })
        .collect();
    let mut writer = ScriptedProgram::new(ops);
    run_one(&mut m, &mut writer);
    let mut p = analytics(table, &[0]);
    let r = run_one(&mut m, &mut p);
    assert_eq!(r.results[0], 512 * 7);
}

#[test]
fn gathered_writes_visible_to_tuple_reads() {
    // The reverse direction: pattstore through pattern 7, then read
    // tuples with pattern 0.
    let mut m = machine(1);
    let table = Table::create(&mut m, Layout::GsDram, 64);
    let mut ops = Vec::new();
    for grp in 0..8u64 {
        for k in 0..8u64 {
            // field 2 of tuple 8*grp + k := 1000 + tuple index
            ops.push(Op::Store {
                pc: 1,
                addr: table.base + (8 * grp + 2) * 64 + 8 * k,
                pattern: PatternId(7),
                value: 1000 + 8 * grp + k,
            });
        }
    }
    for t in 0..64u64 {
        ops.push(Op::Load {
            pc: 2,
            addr: table.field_addr(t, 2),
            pattern: PatternId(0),
        });
    }
    let mut p = ScriptedProgram::new(ops);
    run_one(&mut m, &mut p);
    let want: Vec<u64> = (0..64).map(|t| 1000 + t).collect();
    assert_eq!(p.loaded_values(), &want[..]);
}

#[test]
fn transaction_workload_is_deterministic() {
    let run = || {
        let mut m = machine(1);
        let table = Table::create(&mut m, Layout::RowStore, 4096);
        let spec = TxnSpec {
            read_only: 2,
            write_only: 1,
            read_write: 1,
        };
        let mut p = transactions(table, spec, 300, 77);
        let r = run_one(&mut m, &mut p);
        (r.cpu_cycles, r.results[0], r.dram.reads)
    };
    assert_eq!(run(), run());
}

#[test]
fn report_energy_is_consistent() {
    let mut m = machine(1);
    let table = Table::create(&mut m, Layout::RowStore, 4096);
    let mut p = analytics(table, &[0]);
    let r = run_one(&mut m, &mut p);
    let e = r.energy;
    assert!(e.cpu_static_mj > 0.0);
    assert!(e.dram_mj > 0.0);
    assert!(
        (e.total_mj() - (e.cpu_static_mj + e.cpu_dynamic_mj + e.cache_mj + e.dram_mj)).abs()
            < 1e-12
    );
    // DRAM energy breakdown matches the controller's meter.
    assert!((r.dram_energy.total_mj() - e.dram_mj).abs() < 1e-12);
}

#[test]
fn gsdram_transaction_overhead_is_negligible() {
    // §5.1: GS-DRAM performs as well as the row store for transactions.
    let run = |layout| {
        let mut m = machine(1);
        let table = Table::create(&mut m, layout, 8192);
        let spec = TxnSpec {
            read_only: 5,
            write_only: 0,
            read_write: 1,
        };
        let mut p = transactions(table, spec, 400, 5);
        run_one(&mut m, &mut p).cpu_cycles
    };
    let row = run(Layout::RowStore) as f64;
    let gs = run(Layout::GsDram) as f64;
    assert!((gs / row - 1.0).abs() < 0.05, "gs {gs} row {row}");
}

#[test]
fn htap_runs_both_cores_and_stops_with_analytics() {
    let mut m = machine(2);
    let table = Table::create(&mut m, Layout::GsDram, 4096);
    let mut anal = analytics(table, &[0]);
    let spec = TxnSpec {
        read_only: 1,
        write_only: 1,
        read_write: 0,
    };
    let mut txn = transactions(table, spec, u64::MAX, 3);
    let r = {
        let mut programs: Vec<&mut dyn Program> = vec![&mut anal, &mut txn];
        m.run(&mut programs, StopWhen::CoreDone(0))
    };
    assert!(r.progress[1] > 0, "transaction thread must make progress");
    assert!(r.cpu_cycles > 0);
}
