//! Small-scale smoke tests asserting the *shape* of every paper figure
//! (the full-scale numbers come from the `gsdram-bench` binaries; see
//! EXPERIMENTS.md).

use gsdram::system::config::SystemConfig;
use gsdram::system::machine::{Machine, StopWhen};
use gsdram::system::ops::Program;
use gsdram::workloads::gemm::{program, Gemm, GemmVariant};
use gsdram::workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn run_imdb(
    layout: Layout,
    prefetch: bool,
    tuples: u64,
    build: impl Fn(Table) -> gsdram::workloads::common::IterProgram,
) -> gsdram::system::RunReport {
    let cfg = SystemConfig::table1(1, (tuples as usize * 64) * 2);
    let cfg = if prefetch { cfg.with_prefetch() } else { cfg };
    let mut m = Machine::new(cfg);
    let table = Table::create(&mut m, layout, tuples);
    let mut p = build(table);
    let mut programs: Vec<&mut dyn Program> = vec![&mut p];
    m.run(&mut programs, StopWhen::AllDone)
}

/// Figure 9 shape: GS-DRAM ≈ Row Store; Column Store clearly worse and
/// degrading with the number of fields.
#[test]
fn figure9_shape() {
    let spec_small = TxnSpec {
        read_only: 1,
        write_only: 0,
        read_write: 1,
    };
    let spec_large = TxnSpec {
        read_only: 4,
        write_only: 2,
        read_write: 2,
    };
    let cycles = |layout, spec| {
        run_imdb(layout, false, 16 * 1024, |t| transactions(t, spec, 500, 42)).cpu_cycles as f64
    };
    for spec in [spec_small, spec_large] {
        let row = cycles(Layout::RowStore, spec);
        let col = cycles(Layout::ColumnStore, spec);
        let gs = cycles(Layout::GsDram, spec);
        assert!((gs / row - 1.0).abs() < 0.05, "GS must match Row Store");
        assert!(col > 1.3 * gs, "Column Store must lag GS");
    }
    // Column Store degrades with more fields; Row Store stays flat.
    let col_s = cycles(Layout::ColumnStore, spec_small);
    let col_l = cycles(Layout::ColumnStore, spec_large);
    assert!(col_l > 1.5 * col_s);
    let row_s = cycles(Layout::RowStore, spec_small);
    let row_l = cycles(Layout::RowStore, spec_large);
    assert!(row_l < 1.4 * row_s);
}

/// Figure 10 shape: GS-DRAM ≈ Column Store, both well ahead of Row
/// Store; prefetching improves everyone.
#[test]
fn figure10_shape() {
    let cycles =
        |layout, pref| run_imdb(layout, pref, 32 * 1024, |t| analytics(t, &[0])).cpu_cycles as f64;
    for pref in [false, true] {
        let row = cycles(Layout::RowStore, pref);
        let col = cycles(Layout::ColumnStore, pref);
        let gs = cycles(Layout::GsDram, pref);
        assert!(
            (gs / col - 1.0).abs() < 0.2,
            "GS must track Column Store (pref={pref})"
        );
        assert!(row > 1.8 * gs, "Row Store must lag GS (pref={pref})");
    }
    for layout in Layout::ALL {
        assert!(
            cycles(layout, true) < cycles(layout, false),
            "{:?}: prefetching must help",
            layout
        );
    }
}

/// Figure 11 shape: under HTAP with prefetching, GS-DRAM matches the
/// Column Store's analytics latency and beats Row Store's transaction
/// throughput.
#[test]
fn figure11_shape() {
    // The table must exceed the 2 MB L2 for the analytics stream to
    // generate the DRAM pressure behind the starvation effect.
    let tuples = 128 * 1024u64;
    let run = |layout| {
        let cfg = SystemConfig::table1(2, (tuples as usize * 64) * 2).with_prefetch();
        let mut m = Machine::new(cfg);
        let table = Table::create(&mut m, layout, tuples);
        let mut anal = analytics(table, &[0]);
        let spec = TxnSpec {
            read_only: 1,
            write_only: 1,
            read_write: 0,
        };
        let mut txn = transactions(table, spec, u64::MAX, 99);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut anal, &mut txn];
            m.run(&mut programs, StopWhen::CoreDone(0))
        };
        let thr = r.progress[1] as f64 / (r.cpu_cycles as f64);
        (r.cpu_cycles as f64, thr)
    };
    let (row_t, row_thr) = run(Layout::RowStore);
    let (col_t, col_thr) = run(Layout::ColumnStore);
    let (gs_t, gs_thr) = run(Layout::GsDram);
    assert!(gs_t < 0.5 * row_t, "analytics: GS must beat Row Store");
    assert!(
        (gs_t / col_t - 1.0).abs() < 0.25,
        "analytics: GS tracks Column Store"
    );
    assert!(
        gs_thr > row_thr,
        "throughput: GS must beat the starved Row Store"
    );
    assert!(gs_thr > col_thr, "throughput: GS must beat Column Store");
}

/// Figure 12 shape: energy — GS ≈ Row for transactions (Column ≥ 2×);
/// GS ≈ Column for analytics (Row ≥ 2×).
#[test]
fn figure12_energy_shape() {
    let spec = TxnSpec {
        read_only: 2,
        write_only: 1,
        read_write: 0,
    };
    let txn_e = |layout| {
        run_imdb(layout, false, 16 * 1024, |t| transactions(t, spec, 500, 42))
            .energy
            .total_mj()
    };
    let row = txn_e(Layout::RowStore);
    let col = txn_e(Layout::ColumnStore);
    let gs = txn_e(Layout::GsDram);
    assert!((gs / row - 1.0).abs() < 0.1);
    assert!(col > 1.5 * gs);

    let anal_e = |layout| {
        run_imdb(layout, true, 32 * 1024, |t| analytics(t, &[0]))
            .energy
            .total_mj()
    };
    let row = anal_e(Layout::RowStore);
    let col = anal_e(Layout::ColumnStore);
    let gs = anal_e(Layout::GsDram);
    assert!((gs / col - 1.0).abs() < 0.2);
    assert!(row > 1.8 * gs);
}

/// Figure 13 shape: GS-DRAM beats the tiled+SIMD baseline by a margin
/// in the paper's neighbourhood (~10%), and tiling beats naive.
#[test]
fn figure13_shape() {
    let run = |variant| {
        let mut m = Machine::new(SystemConfig::table1(1, 16 << 20));
        let g = Gemm::create(&mut m, 64, variant);
        g.init(&mut m);
        let (mut p, _) = program(g, None);
        let mut programs: Vec<&mut dyn Program> = vec![&mut p];
        m.run(&mut programs, StopWhen::AllDone).cpu_cycles as f64
    };
    let naive = run(GemmVariant::Naive);
    let simd = run(GemmVariant::TiledSimd { tile: 32 });
    let gs = run(GemmVariant::GsDram { tile: 32 });
    assert!(simd < 0.7 * naive, "tiling must beat naive");
    let gain = 1.0 - gs / simd;
    assert!(
        gain > 0.03 && gain < 0.30,
        "GS gain {gain} outside plausible band"
    );
}
