#!/bin/bash
# Regenerates every table/figure of the paper at full scale (1M-tuple
# table, 10000 transactions, GEMM up to 1024) — see EXPERIMENTS.md.
set -e
cd "$(dirname "$0")"
R=results
run() { echo "=== $1 ==="; shift; cargo run -q --release -p gsdram-bench --bin "$@"; }
run fig7  fig7_patterns                     | tee $R/fig07.txt
run fig9  fig09_transactions                | tee $R/fig09.txt
run fig10 fig10_analytics                   | tee $R/fig10.txt
run fig11 fig11_htap                        | tee $R/fig11.txt
run fig12 fig12_summary                     | tee $R/fig12.txt
run fig13 fig13_gemm                        | tee $R/fig13.txt
run ablation_shuffle   ablation_shuffle     | tee $R/ablation_shuffle.txt
run ablation_patterns  ablation_patterns    | tee $R/ablation_patterns.txt
run ablation_scheduler ablation_scheduler   | tee $R/ablation_scheduler.txt
run ablation_impulse   ablation_impulse     | tee $R/ablation_impulse.txt
run extras extras_kvstore_graph             | tee $R/extras.txt
echo ALL_EXPERIMENTS_DONE
