#!/bin/bash
# Regenerates every table/figure/ablation/extension of the paper at
# full scale (1M-tuple table, 10000 transactions, GEMM up to 1024)
# through the experiment registry: one `gsdram-sim sweep <name>` per
# experiment, each emitting a human-readable transcript (results/*.txt)
# and the full stats tree (results/*.json). Extra flags are forwarded
# to every sweep (e.g. `./run_experiments.sh --serial` or
# `./run_experiments.sh --tuples 65536` for a quick pass).
set -e
cd "$(dirname "$0")"
R=results
mkdir -p "$R"
cargo build -q --release -p gsdram-cli
EXPERIMENTS="
fig7
fig9
fig10
fig11
fig12
fig13
ablation_shuffle
ablation_patterns
ablation_sectored
ablation_scheduler
ablation_sched
ablation_mapping
ablation_row_policy
ablation_impulse
extension_ecc
extension_filter
extension_transpose
extras_kvstore_graph
pattern_stride_sweep
pattern_indirect
scale_channels
"
for exp in $EXPERIMENTS; do
    echo "=== $exp ==="
    cargo run -q --release -p gsdram-cli -- sweep "$exp" \
        --json "$R/$exp.json" "$@" | tee "$R/$exp.txt"
done
echo ALL_EXPERIMENTS_DONE
