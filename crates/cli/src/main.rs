//! `gsdram-sim` — command-line driver for the GS-DRAM system simulator.
//!
//! ```text
//! gsdram-sim <workload> [options]
//! gsdram-sim sweep <experiment> [--serial] [--threads N] [--json PATH]
//!                  [--trace-out PATH] [--hist] [--trace-cap N]
//! gsdram-sim sweep --list
//! gsdram-sim trace <experiment> [--run SUBSTR | --all] [--out PATH]
//!                  [--hist] [--trace-cap N]
//! gsdram-sim pattern <file.json|builtin> [--layout row|gs-dram]
//! gsdram-sim pattern --list
//!
//! Workloads:
//!   transactions   DB transactions (--layout, --txns, --mix r-w-rw)
//!   analytics      DB column sums (--layout, --columns k)
//!   htap           analytics + endless transactions on two cores
//!   gemm           matrix multiply (--variant, --n, --tile)
//!   kvstore        key-value lookups/inserts (--layout plain|gs)
//!   graph          node scans/updates (--layout plain|gs)
//!   replay         replay a trace (--file T [--alloc BYTES --pattern P])
//!   pattern        compile and run a gsdram-patterns spec — a JSON
//!                  file (see examples/patterns/), a builtin name, or
//!                  --pattern NAME / --pattern-file PATH; runs both
//!                  layouts unless --layout row|gs-dram selects one;
//!                  --list shows builtins + example files
//!   sweep          run a registered experiment (fig9, fig13, ...) in
//!                  parallel; --serial / --threads N control execution,
//!                  --json PATH writes the full stats tree,
//!                  --trace-out PATH a Chrome trace of every run,
//!                  --hist per-run read-latency histograms
//!   trace          run an experiment's specs with telemetry attached
//!                  and write a Chrome trace-event JSON (Perfetto /
//!                  chrome://tracing). Traces the first spec unless
//!                  --run SUBSTR selects by id or --all takes them all;
//!                  --out PATH (default trace.json), --trace-cap N
//!                  bounds the event ring, --hist prints histograms
//!
//! Common options:
//!   --tuples N     table/node/pair count        (default 65536)
//!   --prefetch     enable the stride prefetcher
//!   --impulse      Impulse-style gather baseline
//!   --fcfs         FCFS scheduling instead of FR-FCFS
//!   --sched P      scheduling engine: fr-fcfs (default), fcfs,
//!                  fr-fcfs-cap[:N] (starvation cap), bank-rr[:N]
//!   --mapping M    XOR-stage preset: direct (default), xor-bank,
//!                  xor-rank, xor-channel, xor-all
//!   --timing T     timing pack: ddr3-1600 (default) or ddr4-2400
//!   --closed-row   closed-row buffer management
//!   --ranks N      DRAM ranks                   (default 1; 1,2,4,8,16)
//!   --channels N   DRAM channels                (default 1; 1,2,4,8,16)
//!   --shard        advance channels on worker threads (bit-identical
//!                  results, faster wall-clock on multi-channel runs)
//!   --seed N       workload RNG seed            (default 42)
//!   --json PATH    write the run's stats tree as JSON
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use gsdram_bench::args::Args;
use gsdram_bench::experiments;
use gsdram_bench::listing;
use gsdram_bench::spec::{MachineSpec, RunSpec, WorkloadSpec};
use gsdram_core::stats::ReportStats;
use gsdram_patterns::{builtin, PatternLayout, PatternSpec, BUILTIN_NAMES};
use gsdram_system::config::SystemConfig;
use gsdram_system::machine::{Machine, RunReport, StopWhen};
use gsdram_system::ops::Program;
use gsdram_system::trace::{TraceRecorder, TraceReplayer};
use gsdram_telemetry::{chrome_trace, Telemetry, DEFAULT_CAPACITY};
use gsdram_workloads::gemm::{program as gemm_program, Gemm, GemmVariant};
use gsdram_workloads::graph::{scan as graph_scan, updates as graph_updates, Graph, GraphLayout};
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};
use gsdram_workloads::kvstore::{inserts, lookups, KvLayout, KvStore};

fn db_layout(args: &Args) -> Layout {
    match args.value("--layout").as_deref() {
        Some("row") => Layout::RowStore,
        Some("column") => Layout::ColumnStore,
        _ => Layout::GsDram,
    }
}

fn print_report(name: &str, r: &RunReport, cfg: &SystemConfig) {
    println!("== {name} ==");
    println!(
        "cycles            {:>14}  ({:.3} ms at {} GHz)",
        r.cpu_cycles,
        r.seconds(cfg) * 1e3,
        cfg.cpu_ghz
    );
    println!("operations        {:>14}  (memory: {})", r.ops, r.mem_ops);
    for (i, l1) in r.l1.iter().enumerate() {
        println!(
            "L1[{i}]             hits {:>10}  misses {:>9}  miss rate {:>6.2}%",
            l1.hits,
            l1.misses,
            l1.miss_rate() * 100.0
        );
    }
    println!(
        "L2                hits {:>10}  misses {:>9}  miss rate {:>6.2}%",
        r.l2.hits,
        r.l2.misses,
        r.l2.miss_rate() * 100.0
    );
    println!(
        "DRAM              reads {:>9}  writes {:>9}  row hit {:>7.2}%",
        r.dram.reads,
        r.dram.writes,
        r.dram.row_hit_rate() * 100.0
    );
    println!(
        "energy (mJ)       cpu {:>11.3}  dram {:>11.3}  total {:>8.3}",
        r.energy.cpu_static_mj + r.energy.cpu_dynamic_mj + r.energy.cache_mj,
        r.energy.dram_mj,
        r.energy.total_mj()
    );
    println!("progress          {:?}", r.progress);
    println!("results           {:?}", r.results);
}

/// Writes the report's stats tree to `--json <path>` when requested.
fn maybe_write_json(args: &Args, name: &str, r: &RunReport) -> Result<(), String> {
    let Some(path) = args.value("--json") else {
        return Ok(());
    };
    if let Some(dir) = std::path::Path::new(&path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    let node = r.stats_node(name);
    std::fs::write(&path, node.to_json_pretty()).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// Runs a single program, optionally teeing its op stream into the
/// file given by `--record`.
fn run_single(args: &Args, m: &mut Machine, p: &mut dyn Program) -> RunReport {
    if let Some(path) = args.value("--record") {
        let out = BufWriter::new(File::create(&path).expect("create trace file"));
        let mut rec = TraceRecorder::new(Forward(p), out);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut rec];
            m.run(&mut programs, StopWhen::AllDone)
        };
        eprintln!("recorded {} ops to {path}", rec.ops_written());
        return r;
    }
    let mut programs: Vec<&mut dyn Program> = vec![p];
    m.run(&mut programs, StopWhen::AllDone)
}

/// Adapter: a `&mut dyn Program` as an owned `Program`.
struct Forward<'a>(&'a mut dyn Program);

impl Program for Forward<'_> {
    fn next_op(&mut self) -> Option<gsdram_system::Op> {
        self.0.next_op()
    }
    fn on_load_value(&mut self, v: u64) {
        self.0.on_load_value(v);
    }
    fn progress(&self) -> u64 {
        self.0.progress()
    }
    fn result(&self) -> u64 {
        self.0.result()
    }
}

fn sweep(args: &Args) -> ExitCode {
    if args.flag("--list") {
        println!("registered experiments:");
        for def in experiments::REGISTRY {
            println!("  {:<22} {}", def.name, def.title);
        }
        return ExitCode::SUCCESS;
    }
    // `sweep` is the first positional; the experiment name is the next.
    let Some(name) = args.positional_at(1).map(str::to_owned) else {
        eprintln!("usage: gsdram-sim sweep <experiment> [--serial] [--threads N] [--json PATH]");
        eprintln!("       gsdram-sim sweep [--trace-out PATH] [--hist] ...");
        eprintln!("       gsdram-sim sweep --list");
        return ExitCode::FAILURE;
    };
    match experiments::run_named(&name, args) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `gsdram-sim trace <experiment>`: execute an experiment's specs with
/// a telemetry collector attached and export a Chrome trace-event
/// JSON. Runs serially — traces are about *where* time goes inside one
/// run, not sweep throughput.
fn trace(args: &Args) -> ExitCode {
    let usage = || {
        eprintln!(
            "usage: gsdram-sim trace <experiment> [--run SUBSTR | --all] \
             [--out PATH] [--hist] [--trace-cap N]"
        );
        ExitCode::FAILURE
    };
    let Some(name) = args.positional_at(1).map(str::to_owned) else {
        return usage();
    };
    let def = match experiments::resolve(&name) {
        Ok(def) => def,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = (def.specs)(args);
    if specs.is_empty() {
        eprintln!("error: experiment '{name}' is purely analytic — no runs to trace");
        return ExitCode::FAILURE;
    }
    let selected: Vec<&RunSpec> = if args.flag("--all") {
        specs.iter().collect()
    } else if let Some(f) = args.value("--run") {
        specs.iter().filter(|s| s.id.contains(&f)).collect()
    } else {
        vec![&specs[0]]
    };
    if selected.is_empty() {
        eprintln!("error: --run matched none of:");
        for s in &specs {
            eprintln!("  {}", s.id);
        }
        return ExitCode::FAILURE;
    }
    let capacity = args.usize("--trace-cap", DEFAULT_CAPACITY);
    let mut traces: Vec<(String, Telemetry)> = Vec::new();
    for spec in selected {
        let (outcome, telemetry) = spec.execute_traced(capacity);
        println!(
            "{}: {} cycles, {} events ({} retained, {} dropped)",
            spec.id,
            outcome.report.cpu_cycles,
            telemetry.total_events(),
            telemetry.events().count(),
            telemetry.dropped(),
        );
        traces.push((spec.id.clone(), telemetry));
    }
    if args.flag("--hist") {
        print!("{}", experiments::hist_summary(&traces));
    }
    let out = args.value("--out").unwrap_or_else(|| "trace.json".into());
    let named: Vec<(String, &Telemetry)> = traces.iter().map(|(id, t)| (id.clone(), t)).collect();
    let json = chrome_trace(&named);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: mkdir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out} ({} bytes)", json.len());
    ExitCode::SUCCESS
}

/// Every way to name a pattern spec, for `--list` and the not-found
/// error: the builtins plus any `examples/patterns/*.json` next to the
/// invocation directory — rendered by the same [`listing`] module as
/// `experiments::resolve`.
fn pattern_entries() -> Vec<listing::Entry> {
    let mut entries: Vec<listing::Entry> = BUILTIN_NAMES
        .iter()
        .map(|name| listing::Entry::new(*name, "builtin"))
        .collect();
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir("examples/patterns")
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    entries.extend(
        files
            .iter()
            .map(|f| listing::Entry::new(f.display().to_string(), "")),
    );
    entries
}

fn pattern_listing() -> String {
    listing::render("available pattern specs", &pattern_entries())
}

/// Resolves a pattern-spec argument: builtin names first, then a JSON
/// file path. Misses get the "did you mean" treatment against
/// everything listable; parse failures list everything available.
fn load_pattern_spec(arg: &str) -> Result<PatternSpec, String> {
    if let Some(spec) = builtin(arg) {
        return Ok(spec);
    }
    if !std::path::Path::new(arg).exists() {
        return Err(listing::unknown(
            "pattern spec",
            arg,
            "available pattern specs",
            &pattern_entries(),
        ));
    }
    let text = std::fs::read_to_string(arg)
        .map_err(|e| format!("cannot read pattern spec '{arg}': {e}"))?;
    PatternSpec::parse(&text).map_err(|e| format!("{arg}: {e}\n{}", pattern_listing()))
}

/// `gsdram-sim pattern <file|name>`: compile a spec and run it end to
/// end — both layouts by default, so the row-vs-GS-DRAM comparison is
/// one command.
fn pattern_cmd(args: &Args) -> ExitCode {
    if args.flag("--list") {
        println!("{}", pattern_listing());
        return ExitCode::SUCCESS;
    }
    let arg = args
        .value("--pattern-file")
        .or_else(|| args.value("--pattern"))
        .or_else(|| args.positional_at(1).map(str::to_owned));
    let Some(arg) = arg else {
        eprintln!("usage: gsdram-sim pattern <file.json|builtin> [--layout row|gs-dram]");
        eprintln!("       gsdram-sim pattern --list");
        eprintln!("{}", pattern_listing());
        return ExitCode::FAILURE;
    };
    let spec = match load_pattern_spec(&arg) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let layouts: Vec<PatternLayout> = match args.value("--layout") {
        Some(s) => match PatternLayout::parse(&s) {
            Some(l) => vec![l],
            None => {
                eprintln!("error: unknown --layout '{s}' (try row, gs-dram)");
                return ExitCode::FAILURE;
            }
        },
        None => vec![PatternLayout::Row, PatternLayout::GsDram],
    };
    let machine = match MachineSpec::table1(1, spec.mem_bytes_hint()).with_args(args) {
        Ok(ms) => ms,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cycles: Vec<(PatternLayout, u64)> = Vec::new();
    for layout in layouts {
        let rs = RunSpec {
            id: format!("pattern/{}/{}", spec.name, layout.label()),
            machine: machine.clone(),
            workload: WorkloadSpec::Pattern {
                spec: spec.clone(),
                layout,
            },
        };
        let cfg = rs.machine.config();
        let o = rs.execute();
        print_report(
            &format!("pattern {} layout={}", spec.describe(), layout.label()),
            &o.report,
            &cfg,
        );
        if let Err(e) = maybe_write_json(args, "pattern", &o.report) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        cycles.push((layout, o.report.cpu_cycles));
    }
    if let [(_, row), (_, gs)] = cycles.as_slice() {
        println!(
            "speedup           {:>14.3}  (row {} / gs-dram {} cycles)",
            *row as f64 / *gs as f64,
            row,
            gs
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = Args::from_env();
    let Some(workload) = args.positional().map(str::to_owned) else {
        eprintln!(
            "usage: gsdram-sim <transactions|analytics|htap|gemm|kvstore|graph|replay|pattern|sweep|trace> [options]"
        );
        eprintln!("run with a workload name; see crate docs for options");
        return ExitCode::FAILURE;
    };
    if workload == "sweep" {
        return sweep(&args);
    }
    if workload == "trace" {
        return trace(&args);
    }
    if workload == "pattern" {
        return pattern_cmd(&args);
    }
    let tuples = args.u64("--tuples", 65_536);
    let seed = args.u64("--seed", 42);
    let mem = (tuples as usize * 64 * 2).max(16 << 20);
    // The one machine-flag parser shared with the experiment engine
    // (--prefetch, --impulse, --fcfs, --sched, --mapping, --timing,
    // --closed-row, --ranks, --channels, --shard). Parsed once up
    // front so a bad flag fails before any workload builds memory;
    // each workload then patches in its core count and memory size.
    let parsed = match MachineSpec::table1(1, mem).with_args(&args) {
        Ok(ms) => ms,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let machine = |cores: usize, mem: usize| {
        let mut ms = parsed.clone();
        ms.cores = cores;
        ms.mem_bytes = mem;
        ms
    };

    match workload.as_str() {
        "transactions" => {
            let mix = args.value("--mix").unwrap_or_else(|| "1-0-1".into());
            let parts: Vec<usize> = mix.split('-').filter_map(|x| x.parse().ok()).collect();
            if parts.len() != 3 || parts.iter().sum::<usize>() > 8 {
                eprintln!("--mix must be r-w-rw with at most 8 total fields");
                return ExitCode::FAILURE;
            }
            let spec = TxnSpec {
                read_only: parts[0],
                write_only: parts[1],
                read_write: parts[2],
            };
            let mut m = machine(1, mem).build();
            let table = Table::create(&mut m, db_layout(&args), tuples);
            let mut p = transactions(table, spec, args.u64("--txns", 10_000), seed);
            let r = run_single(&args, &mut m, &mut p);
            let name = format!("transactions {} {}", db_layout(&args).label(), spec.label());
            print_report(&name, &r, m.config());
            if let Err(e) = maybe_write_json(&args, "transactions", &r) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "analytics" => {
            let k = args.u64("--columns", 1) as usize;
            let columns: Vec<usize> = (0..k.min(8)).collect();
            let mut m = machine(1, mem).build();
            let table = Table::create(&mut m, db_layout(&args), tuples);
            let mut p = analytics(table, &columns);
            let r = run_single(&args, &mut m, &mut p);
            let want: u64 = columns
                .iter()
                .fold(0u64, |a, &f| a.wrapping_add(table.expected_column_sum(f)));
            assert_eq!(r.results[0], want, "column sum mismatch — simulator bug");
            print_report(
                &format!("analytics {} k={k}", db_layout(&args).label()),
                &r,
                m.config(),
            );
            if let Err(e) = maybe_write_json(&args, "analytics", &r) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "htap" => {
            let mut m = machine(2, mem).build();
            let table = Table::create(&mut m, db_layout(&args), tuples);
            let mut anal = analytics(table, &[0]);
            let spec = TxnSpec {
                read_only: 1,
                write_only: 1,
                read_write: 0,
            };
            let mut txn = transactions(table, spec, u64::MAX, seed);
            let r = {
                let mut programs: Vec<&mut dyn Program> = vec![&mut anal, &mut txn];
                m.run(&mut programs, StopWhen::CoreDone(0))
            };
            let thr = r.progress[1] as f64 / r.seconds(m.config()) / 1e6;
            print_report(
                &format!("htap {}", db_layout(&args).label()),
                &r,
                m.config(),
            );
            println!("txn throughput    {thr:>14.2} M/s");
            if let Err(e) = maybe_write_json(&args, "htap", &r) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "gemm" => {
            let n = args.u64("--n", 128) as usize;
            let tile = args.u64("--tile", 32) as usize;
            let variant = match args.value("--variant").as_deref() {
                Some("naive") => GemmVariant::Naive,
                Some("tiled") => GemmVariant::Tiled { tile },
                Some("simd") => GemmVariant::TiledSimd { tile },
                _ => GemmVariant::GsDram { tile },
            };
            let mem = (3 * n * n * 8 * 2).max(16 << 20);
            let mut m = machine(1, mem).build();
            let g = Gemm::create(&mut m, n, variant);
            g.init(&mut m);
            let (mut p, scale) = gemm_program(g, None);
            let r = run_single(&args, &mut m, &mut p);
            print_report(&format!("gemm {} n={n}", variant.label()), &r, m.config());
            if scale != 1.0 {
                println!("(sampled; scale {scale})");
            }
            if let Err(e) = maybe_write_json(&args, "gemm", &r) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "kvstore" => {
            let layout = match args.value("--layout").as_deref() {
                Some("plain") => KvLayout::Interleaved,
                _ => KvLayout::GsDram,
            };
            let mut m = machine(1, mem).build();
            let kv = KvStore::create(&mut m, layout, tuples);
            let mut p = lookups(kv, tuples / 2, args.u64("--lookups", 64), seed);
            let r = run_single(&args, &mut m, &mut p);
            print_report(
                &format!("kvstore lookups {}", layout.label()),
                &r,
                m.config(),
            );
            let mut p = inserts(kv, args.u64("--inserts", 2000), seed);
            let r = run_single(&args, &mut m, &mut p);
            print_report(
                &format!("kvstore inserts {}", layout.label()),
                &r,
                m.config(),
            );
            if let Err(e) = maybe_write_json(&args, "kvstore", &r) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "replay" => {
            // Replay a trace recorded with --record. The machine must be
            // given the same allocation the recording run had:
            // --alloc BYTES [--pattern P] recreates one pattmalloc
            // region at the deterministic base address.
            let Some(path) = args.value("--file") else {
                eprintln!("replay needs --file <trace>");
                return ExitCode::FAILURE;
            };
            let mut m = machine(1, mem).build();
            let alloc = args.u64("--alloc", tuples * 64);
            let pattern = gsdram_core::PatternId(args.u64("--pattern", 7) as u8);
            m.pattmalloc(alloc, true, pattern);
            let file = BufReader::new(match File::open(&path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            });
            let mut p = TraceReplayer::new(file);
            let r = {
                let mut programs: Vec<&mut dyn Program> = vec![&mut p];
                m.run(&mut programs, StopWhen::AllDone)
            };
            print_report(
                &format!("replay {path} ({} ops)", p.ops_replayed()),
                &r,
                m.config(),
            );
            if let Err(e) = maybe_write_json(&args, "replay", &r) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "graph" => {
            let layout = match args.value("--layout").as_deref() {
                Some("plain") => GraphLayout::NodeMajor,
                _ => GraphLayout::GsDram,
            };
            let mut m = machine(1, mem).build();
            let g = Graph::create(&mut m, layout, tuples);
            let mut p = graph_scan(g, 0);
            let r = run_single(&args, &mut m, &mut p);
            print_report(&format!("graph scan {}", layout.label()), &r, m.config());
            let mut p = graph_updates(g, args.u64("--updates", 2000), seed);
            let r = run_single(&args, &mut m, &mut p);
            print_report(&format!("graph updates {}", layout.label()), &r, m.config());
            if let Err(e) = maybe_write_json(&args, "graph", &r) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        other => {
            eprintln!("unknown workload '{other}'");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
