//! Compilation: a materialized [`AccessStream`] becomes machine state
//! (allocations + initial data) and a lazy op-stream [`IterProgram`]
//! driving the full machine, under one of two layouts.
//!
//! The gather addressing generalizes the hand-written workloads: for
//! word index `w` and gather stride `Q`, the pattern-`(Q−1)` address
//! of `w` is
//!
//! ```text
//! base + (w / 8Q)·64Q + (w mod Q)·64 + ((w / Q) mod 8)·8
//! ```
//!
//! which reduces to `kvstore::key_gather_addr` at `Q = 2` and the
//! graph scan's gathered address at `Q = 8`. Eight conforming
//! accesses share one gathered line, so the cache turns them into one
//! DRAM fill plus seven hits — the mechanism's entire win, measured
//! rather than asserted.

use gsdram_core::PatternId;
use gsdram_system::ops::Op;
use gsdram_system::Machine;
use gsdram_workloads::common::IterProgram;

use crate::spec::{AccessOp, PatternSpec};
use crate::stream::{materialize, AccessStream};

/// How the data array is stored and addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternLayout {
    /// Plain row layout: every access is an ordinary load/store.
    Row,
    /// GS-DRAM: conforming strided accesses use pattern-`(Q−1)`
    /// gathered ops. When the spec's stream has no usable gather
    /// stride (`Q = 1`) this compiles identically to
    /// [`Row`](PatternLayout::Row) — the
    /// collapse the non-power-of-2 and indirect specs demonstrate.
    GsDram,
}

impl PatternLayout {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PatternLayout::Row => "row",
            PatternLayout::GsDram => "gs-dram",
        }
    }

    /// Parses a label (`row`, `gs-dram`, or the shorthand `gs`).
    pub fn parse(s: &str) -> Option<PatternLayout> {
        match s {
            "row" => Some(PatternLayout::Row),
            "gs-dram" | "gs" => Some(PatternLayout::GsDram),
            _ => None,
        }
    }
}

/// Base addresses of a created pattern dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternData {
    /// Data array base (word `w` lives at `base + 8w`).
    pub base: u64,
    /// Index array base for indirect streams (0 otherwise).
    pub idx_base: u64,
}

/// Plain byte address of word `w`.
fn plain_addr(base: u64, w: u64) -> u64 {
    base + w * 8
}

/// Pattern-`(Q−1)` gathered byte address of word `w` (see the module
/// docs for the derivation).
fn gathered_addr(base: u64, w: u64, q: u64) -> u64 {
    base + (w / (8 * q)) * (64 * q) + (w % q) * 64 + ((w / q) % 8) * 8
}

/// A spec compiled against its materialized stream: the one object
/// that creates machine state, emits the op stream, and predicts the
/// verified results — all from the same index vector, so they cannot
/// drift.
#[derive(Debug, Clone)]
pub struct Compiled {
    spec: PatternSpec,
    stream: AccessStream,
}

impl Compiled {
    /// Materializes `spec`'s stream.
    pub fn new(spec: PatternSpec) -> Compiled {
        let stream = materialize(&spec);
        Compiled { spec, stream }
    }

    /// The spec this was compiled from.
    pub fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    /// The materialized stream.
    pub fn stream(&self) -> &AccessStream {
        &self.stream
    }

    /// Number of accesses.
    pub fn count(&self) -> u64 {
        self.stream.indices.len() as u64
    }

    /// See [`PatternSpec::mem_bytes_hint`].
    pub fn mem_bytes_hint(&self) -> usize {
        self.spec.mem_bytes_hint()
    }

    /// Allocates and initialises the dataset: word `w` holds `w`, and
    /// for indirect streams the index array holds the stream itself.
    /// Under [`PatternLayout::GsDram`] with a usable gather stride the
    /// data page is `pattmalloc`ed with the alternate pattern `Q − 1`.
    pub fn create(&self, m: &mut Machine, layout: PatternLayout) -> PatternData {
        let bytes = self.spec.elements * 8;
        let base = if layout == PatternLayout::GsDram && self.stream.q >= 2 {
            m.pattmalloc(bytes, true, PatternId((self.stream.q - 1) as u8))
        } else {
            m.malloc(bytes)
        };
        for w in 0..self.spec.elements {
            m.poke(plain_addr(base, w), w);
        }
        let idx_base = if self.stream.indirect {
            let idx_base = m.malloc(self.count() * 8);
            for (t, w) in self.stream.indices.iter().enumerate() {
                m.poke(idx_base + 8 * t as u64, *w);
            }
            idx_base
        } else {
            0
        };
        PatternData { base, idx_base }
    }

    /// The lazy op stream: per access, an optional index-array load
    /// (indirect streams), the data access, and one compute op (the
    /// progress marker). Conforming accesses gather under
    /// [`PatternLayout::GsDram`]; everything else is a plain op.
    pub fn program(&self, layout: PatternLayout, data: PatternData) -> IterProgram {
        let q = self.stream.q;
        let op = self.spec.op;
        let indirect = self.stream.indirect;
        let indices = self.stream.indices.clone();
        let conforms = self.stream.conforms.clone();
        let gather_on = layout == PatternLayout::GsDram && q >= 2;
        let ops =
            indices
                .into_iter()
                .zip(conforms)
                .enumerate()
                .flat_map(move |(t, (w, conform))| {
                    let t = t as u64;
                    let idx_op = indirect.then_some(Op::Load {
                        pc: 0xE00,
                        addr: data.idx_base + 8 * t,
                        pattern: PatternId(0),
                    });
                    let (addr, pattern, pc_off) = if gather_on && conform {
                        (gathered_addr(data.base, w, q), PatternId((q - 1) as u8), 1)
                    } else {
                        (plain_addr(data.base, w), PatternId(0), 0)
                    };
                    let access = match op {
                        AccessOp::Gather => Op::Load {
                            pc: 0xE01 + pc_off,
                            addr,
                            pattern,
                        },
                        AccessOp::Scatter => Op::Store {
                            pc: 0xE03 + pc_off,
                            addr,
                            pattern,
                            value: t + 1,
                        },
                    };
                    idx_op.into_iter().chain([access, Op::Compute(1)])
                });
        IterProgram::with_unit_marker(Box::new(ops), |op| matches!(op, Op::Compute(1)))
    }

    /// The checksum the program must report: every load folds its
    /// value, word `w` initially holds `w`, and the index array holds
    /// the stream — so gathers sum the accessed indices (twice for
    /// indirect streams, once for the index load and once for the
    /// data load), and scatters sum only the index loads.
    pub fn expected_sum(&self) -> u64 {
        let data: u64 = match self.spec.op {
            AccessOp::Gather => self
                .stream
                .indices
                .iter()
                .fold(0u64, |a, w| a.wrapping_add(*w)),
            AccessOp::Scatter => 0,
        };
        let idx: u64 = if self.stream.indirect {
            self.stream
                .indices
                .iter()
                .fold(0u64, |a, w| a.wrapping_add(*w))
        } else {
            0
        };
        data.wrapping_add(idx)
    }

    /// Expected progress units (one per access).
    pub fn expected_units(&self) -> u64 {
        self.count()
    }

    /// For scatters: the final `(plain address, value)` of every
    /// written word under last-writer-wins — access `t` stores
    /// `t + 1`, so duplicate addresses must end with the latest tag.
    /// Empty for gathers.
    pub fn expected_finals(&self, data: PatternData) -> Vec<(u64, u64)> {
        if self.spec.op != AccessOp::Scatter {
            return Vec::new();
        }
        let mut writes: Vec<(u64, u64)> = self
            .stream
            .indices
            .iter()
            .enumerate()
            .map(|(t, w)| (*w, t as u64 + 1))
            .collect();
        writes.sort_unstable();
        let mut finals = Vec::new();
        for (i, (w, tag)) in writes.iter().enumerate() {
            let last_of_run = writes.get(i + 1).map(|(nw, _)| nw != w).unwrap_or(true);
            if last_of_run {
                finals.push((plain_addr(data.base, *w), *tag));
            }
        }
        finals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::config::SystemConfig;
    use gsdram_system::machine::{RunReport, StopWhen};
    use gsdram_system::ops::Program;

    fn run(text: &str, layout: PatternLayout) -> (RunReport, Compiled, Machine, PatternData) {
        let c = Compiled::new(PatternSpec::parse(text).unwrap());
        let mut m = Machine::new(SystemConfig::table1(1, c.mem_bytes_hint()));
        let data = c.create(&mut m, layout);
        let mut p = c.program(layout, data);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        (r, c, m, data)
    }

    fn verify(text: &str, layout: PatternLayout) -> RunReport {
        let (r, c, mut m, data) = run(text, layout);
        assert_eq!(r.progress[0], c.expected_units(), "progress: {text}");
        assert_eq!(r.results[0], c.expected_sum(), "checksum: {text}");
        m.drain_caches();
        for (addr, want) in c.expected_finals(data) {
            assert_eq!(m.peek(addr), want, "final at {addr:#x}: {text}");
        }
        r
    }

    #[test]
    fn gathered_addr_matches_hand_written_workloads() {
        // kvstore: key i is word 2i, gathered at base + (i/8)·128 + (i%8)·8.
        for i in 0..64u64 {
            assert_eq!(gathered_addr(0, 2 * i, 2), (i / 8) * 128 + (i % 8) * 8);
        }
        // graph: field f of node v is word 8v+f, gathered at
        // base + (8·(v/8) + f)·64 + 8·(v%8).
        for v in 0..64u64 {
            for f in 0..8u64 {
                assert_eq!(
                    gathered_addr(0, 8 * v + f, 8),
                    (8 * (v / 8) + f) * 64 + 8 * (v % 8)
                );
            }
        }
    }

    #[test]
    fn stride8_gather_wins_8x_on_dram_reads() {
        let text = r#"{"elements": 32768, "pattern": {"type": "stride", "stride": 8}}"#;
        let row = verify(text, PatternLayout::Row);
        let gs = verify(text, PatternLayout::GsDram);
        // 4096 accesses: one line fill each in row layout, one per
        // eight in GS-DRAM.
        assert_eq!(row.dram.reads, 4096);
        assert_eq!(gs.dram.reads, 512);
        assert!(gs.cpu_cycles < row.cpu_cycles);
    }

    #[test]
    fn odd_stride_collapses_to_row() {
        let text = r#"{"elements": 32768, "pattern": {"type": "stride", "stride": 7}}"#;
        let row = verify(text, PatternLayout::Row);
        let gs = verify(text, PatternLayout::GsDram);
        // Q = 1: the layouts compile identically.
        assert_eq!(row.cpu_cycles, gs.cpu_cycles);
        assert_eq!(row.dram.reads, gs.dram.reads);
    }

    #[test]
    fn mostly_stride_verifies_on_both_layouts() {
        let text = r#"{"elements": 32768, "seed": 3,
            "pattern": {"type": "mostly-stride", "stride": 8, "deviate_pct": 20}}"#;
        let row = verify(text, PatternLayout::Row);
        let gs = verify(text, PatternLayout::GsDram);
        assert!(gs.cpu_cycles < row.cpu_cycles);
    }

    #[test]
    fn scatter_with_duplicates_lands_last_writer() {
        let text = r#"{"elements": 4096, "op": "scatter", "seed": 11,
            "pattern": {"type": "indirect", "count": 2048, "dup_pct": 50}}"#;
        verify(text, PatternLayout::Row);
        verify(text, PatternLayout::GsDram);
    }

    #[test]
    fn gathered_scatter_verifies() {
        let text = r#"{"elements": 32768, "op": "scatter",
            "pattern": {"type": "stride", "stride": 8}}"#;
        let row = verify(text, PatternLayout::Row);
        let gs = verify(text, PatternLayout::GsDram);
        assert!(gs.cpu_cycles < row.cpu_cycles);
    }

    #[test]
    fn window_and_gap_streams_verify() {
        for text in [
            r#"{"elements": 4096, "pattern": {"type": "window-random", "window": 512}}"#,
            r#"{"elements": 4096, "pattern": {"type": "stride-gap", "block": 16, "gap": 48}}"#,
            r#"{"elements": 4096, "pattern": {"type": "indirect", "count": 1024}}"#,
        ] {
            verify(text, PatternLayout::Row);
            verify(text, PatternLayout::GsDram);
        }
    }
}
