//! # gsdram-patterns
//!
//! A Spatter-style pattern-spec workload engine: declarative JSON
//! specs describe gather/scatter index streams — uniform stride
//! (including the non-power-of-2 strides GS-DRAM's shuffle cannot
//! realign), mostly-stride with deviation, strided blocks with gaps,
//! windowed random, and fully indirect index arrays with optional
//! duplicate addresses — and this crate compiles any spec into the
//! lazy op-stream machinery that drives the full machine.
//!
//! The paper evaluates two applications; this subsystem evaluates the
//! *mechanism*: where pattern-ID translation wins (power-of-two
//! strides), where the win shrinks (strides with a small power-of-two
//! factor), and where it collapses entirely (odd strides, random and
//! data-dependent streams). The pipeline:
//!
//! 1. [`spec`] — parse + validate the JSON spec ([`PatternSpec`]),
//!    strict and panic-free on hostile input;
//! 2. [`stream`] — materialize the seeded index stream
//!    ([`AccessStream`], SplitMix64-deterministic);
//! 3. [`compile`] — allocate/initialise the dataset and emit the op
//!    stream ([`Compiled`]), with analytically-known checksums and
//!    last-writer-wins final values for verification.
//!
//! ```
//! use gsdram_patterns::{Compiled, PatternLayout, PatternSpec};
//! use gsdram_system::config::SystemConfig;
//! use gsdram_system::machine::{Machine, StopWhen};
//! use gsdram_system::ops::Program;
//!
//! let spec = PatternSpec::parse(
//!     r#"{"elements": 4096, "pattern": {"type": "stride", "stride": 8}}"#,
//! ).unwrap();
//! let c = Compiled::new(spec);
//! let mut m = Machine::new(SystemConfig::table1(1, c.mem_bytes_hint()));
//! let data = c.create(&mut m, PatternLayout::GsDram);
//! let mut p = c.program(PatternLayout::GsDram, data);
//! let mut programs: Vec<&mut dyn Program> = vec![&mut p];
//! let r = m.run(&mut programs, StopWhen::AllDone);
//! assert_eq!(r.results[0], c.expected_sum());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builtin;
pub mod compile;
pub mod spec;
pub mod stream;

pub use builtin::{builtin, BUILTIN_NAMES};
pub use compile::{Compiled, PatternData, PatternLayout};
pub use spec::{AccessOp, Generator, PatternSpec, SpecError};
pub use stream::{gather_q, materialize, AccessStream};
