//! Named builtin specs: a spec for each generator family, usable from
//! `gsdram-sim pattern <name>` / `--pattern <name>` without a file.

use crate::spec::{AccessOp, Generator, PatternSpec};

/// Names [`builtin`] resolves, in display order.
pub const BUILTIN_NAMES: &[&str] = &[
    "stride2",
    "stride8",
    "stride7",
    "mostly-stride",
    "stride-gap",
    "window-random",
    "indirect",
    "dup-scatter",
];

/// The builtin spec of that name, if any.
pub fn builtin(name: &str) -> Option<PatternSpec> {
    const ELEMENTS: u64 = 65536;
    let (op, pattern) = match name {
        "stride2" => (
            AccessOp::Gather,
            Generator::Stride {
                stride: 2,
                count: ELEMENTS / 2,
                start: 0,
            },
        ),
        "stride8" => (
            AccessOp::Gather,
            Generator::Stride {
                stride: 8,
                count: ELEMENTS / 8,
                start: 0,
            },
        ),
        "stride7" => (
            AccessOp::Gather,
            Generator::Stride {
                stride: 7,
                count: ELEMENTS / 7,
                start: 0,
            },
        ),
        "mostly-stride" => (
            AccessOp::Gather,
            Generator::MostlyStride {
                stride: 8,
                count: ELEMENTS / 8,
                deviate_pct: 10,
            },
        ),
        "stride-gap" => (
            AccessOp::Gather,
            Generator::StrideGap {
                block: 16,
                gap: 48,
                count: ELEMENTS / 64 * 16,
            },
        ),
        "window-random" => (
            AccessOp::Gather,
            Generator::WindowRandom {
                window: 4096,
                count: 8192,
            },
        ),
        "indirect" => (
            AccessOp::Gather,
            Generator::Indirect {
                count: 8192,
                range: ELEMENTS,
                dup_pct: 0,
                indices: None,
            },
        ),
        "dup-scatter" => (
            AccessOp::Scatter,
            Generator::Indirect {
                count: 8192,
                range: ELEMENTS,
                dup_pct: 50,
                indices: None,
            },
        ),
        _ => return None,
    };
    Some(PatternSpec {
        name: name.to_string(),
        elements: ELEMENTS,
        seed: 42,
        op,
        pattern,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates_and_round_trips() {
        for name in BUILTIN_NAMES {
            let spec = builtin(name).unwrap();
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let again = PatternSpec::parse(&spec.to_json_string()).unwrap();
            assert_eq!(spec, again, "{name}");
        }
        assert!(builtin("nope").is_none());
    }
}
