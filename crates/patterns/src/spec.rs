//! The pattern-spec format: a small JSON schema describing an index
//! stream over a word array, parsed with the workspace's dep-free
//! parser ([`gsdram_core::json`]).
//!
//! A spec is pure data — `{"name", "elements", "seed", "op",
//! "pattern"}` — and everything downstream (the materialized index
//! stream, the compiled op stream, the expected checksum) is a
//! deterministic function of it. Numbers are read through
//! [`Json::as_u64`] so this crate stays float-free under lint rule D5.
//!
//! Parsing is strict: unknown keys, non-integer numbers, and
//! out-of-range sizes are errors, not warnings — the fuzz tests in
//! this module feed the parser hostile inputs and expect an `Err`,
//! never a panic.

use gsdram_core::json::Json;

/// Direction of the access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// Loads: read the addressed words (checksum-verified).
    Gather,
    /// Stores: write the addressed words (final values verified,
    /// including last-writer-wins under duplicate addresses).
    Scatter,
}

impl AccessOp {
    /// Display label (also the accepted JSON value).
    pub fn label(&self) -> &'static str {
        match self {
            AccessOp::Gather => "gather",
            AccessOp::Scatter => "scatter",
        }
    }
}

/// An index-stream generator: how word indices in `[0, elements)` are
/// produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Generator {
    /// Uniform stride: access `start + t·stride` for `t = 0..count`.
    Stride {
        /// Distance between consecutive accesses, in words.
        stride: u64,
        /// Number of accesses.
        count: u64,
        /// First word index.
        start: u64,
    },
    /// Uniform stride with per-access deviation: with probability
    /// `deviate_pct`% the access goes to a seeded-random word instead
    /// of the nominal strided one (and compiles to a plain load).
    MostlyStride {
        /// Nominal stride, in words.
        stride: u64,
        /// Number of accesses.
        count: u64,
        /// Percent of accesses that deviate (0..=100).
        deviate_pct: u64,
    },
    /// Blocks of `block` consecutive words separated by `gap` skipped
    /// words (Spatter's stride-with-gap shape).
    StrideGap {
        /// Words per contiguous block.
        block: u64,
        /// Words skipped between blocks.
        gap: u64,
        /// Number of accesses.
        count: u64,
    },
    /// Seeded-random accesses uniform over the first `window` words —
    /// locality is controlled by the window size alone.
    WindowRandom {
        /// Window size, in words.
        window: u64,
        /// Number of accesses.
        count: u64,
    },
    /// A fully indirect stream: an index array is materialized in
    /// simulated memory and every access first loads `idx[t]`, then
    /// accesses `data[idx[t]]` — the data-dependent form GS-DRAM
    /// cannot accelerate.
    Indirect {
        /// Number of accesses (ignored when `indices` is explicit).
        count: u64,
        /// Generated indices are uniform in `[0, range)`.
        range: u64,
        /// Percent of accesses that duplicate an earlier index
        /// (0..=100) — the hostile scatter case.
        dup_pct: u64,
        /// Explicit index array (overrides seeded generation).
        indices: Option<Vec<u64>>,
    },
}

impl Generator {
    /// One-line description for reports, e.g. `stride=8` or
    /// `indirect range=65536 dup=50%`.
    pub fn label(&self) -> String {
        match self {
            Generator::Stride { stride, start, .. } => {
                if *start == 0 {
                    format!("stride={stride}")
                } else {
                    format!("stride={stride} start={start}")
                }
            }
            Generator::MostlyStride {
                stride,
                deviate_pct,
                ..
            } => format!("mostly-stride={stride} dev={deviate_pct}%"),
            Generator::StrideGap { block, gap, .. } => format!("gap block={block} gap={gap}"),
            Generator::WindowRandom { window, .. } => format!("window={window}"),
            Generator::Indirect {
                range,
                dup_pct,
                indices,
                ..
            } => {
                if indices.is_some() {
                    "indirect explicit".to_string()
                } else {
                    format!("indirect range={range} dup={dup_pct}%")
                }
            }
        }
    }

    /// Number of accesses the generator produces.
    pub fn count(&self) -> u64 {
        match self {
            Generator::Stride { count, .. }
            | Generator::MostlyStride { count, .. }
            | Generator::StrideGap { count, .. }
            | Generator::WindowRandom { count, .. } => *count,
            Generator::Indirect { count, indices, .. } => match indices {
                Some(v) => v.len() as u64,
                None => *count,
            },
        }
    }
}

/// A parsed, validated pattern spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSpec {
    /// Display name (used in run ids).
    pub name: String,
    /// Size of the data array, in 8-byte words. Must be a positive
    /// multiple of 64 so every gathered line stays in bounds.
    pub elements: u64,
    /// RNG seed for the seeded generators.
    pub seed: u64,
    /// Gather (loads) or scatter (stores).
    pub op: AccessOp,
    /// The index-stream generator.
    pub pattern: Generator,
}

/// A spec rejection: message only (specs are small, so no spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What was wrong with the spec.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        message: message.into(),
    })
}

/// Hard caps keeping hostile specs simulable: at most 2^22 words
/// (32 MiB) of data and 2^22 accesses.
pub const MAX_ELEMENTS: u64 = 1 << 22;
/// See [`MAX_ELEMENTS`].
pub const MAX_COUNT: u64 = 1 << 22;

/// Reads a present-and-integer `key`, or `default` when absent.
fn opt_u64(obj: &Json, key: &str, default: u64) -> Result<u64, SpecError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(n),
            None => err(format!("\"{key}\" must be a non-negative integer")),
        },
    }
}

fn check_keys(obj: &Json, ctx: &str, allowed: &[&str]) -> Result<(), SpecError> {
    let members = match obj.as_object() {
        Some(m) => m,
        None => return err(format!("{ctx} must be an object")),
    };
    for (k, _) in members {
        if !allowed.contains(&k.as_str()) {
            return err(format!(
                "unknown {ctx} key \"{k}\" (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

impl PatternSpec {
    /// Parses and validates a spec from JSON text.
    pub fn parse(text: &str) -> Result<PatternSpec, SpecError> {
        let doc = match Json::parse(text) {
            Ok(d) => d,
            Err(e) => return err(format!("invalid JSON: {e}")),
        };
        Self::from_json(&doc)
    }

    /// Parses and validates a spec from a parsed JSON value.
    pub fn from_json(doc: &Json) -> Result<PatternSpec, SpecError> {
        check_keys(doc, "spec", &["name", "elements", "seed", "op", "pattern"])?;
        let name = match doc.get("name") {
            None => "pattern".to_string(),
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return err("\"name\" must be a string"),
        };
        let elements = match doc.get("elements").map(Json::as_u64) {
            Some(Some(n)) => n,
            Some(None) => return err("\"elements\" must be a non-negative integer"),
            None => return err("missing required key \"elements\""),
        };
        let seed = opt_u64(doc, "seed", 42)?;
        let op = match doc.get("op") {
            None => AccessOp::Gather,
            Some(Json::Str(s)) if s == "gather" => AccessOp::Gather,
            Some(Json::Str(s)) if s == "scatter" => AccessOp::Scatter,
            Some(_) => return err("\"op\" must be \"gather\" or \"scatter\""),
        };
        let pat = match doc.get("pattern") {
            Some(p) => p,
            None => return err("missing required key \"pattern\""),
        };
        let pattern = Self::pattern_from_json(pat, elements)?;
        let spec = PatternSpec {
            name,
            elements,
            seed,
            op,
            pattern,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn pattern_from_json(pat: &Json, elements: u64) -> Result<Generator, SpecError> {
        let ty = match pat.get("type").map(Json::as_str) {
            Some(Some(t)) => t,
            _ => return err("pattern must have a string \"type\""),
        };
        match ty {
            "stride" => {
                check_keys(pat, "pattern", &["type", "stride", "count", "start"])?;
                let stride = opt_u64(pat, "stride", 1)?;
                let start = opt_u64(pat, "start", 0)?;
                let default = default_stride_count(elements, start, stride);
                Ok(Generator::Stride {
                    stride,
                    count: opt_u64(pat, "count", default)?,
                    start,
                })
            }
            "mostly-stride" => {
                check_keys(pat, "pattern", &["type", "stride", "count", "deviate_pct"])?;
                let stride = opt_u64(pat, "stride", 1)?;
                let default = default_stride_count(elements, 0, stride);
                Ok(Generator::MostlyStride {
                    stride,
                    count: opt_u64(pat, "count", default)?,
                    deviate_pct: opt_u64(pat, "deviate_pct", 10)?,
                })
            }
            "stride-gap" => {
                check_keys(pat, "pattern", &["type", "block", "gap", "count"])?;
                let block = opt_u64(pat, "block", 8)?;
                let gap = opt_u64(pat, "gap", 8)?;
                let period = block.saturating_add(gap);
                let default = elements
                    .checked_div(period)
                    .unwrap_or(0)
                    .saturating_mul(block);
                Ok(Generator::StrideGap {
                    block,
                    gap,
                    count: opt_u64(pat, "count", default)?,
                })
            }
            "window-random" => {
                check_keys(pat, "pattern", &["type", "window", "count"])?;
                let window = opt_u64(pat, "window", elements)?;
                Ok(Generator::WindowRandom {
                    window,
                    count: opt_u64(pat, "count", window)?,
                })
            }
            "indirect" => {
                check_keys(
                    pat,
                    "pattern",
                    &["type", "count", "range", "dup_pct", "indices"],
                )?;
                let range = opt_u64(pat, "range", elements)?;
                let indices = match pat.get("indices") {
                    None => None,
                    Some(Json::Arr(items)) => {
                        let mut v = Vec::with_capacity(items.len());
                        for item in items {
                            match item.as_u64() {
                                Some(n) => v.push(n),
                                None => {
                                    return err("\"indices\" entries must be non-negative integers")
                                }
                            }
                        }
                        Some(v)
                    }
                    Some(_) => return err("\"indices\" must be an array"),
                };
                Ok(Generator::Indirect {
                    count: opt_u64(pat, "count", range)?,
                    range,
                    dup_pct: opt_u64(pat, "dup_pct", 0)?,
                    indices,
                })
            }
            other => err(format!(
                "unknown pattern type \"{other}\" (try stride, mostly-stride, stride-gap, \
                 window-random, indirect)"
            )),
        }
    }

    /// Checks every size/range invariant the compiler relies on.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.elements == 0 || !self.elements.is_multiple_of(64) {
            return err(format!(
                "\"elements\" must be a positive multiple of 64 (got {})",
                self.elements
            ));
        }
        if self.elements > MAX_ELEMENTS {
            return err(format!(
                "\"elements\" {} exceeds the cap of {MAX_ELEMENTS}",
                self.elements
            ));
        }
        let count = self.pattern.count();
        if count == 0 {
            return err("the pattern produces zero accesses");
        }
        if count > MAX_COUNT {
            return err(format!("count {count} exceeds the cap of {MAX_COUNT}"));
        }
        let in_bounds = |w: Option<u64>, what: &str| match w {
            Some(w) if w < self.elements => Ok(()),
            Some(w) => err(format!(
                "{what} reaches word {w}, past \"elements\" {}",
                self.elements
            )),
            None => err(format!("{what} overflows")),
        };
        match &self.pattern {
            Generator::Stride {
                stride,
                count,
                start,
            } => {
                if *stride == 0 {
                    return err("\"stride\" must be >= 1");
                }
                let last = count
                    .checked_sub(1)
                    .and_then(|c| c.checked_mul(*stride))
                    .and_then(|w| w.checked_add(*start));
                in_bounds(last, "the last strided access")
            }
            Generator::MostlyStride {
                stride,
                count,
                deviate_pct,
            } => {
                if *stride == 0 {
                    return err("\"stride\" must be >= 1");
                }
                if *deviate_pct > 100 {
                    return err("\"deviate_pct\" must be <= 100");
                }
                let last = count.checked_sub(1).and_then(|c| c.checked_mul(*stride));
                in_bounds(last, "the last strided access")
            }
            Generator::StrideGap { block, gap, count } => {
                if *block == 0 {
                    return err("\"block\" must be >= 1");
                }
                let t = count - 1;
                let last = (t / block)
                    .checked_mul(block.saturating_add(*gap))
                    .and_then(|w| w.checked_add(t % block));
                in_bounds(last, "the last block access")
            }
            Generator::WindowRandom { window, .. } => {
                if *window == 0 || *window > self.elements {
                    return err(format!("\"window\" must be in 1..=elements (got {window})"));
                }
                Ok(())
            }
            Generator::Indirect {
                range,
                dup_pct,
                indices,
                ..
            } => {
                if *dup_pct > 100 {
                    return err("\"dup_pct\" must be <= 100");
                }
                if *range == 0 || *range > self.elements {
                    return err(format!("\"range\" must be in 1..=elements (got {range})"));
                }
                if let Some(v) = indices {
                    for (t, w) in v.iter().enumerate() {
                        if *w >= self.elements {
                            return err(format!(
                                "indices[{t}] = {w} is past \"elements\" {}",
                                self.elements
                            ));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Renders the spec back to JSON text. `parse` of the result
    /// reproduces the spec exactly (round-trip, pinned by tests).
    pub fn to_json_string(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        s.push_str(&format!("  \"elements\": {},\n", self.elements));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"op\": \"{}\",\n", self.op.label()));
        s.push_str("  \"pattern\": {");
        match &self.pattern {
            Generator::Stride {
                stride,
                count,
                start,
            } => s.push_str(&format!(
                "\"type\": \"stride\", \"stride\": {stride}, \"count\": {count}, \
                 \"start\": {start}"
            )),
            Generator::MostlyStride {
                stride,
                count,
                deviate_pct,
            } => s.push_str(&format!(
                "\"type\": \"mostly-stride\", \"stride\": {stride}, \"count\": {count}, \
                 \"deviate_pct\": {deviate_pct}"
            )),
            Generator::StrideGap { block, gap, count } => s.push_str(&format!(
                "\"type\": \"stride-gap\", \"block\": {block}, \"gap\": {gap}, \
                 \"count\": {count}"
            )),
            Generator::WindowRandom { window, count } => s.push_str(&format!(
                "\"type\": \"window-random\", \"window\": {window}, \"count\": {count}"
            )),
            Generator::Indirect {
                count,
                range,
                dup_pct,
                indices,
            } => {
                s.push_str(&format!(
                    "\"type\": \"indirect\", \"count\": {count}, \"range\": {range}, \
                     \"dup_pct\": {dup_pct}"
                ));
                if let Some(v) = indices {
                    let list: Vec<String> = v.iter().map(|w| w.to_string()).collect();
                    s.push_str(&format!(", \"indices\": [{}]", list.join(", ")));
                }
            }
        }
        s.push_str("}\n}\n");
        s
    }

    /// A machine memory size comfortably holding the dataset: twice
    /// the data + index footprint plus slack, at least 8 MiB, power
    /// of two.
    pub fn mem_bytes_hint(&self) -> usize {
        let bytes = (self.elements + self.pattern.count() + (1 << 17)) * 8 * 2;
        (bytes as usize).next_power_of_two().max(8 << 20)
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "{} {} {} elements={} count={} seed={}",
            self.name,
            self.op.label(),
            self.pattern.label(),
            self.elements,
            self.pattern.count(),
            self.seed
        )
    }
}

/// Default access count for a strided generator: every strided slot
/// that fits in `[start, elements)`.
fn default_stride_count(elements: u64, start: u64, stride: u64) -> u64 {
    if stride == 0 || start >= elements {
        return 0;
    }
    (elements - start).div_ceil(stride)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_stride_spec() {
        let s =
            PatternSpec::parse(r#"{"elements": 4096, "pattern": {"type": "stride", "stride": 8}}"#)
                .unwrap();
        assert_eq!(s.name, "pattern");
        assert_eq!(s.seed, 42);
        assert_eq!(s.op, AccessOp::Gather);
        assert_eq!(
            s.pattern,
            Generator::Stride {
                stride: 8,
                count: 512,
                start: 0
            }
        );
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        let bad = [
            r#"{"elements": 4096}"#,
            r#"{"elements": 4096, "pattern": {"type": "stride"}, "bogus": 1}"#,
            r#"{"elements": 4096, "pattern": {"type": "wat"}}"#,
            r#"{"elements": 4096, "pattern": {"type": "stride", "stride": 1.5}}"#,
            r#"{"elements": 100, "pattern": {"type": "stride"}}"#,
            r#"{"elements": 4096, "pattern": {"type": "stride", "stride": 0}}"#,
            r#"{"elements": 4096, "pattern": {"type": "stride", "count": 4097}}"#,
            r#"{"elements": 4096, "op": "mangle", "pattern": {"type": "stride"}}"#,
            r#"{"elements": 4096, "pattern": {"type": "indirect", "indices": [4096]}}"#,
            r#"{"elements": 4096, "pattern": {"type": "window-random", "window": 8192}}"#,
            r#"{"elements": 4096, "pattern": {"type": "mostly-stride", "deviate_pct": 101}}"#,
        ];
        for text in bad {
            assert!(PatternSpec::parse(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn round_trips_every_generator() {
        let specs = [
            r#"{"name": "s", "elements": 4096, "seed": 7, "op": "scatter",
                "pattern": {"type": "stride", "stride": 6, "count": 100, "start": 2}}"#,
            r#"{"elements": 4096, "pattern": {"type": "mostly-stride", "stride": 8,
                "deviate_pct": 25}}"#,
            r#"{"elements": 4096, "pattern": {"type": "stride-gap", "block": 16, "gap": 48}}"#,
            r#"{"elements": 4096, "pattern": {"type": "window-random", "window": 256}}"#,
            r#"{"elements": 4096, "op": "scatter",
                "pattern": {"type": "indirect", "count": 64, "dup_pct": 50}}"#,
            r#"{"elements": 4096, "pattern": {"type": "indirect", "indices": [0, 5, 5, 9]}}"#,
        ];
        for text in specs {
            let a = PatternSpec::parse(text).unwrap();
            let b = PatternSpec::parse(&a.to_json_string()).unwrap();
            assert_eq!(a, b, "round-trip changed {text}");
        }
    }
}
