//! Materialization: a [`PatternSpec`] becomes a concrete, seeded
//! [`AccessStream`] of word indices — the single source of truth both
//! the op-stream compiler and the expected-checksum calculation
//! replay, so they cannot drift apart.

use gsdram_workloads::common::SplitMix;

use crate::spec::{Generator, PatternSpec};

/// The GS-DRAM gather stride usable for a uniform software stride:
/// the largest power of two dividing `stride`, capped at the chip
/// count (8). A result of 1 means the in-DRAM mechanism has nothing
/// to offer — pattern-ID translation only realigns power-of-two
/// strides (paper §3.3), which is exactly the collapse the
/// non-power-of-2 specs measure.
pub fn gather_q(stride: u64) -> u64 {
    if stride == 0 {
        return 1;
    }
    (stride & stride.wrapping_neg()).min(8)
}

/// A materialized access stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessStream {
    /// Word index of each access, in program order.
    pub indices: Vec<u64>,
    /// Per access: does it conform to the spec's uniform stride? Only
    /// conforming accesses may compile to gathered ops.
    pub conforms: Vec<bool>,
    /// The gather stride `Q` conforming accesses share (1 = none; the
    /// gathered ops use pattern `Q − 1`).
    pub q: u64,
    /// Whether the stream is indirect: the indices themselves live in
    /// simulated memory and each access loads `idx[t]` first.
    pub indirect: bool,
}

/// Materializes the spec's index stream (deterministic in the seed).
pub fn materialize(spec: &PatternSpec) -> AccessStream {
    let mut rng = SplitMix(spec.seed);
    match &spec.pattern {
        Generator::Stride {
            stride,
            count,
            start,
        } => {
            let indices: Vec<u64> = (0..*count).map(|t| start + t * stride).collect();
            let conforms = vec![true; indices.len()];
            AccessStream {
                indices,
                conforms,
                q: gather_q(*stride),
                indirect: false,
            }
        }
        Generator::MostlyStride {
            stride,
            count,
            deviate_pct,
        } => {
            let mut indices = Vec::with_capacity(*count as usize);
            let mut conforms = Vec::with_capacity(*count as usize);
            for t in 0..*count {
                if rng.below(100) < *deviate_pct {
                    indices.push(rng.below(spec.elements));
                    conforms.push(false);
                } else {
                    indices.push(t * stride);
                    conforms.push(true);
                }
            }
            AccessStream {
                indices,
                conforms,
                q: gather_q(*stride),
                indirect: false,
            }
        }
        Generator::StrideGap { block, gap, count } => {
            let indices: Vec<u64> = (0..*count)
                .map(|t| (t / block) * (block + gap) + t % block)
                .collect();
            let conforms = vec![false; indices.len()];
            AccessStream {
                indices,
                conforms,
                q: 1,
                indirect: false,
            }
        }
        Generator::WindowRandom { window, count } => {
            let indices: Vec<u64> = (0..*count).map(|_| rng.below(*window)).collect();
            let conforms = vec![false; indices.len()];
            AccessStream {
                indices,
                conforms,
                q: 1,
                indirect: false,
            }
        }
        Generator::Indirect {
            count,
            range,
            dup_pct,
            indices,
        } => {
            let indices: Vec<u64> = match indices {
                Some(v) => v.clone(),
                None => {
                    let mut v: Vec<u64> = Vec::with_capacity(*count as usize);
                    for t in 0..*count {
                        if t > 0 && rng.below(100) < *dup_pct {
                            let back = rng.below(t) as usize;
                            v.push(v[back]);
                        } else {
                            v.push(rng.below(*range));
                        }
                    }
                    v
                }
            };
            let conforms = vec![false; indices.len()];
            AccessStream {
                indices,
                conforms,
                q: 1,
                indirect: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PatternSpec;

    fn spec(text: &str) -> PatternSpec {
        PatternSpec::parse(text).unwrap()
    }

    #[test]
    fn gather_q_is_the_capped_pow2_divisor() {
        let cases = [
            (1, 1),
            (2, 2),
            (3, 1),
            (4, 4),
            (6, 2),
            (8, 8),
            (12, 4),
            (16, 8),
            (32, 8),
            (64, 8),
            (7, 1),
        ];
        for (stride, q) in cases {
            assert_eq!(gather_q(stride), q, "stride {stride}");
        }
    }

    #[test]
    fn materialization_is_seed_deterministic() {
        let s = spec(
            r#"{"elements": 4096, "seed": 9,
                "pattern": {"type": "indirect", "count": 512, "dup_pct": 30}}"#,
        );
        assert_eq!(materialize(&s), materialize(&s));
        let other = PatternSpec {
            seed: 10,
            ..s.clone()
        };
        assert_ne!(materialize(&other).indices, materialize(&s).indices);
    }

    #[test]
    fn streams_stay_in_bounds() {
        let texts = [
            r#"{"elements": 4096, "pattern": {"type": "stride", "stride": 6}}"#,
            r#"{"elements": 4096, "pattern": {"type": "mostly-stride", "stride": 8,
                "deviate_pct": 50}}"#,
            r#"{"elements": 4096, "pattern": {"type": "stride-gap", "block": 5, "gap": 11}}"#,
            r#"{"elements": 4096, "pattern": {"type": "window-random", "window": 128}}"#,
            r#"{"elements": 4096, "pattern": {"type": "indirect", "count": 999, "dup_pct": 80}}"#,
        ];
        for text in texts {
            let s = spec(text);
            let st = materialize(&s);
            assert_eq!(st.indices.len(), s.pattern.count() as usize);
            assert!(st.indices.iter().all(|w| *w < s.elements), "{text}");
        }
    }

    #[test]
    fn duplicates_appear_when_requested() {
        let s = spec(
            r#"{"elements": 4096,
                "pattern": {"type": "indirect", "count": 1024, "dup_pct": 50}}"#,
        );
        let st = materialize(&s);
        let mut sorted = st.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(
            sorted.len() < st.indices.len() * 3 / 4,
            "expected heavy duplication, got {} distinct of {}",
            sorted.len(),
            st.indices.len()
        );
    }
}
