//! Seeded adversarial fuzzing of the pattern-spec parser.
//!
//! The parser fronts user-supplied files (`gsdram-sim pattern
//! <file>`), so it must reject hostile input with a `SpecError`, never
//! a panic. Three seeded corpora drive it well past the 256-input
//! acceptance floor: byte-level mutations of every builtin's canonical
//! JSON, random printable garbage, and hand-built structurally hostile
//! documents. Whenever the parser *accepts* an input, the accepted
//! spec must survive the canonical round-trip and (when small enough
//! to afford it) materialise an in-bounds index stream.

use gsdram_core::rng::SplitMix;
use gsdram_patterns::{builtin, materialize, PatternSpec, BUILTIN_NAMES};

/// Parse must return `Ok` or `Err` — anything else is a test failure
/// by panic. Accepted specs are pushed through the round-trip and a
/// bounded materialisation so "accepted" also means "usable".
fn probe(input: &str) {
    if let Ok(spec) = PatternSpec::parse(input) {
        let back = PatternSpec::parse(&spec.to_json_string())
            .expect("canonical form of an accepted spec must re-parse");
        assert_eq!(spec, back, "round-trip must be lossless");
        if spec.pattern.count() <= 4096 {
            let stream = materialize(&spec);
            assert!(stream.indices.iter().all(|&w| w < spec.elements));
        }
    }
}

/// Byte-level mutations of valid specs: flips, splices, truncations,
/// and digit storms at seeded positions.
#[test]
fn mutated_builtin_specs_never_panic() {
    let mut rng = SplitMix(0xF422);
    let corpus: Vec<String> = BUILTIN_NAMES
        .iter()
        .map(|n| builtin(n).expect("builtin exists").to_json_string())
        .collect();
    let mut probes = 0usize;
    for base in &corpus {
        for _ in 0..48 {
            let mut bytes = base.clone().into_bytes();
            match rng.below(5) {
                // Overwrite one byte with printable garbage.
                0 => {
                    let at = rng.below(bytes.len() as u64) as usize;
                    bytes[at] = 32 + (rng.below(95) as u8);
                }
                // Delete a byte.
                1 => {
                    let at = rng.below(bytes.len() as u64) as usize;
                    bytes.remove(at);
                }
                // Insert a structural character.
                2 => {
                    let at = rng.below(bytes.len() as u64 + 1) as usize;
                    let ch = b"{}[],:\"-0123456789eE."[rng.below(21) as usize];
                    bytes.insert(at, ch);
                }
                // Truncate.
                3 => {
                    bytes.truncate(rng.below(bytes.len() as u64) as usize);
                }
                // Blow up a number with extra digits.
                _ => {
                    if let Some(at) = bytes.iter().position(|b| b.is_ascii_digit()) {
                        for _ in 0..rng.range(1, 30) {
                            bytes.insert(at, b'0' + (rng.below(10) as u8));
                        }
                    }
                }
            }
            probe(&String::from_utf8_lossy(&bytes));
            probes += 1;
        }
    }
    assert!(probes >= 256, "fuzz floor: ran only {probes} mutations");
}

/// Random printable strings: almost all invalid JSON, none may panic.
#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix(0xBEEF);
    for _ in 0..256 {
        let len = rng.below(200) as usize;
        let s: String = (0..len)
            .map(|_| char::from(32 + (rng.below(95) as u8)))
            .collect();
        probe(&s);
    }
}

/// Structurally hostile documents: boundary numbers, wrong types,
/// deep nesting, overflow-bait arithmetic, duplicate and unknown
/// keys, embedded escapes.
#[test]
fn hostile_structures_never_panic() {
    let deep_open = "[".repeat(4000);
    let deep_close = "]".repeat(4000);
    let big_indices = format!(
        "{{\"elements\": 64, \"pattern\": {{\"type\": \"indirect\", \"indices\": [{}]}}}}",
        vec!["63"; 5000].join(",")
    );
    let cases: Vec<String> = [
        "",
        " ",
        "null",
        "0",
        "[]",
        "{}",
        "{\"elements\": 18446744073709551615, \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 9007199254740993, \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": -64, \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 64.5, \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 1e30, \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": \"64\", \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 64, \"pattern\": \"stride\"}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"stride\", \"stride\": 18446744073709551615}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"stride\", \"start\": 18446744073709551615}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"stride-gap\", \"block\": 4294967296, \"gap\": 4294967296}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"indirect\", \"indices\": [null]}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"indirect\", \"indices\": 7}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"indirect\", \"dup_pct\": 18446744073709551615}}",
        "{\"elements\": 64, \"seed\": -1, \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 64, \"name\": \"\\u0000\\\"\\\\\", \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 64, \"elements\": 128, \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"stride\"}, \"pattern\": {\"type\": \"wat\"}}",
        "{\"elements\": 64, \"op\": \"gather\", \"op\": \"scatter\", \"pattern\": {\"type\": \"stride\"}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"Stride\"}}",
        "{\"elements\": 64, \"pattern\": {\"type\": \"stride\", \"type\": \"indirect\"}}",
    ]
    .into_iter()
    .map(str::to_owned)
    .chain([
        format!("{deep_open}{deep_close}"),
        format!("{{\"elements\": 64, \"pattern\": {deep_open}{deep_close}}}"),
        big_indices,
    ])
    .collect();
    for case in &cases {
        probe(case);
    }
    // Every builtin itself must parse and round-trip, as the sanity
    // anchor for the corpus above.
    for name in BUILTIN_NAMES {
        let spec = builtin(name).expect("builtin exists");
        probe(&spec.to_json_string());
    }
}
