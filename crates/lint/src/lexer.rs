//! A hand-rolled, dependency-free Rust lexer.
//!
//! The linter does not need a full parse — it needs to walk source
//! *tokens* so that identifiers inside strings, comments, and doc
//! examples are never mistaken for code. The contract (pinned by the
//! round-trip property test in `tests/roundtrip.rs`) is:
//!
//! * `lex` never panics, on any input;
//! * token spans are contiguous, in order, and cover the whole input
//!   byte-for-byte (`src[t.start..t.end]` concatenated == `src`).
//!
//! Anything the lexer cannot classify becomes a one-char
//! [`TokKind::Punct`] token, so unknown syntax degrades to "scanned but
//! unclassified" rather than "skipped" — the scanner can't silently
//! miss code.

/// What a token is, as far as the rule engine cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `as`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer or float literal, including suffix (`1_000u64`, `1.5e9`).
    Number,
    /// String literal of any flavour (`"x"`, `r#"x"#`, `b"x"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `// ...` (incl. `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* ... */`, nesting handled, unterminated runs to EOF.
    BlockComment,
    /// A run of whitespace.
    Whitespace,
    /// A single punctuation/operator character.
    Punct,
}

/// One lexed token: kind plus byte span and 1-based position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in chars) of the token's first byte.
    pub col: u32,
}

/// Lexes `src` into a complete, span-covering token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    /// Byte cursor, always on a char boundary.
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, nth: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(nth)
    }

    /// Advances one char, tracking line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: u32, col: u32) {
        debug_assert!(self.pos > start, "token must consume input");
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.scan_one(c);
            self.emit(kind, start, line, col);
        }
        self.out
    }

    /// Consumes one token starting at `c` and returns its kind. Always
    /// consumes at least one char.
    fn scan_one(&mut self, c: char) -> TokKind {
        if c.is_whitespace() {
            while self.peek().is_some_and(char::is_whitespace) {
                self.bump();
            }
            return TokKind::Whitespace;
        }
        if c == '/' {
            match self.peek_at(1) {
                Some('/') => return self.scan_line_comment(),
                Some('*') => return self.scan_block_comment(),
                _ => {
                    self.bump();
                    return TokKind::Punct;
                }
            }
        }
        if c == '"' {
            return self.scan_string();
        }
        if c == '\'' {
            return self.scan_quote();
        }
        if c.is_ascii_digit() {
            return self.scan_number();
        }
        if is_ident_start(c) {
            return self.scan_ident_or_prefixed(c);
        }
        self.bump();
        TokKind::Punct
    }

    fn scan_line_comment(&mut self) -> TokKind {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        TokKind::LineComment
    }

    fn scan_block_comment(&mut self) -> TokKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: run to EOF
            }
        }
        TokKind::BlockComment
    }

    /// A `"..."` body with escapes; the opening quote is not yet
    /// consumed. Unterminated strings run to EOF.
    fn scan_string(&mut self) -> TokKind {
        self.bump(); // '"'
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        TokKind::Str
    }

    /// Raw string body `r##"..."##` with `hashes` hashes; cursor sits
    /// on the first `#` or `"`.
    fn scan_raw_string(&mut self, hashes: usize) -> TokKind {
        for _ in 0..hashes {
            self.bump(); // '#'
        }
        self.bump(); // '"'
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        TokKind::Str
    }

    /// A `'` token: lifetime, char literal, or (for broken input) a
    /// lone quote punct.
    fn scan_quote(&mut self) -> TokKind {
        match (self.peek_at(1), self.peek_at(2)) {
            // '\x7f', '\'', '\\' — escaped char literal.
            (Some('\\'), _) => {
                self.bump(); // '\''
                self.bump(); // '\\'
                self.bump(); // escape head
                             // Consume to the closing quote (covers \u{...}).
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                TokKind::Char
            }
            // 'x' — one-char literal (covers '(' , '"' , etc.).
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.bump();
                TokKind::Char
            }
            // 'ident — a lifetime.
            (Some(c), _) if is_ident_start(c) => {
                self.bump(); // '\''
                while self.peek().is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokKind::Lifetime
            }
            _ => {
                self.bump();
                TokKind::Punct
            }
        }
    }

    /// A numeric literal: int, float, exponent, suffix. Never consumes
    /// a `..` range operator.
    fn scan_number(&mut self) -> TokKind {
        let start = self.pos;
        self.bump();
        loop {
            match self.peek() {
                Some(c) if is_ident_continue(c) => {
                    self.bump();
                    // `1e-9` / `1E+9`: sign directly after exponent,
                    // but not in hex literals (0xE is a digit).
                    if (c == 'e' || c == 'E')
                        && !self.src[start..self.pos].starts_with("0x")
                        && matches!(self.peek(), Some('+' | '-'))
                        && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        self.bump();
                    }
                }
                Some('.') => {
                    // A float dot only if followed by a digit (so `0..n`
                    // and `1.max(2)` split correctly).
                    if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        TokKind::Number
    }

    /// An identifier, or a string literal carrying an `r`/`b`/`br`
    /// prefix, or a raw identifier `r#name`.
    fn scan_ident_or_prefixed(&mut self, first: char) -> TokKind {
        // String-literal prefixes are decided before consuming the
        // ident, from the raw lookahead. Rust's prefixes are exactly
        // `r`, `b`, `br` — there is no `rb`, so `rb"x"` must lex as
        // the ident `rb` followed by a string, like rustc does.
        if matches!(first, 'r' | 'b') {
            let rest = &self.src[self.pos..];
            let prefix_len = if rest.starts_with("br") { 2 } else { 1 };
            let after = &rest[prefix_len..];
            // Hash run length on the raw byte slice: a raw string may
            // carry arbitrarily many hashes, and undercounting (the old
            // capped lookahead) lexes the *contents* of a valid raw
            // string as code — a rule-soundness hole, not a cosmetic
            // one.
            let hashes = after.bytes().take_while(|&b| b == b'#').count();
            let is_raw_capable = first == 'r' || rest.starts_with("br");
            if after.starts_with('"') && prefix_len == 1 && first == 'b' {
                // b"..."
                self.bump();
                return self.scan_string();
            }
            if is_raw_capable && after.as_bytes().get(hashes) == Some(&b'"') {
                // r"..." / br"..." / r#"..."# / br##"..."##
                for _ in 0..prefix_len {
                    self.bump();
                }
                return if hashes == 0 {
                    self.scan_string()
                } else {
                    self.scan_raw_string(hashes)
                };
            }
            if first == 'r' && prefix_len == 1 && after.starts_with('#') {
                // r#ident (raw identifier) — but only when an ident
                // follows the hash; `r#"` was handled above.
                if after.chars().nth(1).is_some_and(is_ident_start) {
                    self.bump(); // r
                    self.bump(); // #
                    while self.peek().is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    return TokKind::Ident;
                }
            }
            if prefix_len == 1 && first == 'b' && after.starts_with('\'') {
                // b'x' byte literal.
                self.bump(); // b
                return self.scan_quote();
            }
        }
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
        TokKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    fn covers(src: &str) {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before token {t:?} in {src:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "trailing gap in {src:?}");
    }

    #[test]
    fn idents_and_puncts() {
        use TokKind::*;
        assert_eq!(
            kinds("let x = y.unwrap();"),
            vec![Ident, Ident, Punct, Ident, Punct, Ident, Punct, Punct, Punct]
        );
        covers("let x = y.unwrap();");
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "HashMap::unwrap()";"#);
        assert!(toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .all(|t| t.end - t.start < 4));
        covers(r#"let s = "HashMap::unwrap()";"#);
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        covers(r##"let s = r#"quote " inside"#;"##);
        covers(r#"let b = b"bytes";"#);
        covers("let r = r\"raw\";");
        let toks = lex(r##"r#"x"#"##);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Str);
    }

    #[test]
    fn raw_idents() {
        let toks = lex("r#type");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Ident);
        // Raw identifiers keep their `r#` in the token text, so a rule
        // matching on `as`/`now`/`unwrap` never confuses `r#as` with
        // the keyword it escapes.
        for kw in ["r#as", "r#fn", "r#match", "r#await", "r#type"] {
            let toks = lex(kw);
            assert_eq!(toks.len(), 1, "{kw}");
            assert_eq!(toks[0].kind, TokKind::Ident, "{kw}");
            assert_eq!(&kw[toks[0].start..toks[0].end], kw);
        }
        covers("let r#type = r#match.r#await;");
    }

    #[test]
    fn rb_is_not_a_string_prefix() {
        // Rust's literal prefixes are `r`, `b`, `br` — `rb"x"` is the
        // identifier `rb` followed by a string, not a raw string.
        use TokKind::*;
        assert_eq!(kinds("rb\"x\""), vec![Ident, Str]);
        let toks = lex("rb\"x\"");
        assert_eq!(&"rb\"x\""[toks[0].start..toks[0].end], "rb");
        // The real prefixes still lex as one literal.
        assert_eq!(kinds("br\"x\""), vec![Str]);
        assert_eq!(kinds("b\"x\""), vec![Str]);
        assert_eq!(kinds("r\"x\""), vec![Str]);
        covers("rb\"x\"");
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        // The hash run is counted on the raw slice, not a capped
        // lookahead: a 300-hash raw string is still *one* Str token,
        // so its contents are never scanned as code.
        for n in [1usize, 8, 255, 256, 300] {
            let h = "#".repeat(n);
            let src = format!("r{h}\"let x = HashMap::new();\"{h}");
            let toks = lex(&src);
            assert_eq!(toks.len(), 1, "{n} hashes");
            assert_eq!(toks[0].kind, TokKind::Str, "{n} hashes");
            covers(&src);
        }
    }

    #[test]
    fn nested_comments_with_string_lookalikes() {
        // Block comments nest blindly (rustc does not parse strings
        // inside comments), so a `/*` inside a quoted lookalike still
        // opens a nesting level and the comment spans to the matching
        // close — or to EOF when unbalanced.
        use TokKind::*;
        assert_eq!(kinds("/* \"*/\" */ x"), vec![BlockComment, Str]);
        let balanced = "/* \"/*\" x */ y */ z";
        assert_eq!(kinds(balanced), vec![BlockComment, Ident]);
        covers(balanced);
        let unterminated = "/* \"/*\" */ x";
        assert_eq!(kinds(unterminated), vec![BlockComment]);
        covers(unterminated);
        covers("/* r#\"*/ tail */ x");
        covers("/* b\"*/\" */ after");
    }

    #[test]
    fn chars_vs_lifetimes() {
        use TokKind::*;
        assert_eq!(kinds("'a'"), vec![Char]);
        assert_eq!(kinds("'\\n'"), vec![Char]);
        assert_eq!(kinds("&'a str"), vec![Punct, Lifetime, Ident]);
        assert_eq!(kinds("'static"), vec![Lifetime]);
        assert_eq!(kinds("b'x'"), vec![Char]);
        covers("fn f<'a>(x: &'a u8) -> char { 'q' }");
    }

    #[test]
    fn numbers_and_ranges() {
        use TokKind::*;
        assert_eq!(kinds("0..10"), vec![Number, Punct, Punct, Number]);
        assert_eq!(kinds("1.5e-3"), vec![Number]);
        assert_eq!(kinds("1_000u64"), vec![Number]);
        assert_eq!(kinds("0xEF"), vec![Number]);
        assert_eq!(
            kinds("1.max(2)"),
            vec![Number, Punct, Ident, Punct, Number, Punct]
        );
        covers("let x = 1.5e-3 + 0x1F - 2.0f64;");
    }

    #[test]
    fn comments_nest_and_terminate() {
        use TokKind::*;
        assert_eq!(kinds("// line\nx"), vec![LineComment, Ident]);
        assert_eq!(kinds("/* a /* b */ c */ x"), vec![BlockComment, Ident]);
        assert_eq!(kinds("/* open"), vec![BlockComment]);
        covers("/// doc with `HashMap` example\nfn f() {}");
    }

    #[test]
    fn line_col_tracking() {
        let toks = lex("ab\n  cd");
        let cd = toks.last().unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
    }

    #[test]
    fn hostile_inputs_do_not_panic() {
        for src in [
            "'",
            "\"",
            "r#",
            "b",
            "r#\"",
            "/*",
            "'\\",
            "0.",
            "'a",
            "\u{1F600}'x'",
        ] {
            covers(src);
        }
    }
}
