//! Workspace symbol table and cross-file item graph.
//!
//! The structural rules need to connect items that live in different
//! files of the same crate: a `struct FooStats` in `stats.rs` and the
//! `impl FooStats` carrying `merge` in `merge.rs` (D9), or every
//! `static mut` across a crate (D8). This module parses every file's
//! items once and indexes them two ways — type definitions by name and
//! `impl` blocks by self-type name — pairing them only **within one
//! crate**, because two crates may legitimately define types with the
//! same short name and a cross-crate edge would invent a relationship
//! the compiler never sees.
//!
//! The graph is also the contract surface for ROADMAP item 2: when
//! per-channel simulation shards across threads, the sharding plan is
//! derived from (and checked against) this item graph, not from
//! grepping source text.

use std::collections::BTreeMap;

use crate::items::{parse_items, Item, ItemKind};
use crate::scan::SourceFile;

/// Stable handle to one item: file index plus the path of child
/// indices from the file's top level down to the item.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId {
    pub file: usize,
    pub path: Vec<usize>,
}

/// Parsed items of one file, kept alongside its scan model.
pub struct FileItems {
    /// Index into the workspace file list this was parsed from.
    pub file: usize,
    pub items: Vec<Item>,
}

/// The cross-file item graph for one workspace scan.
pub struct ItemGraph {
    pub files: Vec<FileItems>,
    /// Type definitions (struct/enum/union/trait) by declared name.
    /// Multiple entries when the same short name exists in several
    /// crates (or several modules of one crate).
    pub type_defs: BTreeMap<String, Vec<NodeId>>,
    /// `impl` blocks by self-type last path segment.
    pub impls: BTreeMap<String, Vec<NodeId>>,
}

impl ItemGraph {
    /// Parses every file's items and builds the name indexes.
    pub fn build(files: &[SourceFile]) -> ItemGraph {
        let mut graph = ItemGraph {
            files: Vec::with_capacity(files.len()),
            type_defs: BTreeMap::new(),
            impls: BTreeMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            let items = parse_items(f);
            index_items(
                &items,
                fi,
                &mut Vec::new(),
                &mut graph.type_defs,
                &mut graph.impls,
            );
            graph.files.push(FileItems { file: fi, items });
        }
        graph
    }

    /// Resolves a node id back to its item.
    pub fn item(&self, id: &NodeId) -> &Item {
        let mut items = &self.files[id.file].items;
        let mut item = &items[id.path[0]];
        for &step in &id.path[1..] {
            items = &item.children;
            item = &items[step];
        }
        item
    }

    /// All `impl` blocks for type `name` that live in the same crate
    /// as the defining file — inherent and trait impls alike.
    pub fn impls_of<'a>(
        &'a self,
        name: &str,
        files: &[SourceFile],
        def_file: usize,
    ) -> Vec<&'a NodeId> {
        let def_crate = files[def_file].class.crate_name.as_deref();
        self.impls
            .get(name)
            .map(|ids| {
                ids.iter()
                    .filter(|id| files[id.file].class.crate_name.as_deref() == def_crate)
                    .collect()
            })
            .unwrap_or_default()
    }
}

fn index_items(
    items: &[Item],
    file: usize,
    path: &mut Vec<usize>,
    type_defs: &mut BTreeMap<String, Vec<NodeId>>,
    impls: &mut BTreeMap<String, Vec<NodeId>>,
) {
    for (i, item) in items.iter().enumerate() {
        path.push(i);
        let id = || NodeId {
            file,
            path: path.clone(),
        };
        match item.kind {
            ItemKind::Struct | ItemKind::Enum | ItemKind::Union | ItemKind::Trait
                if !item.name.is_empty() =>
            {
                type_defs.entry(item.name.clone()).or_default().push(id());
            }
            ItemKind::Impl => {
                if let Some(ty) = &item.self_ty {
                    impls.entry(ty.clone()).or_default().push(id());
                }
            }
            _ => {}
        }
        index_items(&item.children, file, path, type_defs, impls);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.to_string(), src.to_string())
    }

    #[test]
    fn cross_file_impl_pairing_stays_within_a_crate() {
        let files = vec![
            file("crates/dram/src/stats.rs", "pub struct S { pub a: u64 }\n"),
            file(
                "crates/dram/src/merge.rs",
                "impl S { pub fn merge(&mut self, other: &Self) { self.a += other.a; } }\n",
            ),
            file(
                "crates/cache/src/other.rs",
                "pub struct S { pub b: u64 }\nimpl S { fn zap(&mut self) {} }\n",
            ),
        ];
        let g = ItemGraph::build(&files);
        let defs = &g.type_defs["S"];
        assert_eq!(defs.len(), 2, "one S per crate");
        // The dram-crate S pairs only with the dram-crate impl.
        let dram_def = defs.iter().find(|id| id.file == 0).unwrap();
        let imps = g.impls_of("S", &files, dram_def.file);
        assert_eq!(imps.len(), 1);
        assert_eq!(imps[0].file, 1);
        let imp = g.item(imps[0]);
        assert_eq!(imp.children[0].name, "merge");
    }

    #[test]
    fn nested_items_get_path_ids() {
        let files = vec![file(
            "crates/core/src/x.rs",
            "mod inner { pub struct Deep { x: u64 } impl Deep { fn f(&self) {} } }\n",
        )];
        let g = ItemGraph::build(&files);
        let id = &g.type_defs["Deep"][0];
        assert_eq!(id.path.len(), 2, "struct sits one level down");
        assert_eq!(g.item(id).name, "Deep");
        let imp = g.item(g.impls_of("Deep", &files, 0)[0]);
        assert_eq!(imp.children[0].name, "f");
    }
}
