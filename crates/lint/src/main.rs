//! The `gsdram-lint` binary.
//!
//! ```text
//! gsdram-lint --workspace [--deny] [--quiet]   # lint the enclosing workspace
//! gsdram-lint <root> [--deny]                  # lint an explicit tree
//! gsdram-lint --workspace --format json        # findings as stable JSON on stdout
//! gsdram-lint --workspace --write-waivers lint_waivers.json
//!                                              # (re)generate the D10 baseline
//! gsdram-lint --list-rules                     # print the rule catalogue
//! ```
//!
//! Exit codes: `0` clean (or advisory mode), `1` violations found with
//! `--deny`, `2` usage or I/O error.

// Binary target: printing the report is the job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use gsdram_lint::{check_loaded, format, workspace, RULES};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Args {
    root: Option<PathBuf>,
    use_workspace: bool,
    deny: bool,
    quiet: bool,
    list_rules: bool,
    format: Format,
    write_waivers: Option<PathBuf>,
}

const USAGE: &str = "usage: gsdram-lint [--workspace | <root>] [--deny] [--quiet] \
                     [--format text|json] [--write-waivers <path>] [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        use_workspace: false,
        deny: false,
        quiet: false,
        list_rules: false,
        format: Format::Text,
        write_waivers: None,
    };
    let mut it = env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.use_workspace = true,
            "--deny" => args.deny = true,
            "--quiet" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format takes `text` or `json`, got {:?}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--write-waivers" => {
                let Some(path) = it.next() else {
                    return Err("--write-waivers takes a path".to_string());
                };
                args.write_waivers = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if args.root.replace(PathBuf::from(path)).is_some() {
                    return Err("at most one root path".to_string());
                }
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULES {
            println!("{:3}  {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            if args.use_workspace {
                match workspace::find_root(&cwd) {
                    Some(r) => r,
                    None => {
                        eprintln!("no enclosing workspace found from {}", cwd.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                cwd
            }
        }
    };
    let ws = match workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.write_waivers {
        let doc = format::waivers_json(&ws.files) + "\n";
        if let Err(e) = fs::write(path, doc) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !args.quiet {
            eprintln!("gsdram-lint: wrote waiver baseline to {}", path.display());
        }
        return ExitCode::SUCCESS;
    }
    let report = check_loaded(&ws);
    match args.format {
        Format::Text => {
            for v in &report.violations {
                println!("{}:{}:{}: {}: {}", v.rel, v.line, v.col, v.rule, v.msg);
            }
        }
        Format::Json => {
            // Findings to stdout (pipeable, byte-stable); the human
            // summary stays on stderr.
            println!("{}", format::findings_json(&report, &ws.files));
        }
    }
    if !args.quiet {
        eprintln!(
            "gsdram-lint: {} files, {} violation(s), {} waived",
            report.files,
            report.violations.len(),
            report.waived
        );
    }
    if args.deny && !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
