//! The `gsdram-lint` binary.
//!
//! ```text
//! gsdram-lint --workspace [--deny] [--quiet]   # lint the enclosing workspace
//! gsdram-lint <root> [--deny]                  # lint an explicit tree
//! gsdram-lint --list-rules                     # print the rule catalogue
//! ```
//!
//! Exit codes: `0` clean (or advisory mode), `1` violations found with
//! `--deny`, `2` usage or I/O error.

// Binary target: printing the report is the job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use gsdram_lint::{check_root, workspace, RULES};

struct Args {
    root: Option<PathBuf>,
    use_workspace: bool,
    deny: bool,
    quiet: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        use_workspace: false,
        deny: false,
        quiet: false,
        list_rules: false,
    };
    for a in env::args().skip(1) {
        match a.as_str() {
            "--workspace" => args.use_workspace = true,
            "--deny" => args.deny = true,
            "--quiet" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: gsdram-lint [--workspace | <root>] [--deny] [--quiet] [--list-rules]"
                        .to_string(),
                )
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if args.root.replace(PathBuf::from(path)).is_some() {
                    return Err("at most one root path".to_string());
                }
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULES {
            println!("{:3}  {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            if args.use_workspace {
                match workspace::find_root(&cwd) {
                    Some(r) => r,
                    None => {
                        eprintln!("no enclosing workspace found from {}", cwd.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                cwd
            }
        }
    };
    let report = match check_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{}:{}:{}: {}: {}", v.rel, v.line, v.col, v.rule, v.msg);
    }
    if !args.quiet {
        eprintln!(
            "gsdram-lint: {} files, {} violation(s), {} waived",
            report.files,
            report.violations.len(),
            report.waived
        );
    }
    if args.deny && !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
