//! File model: a lexed source file plus everything the rules need to
//! know about it — where it sits in the workspace, which byte ranges
//! are test-only code, and which lines carry waivers.

use std::cell::Cell;
use std::path::PathBuf;

use crate::lexer::{lex, TokKind, Token};

/// How a file participates in the build, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `crates/*/src/` (or the root facade `src/`).
    Lib,
    /// A binary target (`src/bin/*`, `src/main.rs`).
    Bin,
    /// Integration tests, benches, or examples.
    Test,
}

/// Workspace placement of one file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Short crate name (`core`, `dram`, ... or `gsdram` for the root
    /// facade); `None` for files outside any crate.
    pub crate_name: Option<String>,
    pub kind: FileKind,
}

/// The simulation crates: everything whose behaviour feeds figure
/// output. Rules D1/D5 scope to these (plus `telemetry`, which folds
/// the observer stream into report subtrees).
pub const SIM_CRATES: &[&str] = &["core", "dram", "cache", "system", "workloads", "patterns"];

impl FileClass {
    /// Classifies a workspace-relative path (unix separators).
    pub fn of(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let (crate_name, rest): (Option<String>, &[&str]) = if parts.first() == Some(&"crates") {
            (parts.get(1).map(|s| s.to_string()), &parts[2..])
        } else {
            // Root package (the `gsdram` facade crate).
            (Some("gsdram".to_string()), &parts[..])
        };
        let kind = match rest.first() {
            Some(&"src") => {
                if rest.get(1) == Some(&"bin") || rest.last() == Some(&"main.rs") {
                    FileKind::Bin
                } else {
                    FileKind::Lib
                }
            }
            Some(&"tests") | Some(&"benches") | Some(&"examples") => FileKind::Test,
            _ => FileKind::Test,
        };
        FileClass { crate_name, kind }
    }

    /// Whether this is non-test library code of a simulation crate
    /// (optionally counting `telemetry` in).
    pub fn is_sim_lib(&self, include_telemetry: bool) -> bool {
        self.kind == FileKind::Lib
            && self
                .crate_name
                .as_deref()
                .is_some_and(|c| SIM_CRATES.contains(&c) || (include_telemetry && c == "telemetry"))
    }
}

/// One inline waiver comment, in one of two forms:
///
/// ```text
/// // gsdram-lint: allow(D4) reason text
/// // gsdram-lint: allow-block(D5) reason text
/// ```
///
/// The line form suppresses the named rules on its own line and on the
/// line directly below it (so it can trail the offending statement or
/// sit on its own line above it). The block form suppresses them from
/// the comment through the end of the next brace block — for report
/// helpers that are float leaves top to bottom, one justification
/// instead of one per line. Every waiver must carry a reason, and
/// every waiver must be *used* — both are enforced as rules (`W0`,
/// `W1`), so exceptions stay greppable, justified, and alive.
#[derive(Debug)]
pub struct Waiver {
    /// Rule ids named in `allow(...)`, e.g. `["D4"]`.
    pub rules: Vec<String>,
    /// Free-text justification after the closing paren.
    pub reason: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// For `allow-block`: the last line covered (the block's closing
    /// brace), resolved after lexing.
    pub end_line: Option<u32>,
    /// Set when any rule consults and honours this waiver.
    pub used: Cell<bool>,
}

/// The marker every line waiver comment must contain.
pub const WAIVER_MARKER: &str = "gsdram-lint: allow(";
/// The marker of the block-scoped waiver form.
pub const BLOCK_WAIVER_MARKER: &str = "gsdram-lint: allow-block(";

/// Parses a waiver out of one comment body, if a marker is present.
/// Returns `(waiver, malformed)`: `malformed` is set when a marker
/// appears but the syntax around it is broken (unclosed paren or no
/// rule list) — the scanner reports those instead of silently ignoring
/// a waiver the author believed was active. Block waivers come back
/// with `end_line: Some(line)` as a placeholder; the caller resolves
/// the real block end.
fn parse_waiver(text: &str, line: u32) -> (Option<Waiver>, bool) {
    let (at, marker) = match text.find(BLOCK_WAIVER_MARKER) {
        Some(at) => (at, BLOCK_WAIVER_MARKER),
        None => match text.find(WAIVER_MARKER) {
            Some(at) => (at, WAIVER_MARKER),
            None => return (None, false),
        },
    };
    let after = &text[at + marker.len()..];
    let Some(close) = after.find(')') else {
        return (None, true);
    };
    let rules: Vec<String> = after[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return (None, true);
    }
    let reason = after[close + 1..]
        .trim()
        .trim_end_matches("*/")
        .trim()
        .to_string();
    (
        Some(Waiver {
            rules,
            reason,
            line,
            end_line: (marker == BLOCK_WAIVER_MARKER).then_some(line),
            used: Cell::new(false),
        }),
        false,
    )
}

/// A lexed workspace source file, ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute (or scan-root-relative) on-disk path.
    pub path: PathBuf,
    /// Workspace-relative path with unix separators; what rules match
    /// on and what reports print.
    pub rel: String,
    pub class: FileClass,
    pub src: String,
    pub tokens: Vec<Token>,
    /// Byte ranges of `#[cfg(test)] mod ... { ... }` bodies.
    pub test_regions: Vec<(usize, usize)>,
    pub waivers: Vec<Waiver>,
    /// Lines whose waiver marker was present but unparseable.
    pub malformed_waivers: Vec<u32>,
}

impl SourceFile {
    /// Lexes and indexes one file's contents.
    ///
    /// Waivers are only collected from *plain* comments (`//`, `/* */`)
    /// outside `#[cfg(test)]` modules: doc comments may quote the
    /// waiver syntax when documenting it, and test code is outside
    /// every rule's scope, so neither can introduce a live waiver.
    pub fn parse(path: PathBuf, rel: String, src: String) -> SourceFile {
        let tokens = lex(&src);
        let class = FileClass::of(&rel);
        let test_regions = find_test_regions(&src, &tokens);
        let in_test = |pos: usize| test_regions.iter().any(|&(s, e)| pos >= s && pos < e);
        let mut waivers = Vec::new();
        let mut malformed_waivers = Vec::new();
        for t in &tokens {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            let text = &src[t.start..t.end];
            let is_doc = text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!");
            if is_doc || in_test(t.start) {
                continue;
            }
            let (w, malformed) = parse_waiver(text, t.line);
            if let Some(mut w) = w {
                if w.end_line.is_some() {
                    w.end_line = Some(resolve_block_end(&src, &tokens, w.line));
                }
                waivers.push(w);
            }
            if malformed {
                malformed_waivers.push(t.line);
            }
        }
        SourceFile {
            path,
            rel,
            class,
            src,
            tokens,
            test_regions,
            waivers,
            malformed_waivers,
        }
    }

    /// Text of a token.
    pub fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }

    /// Whether byte offset `pos` falls inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, pos: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// Looks up a waiver for `rule` covering `line`, marking it used.
    /// Reasonless waivers never suppress — rule W0 reports them
    /// instead, so an unjustified exception cannot hide a violation.
    pub fn waived(&self, rule: &str, line: u32) -> bool {
        for w in &self.waivers {
            if w.reason.is_empty() {
                continue;
            }
            let covers = match w.end_line {
                // Block waiver: from the comment to the block's close.
                Some(end) => line >= w.line && line <= end,
                // Line waiver: its own line and the line below.
                None => w.line == line || w.line + 1 == line,
            };
            if covers && w.rules.iter().any(|r| r == rule) {
                w.used.set(true);
                return true;
            }
        }
        false
    }

    /// Indices of non-trivia tokens (skipping whitespace and comments),
    /// the stream code rules walk.
    pub fn code_tokens(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Resolves the line of the `}` closing the first brace block opened
/// at or after `from_line` — the coverage end of an `allow-block`
/// waiver. Falls back to the last line of the file when no block
/// opens (a trailing comment) or the block never closes (mid-edit
/// source); a too-wide stale waiver is caught by W1, the unused-waiver
/// rule, rather than by guessing here.
fn resolve_block_end(src: &str, tokens: &[Token], from_line: u32) -> u32 {
    let last_line = tokens.last().map_or(from_line, |t| t.line);
    let code = tokens.iter().filter(|t| {
        !matches!(
            t.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    });
    let mut depth = 0i32;
    let mut opened = false;
    for t in code {
        if t.line < from_line {
            continue;
        }
        match &src[t.start..t.end] {
            "{" => {
                depth += 1;
                opened = true;
            }
            "}" => {
                depth -= 1;
                if opened && depth == 0 {
                    return t.line;
                }
                // A `}` before any `{` means the waiver sits at the
                // tail of an enclosing block; keep scanning balanced.
                if !opened {
                    depth = 0;
                }
            }
            _ => {}
        }
    }
    last_line
}

/// Finds the byte ranges of `#[cfg(test)] mod name { ... }` bodies by
/// walking the code token stream: an attribute containing `cfg` and
/// `test`, followed (possibly after further attributes) by `mod`, then
/// the brace-matched block.
fn find_test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let text = |t: &Token| &src[t.start..t.end];
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // `#` `[` ... `]` attribute?
        if !(text(code[i]) == "#" && i + 1 < code.len() && text(code[i + 1]) == "[") {
            i += 1;
            continue;
        }
        // Scan the attribute body to its closing bracket.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < code.len() {
            match text(code[j]) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut k = j + 1;
        while k + 1 < code.len() && text(code[k]) == "#" && text(code[k + 1]) == "[" {
            let mut d = 0i32;
            k += 1;
            while k < code.len() {
                match text(code[k]) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        if k < code.len() && text(code[k]) == "mod" {
            // Find the opening brace, then match it.
            let mut b = k;
            while b < code.len() && text(code[b]) != "{" {
                b += 1;
            }
            if b < code.len() {
                let start = code[b].start;
                let mut braces = 0i32;
                let mut e = b;
                while e < code.len() {
                    match text(code[e]) {
                        "{" => braces += 1,
                        "}" => {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    e += 1;
                }
                let end = if e < code.len() {
                    code[e].end
                } else {
                    src.len()
                };
                regions.push((start, end));
                i = e + 1;
                continue;
            }
        }
        i = j + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.to_string(), src.to_string())
    }

    #[test]
    fn classification() {
        assert_eq!(FileClass::of("crates/core/src/rng.rs").kind, FileKind::Lib);
        assert_eq!(
            FileClass::of("crates/core/src/rng.rs")
                .crate_name
                .as_deref(),
            Some("core")
        );
        assert_eq!(FileClass::of("crates/cli/src/main.rs").kind, FileKind::Bin);
        assert_eq!(
            FileClass::of("crates/telemetry/src/bin/trace_check.rs").kind,
            FileKind::Bin
        );
        assert_eq!(FileClass::of("crates/dram/tests/t.rs").kind, FileKind::Test);
        assert_eq!(
            FileClass::of("crates/bench/benches/b.rs").kind,
            FileKind::Test
        );
        assert_eq!(
            FileClass::of("src/lib.rs").crate_name.as_deref(),
            Some("gsdram")
        );
        assert_eq!(FileClass::of("src/lib.rs").kind, FileKind::Lib);
        assert_eq!(FileClass::of("tests/e2e.rs").kind, FileKind::Test);
        assert!(FileClass::of("crates/cache/src/dbi.rs").is_sim_lib(false));
        assert!(!FileClass::of("crates/telemetry/src/lib.rs").is_sim_lib(false));
        assert!(FileClass::of("crates/telemetry/src/lib.rs").is_sim_lib(true));
    }

    #[test]
    fn test_region_detection() {
        let f = file(
            "crates/core/src/x.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n",
        );
        assert_eq!(f.test_regions.len(), 1);
        let unwrap_pos = f.src.find("unwrap").unwrap();
        assert!(f.in_test_region(unwrap_pos));
        assert!(!f.in_test_region(f.src.find("lib").unwrap()));
        assert!(!f.in_test_region(f.src.find("tail").unwrap()));
    }

    #[test]
    fn test_region_with_extra_attrs_and_nesting() {
        let f = file(
            "crates/core/src/x.rs",
            "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n mod inner { fn f() { let a = { 1 }; } }\n}\nfn after() {}\n",
        );
        assert_eq!(f.test_regions.len(), 1);
        assert!(!f.in_test_region(f.src.find("after").unwrap()));
        assert!(f.in_test_region(f.src.find("inner").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_ignored() {
        let f = file(
            "crates/core/src/x.rs",
            "#[cfg(feature = \"x\")]\nmod gated { fn f() {} }\n",
        );
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn waiver_parsing() {
        let f = file(
            "crates/core/src/x.rs",
            "// gsdram-lint: allow(D4) map key inserted two lines up\nlet x = m.get(&k).unwrap();\n",
        );
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].rules, vec!["D4".to_string()]);
        assert_eq!(f.waivers[0].reason, "map key inserted two lines up");
        assert!(f.waived("D4", 2), "covers the following line");
        assert!(f.waived("D4", 1), "covers its own line");
        assert!(!f.waived("D4", 3));
        assert!(!f.waived("D1", 2));
        assert!(f.waivers[0].used.get());
    }

    #[test]
    fn block_waiver_covers_next_brace_block() {
        let f = file(
            "crates/core/src/x.rs",
            concat!(
                "// gsdram-lint: allow-block(D5) report-only ratio\n", // 1
                "pub fn miss_rate(&self) -> f64 {\n",                  // 2
                "    let r = self.m as f64 / self.t as f64;\n",        // 3
                "    r\n",                                             // 4
                "}\n",                                                 // 5
                "fn after() -> f64 { 0.0 }\n",                         // 6
            ),
        );
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].end_line, Some(5));
        assert!(f.waived("D5", 2));
        assert!(f.waived("D5", 5));
        assert!(!f.waived("D5", 6), "stops at the closing brace");
        assert!(!f.waived("D4", 3), "only the named rules");
    }

    #[test]
    fn waiver_multi_rule_and_malformed() {
        let f = file(
            "crates/core/src/x.rs",
            "// gsdram-lint: allow(D1, D5) reporting ratio over a BTreeMap\n// gsdram-lint: allow(D4 missing close paren\n",
        );
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].rules, vec!["D1".to_string(), "D5".to_string()]);
        assert_eq!(f.malformed_waivers, vec![2]);
    }

    #[test]
    fn waivers_in_strings_are_not_waivers() {
        let f = file(
            "crates/core/src/x.rs",
            "let s = \"gsdram-lint: allow(D4) nope\";\n",
        );
        assert!(f.waivers.is_empty());
    }
}
