//! # gsdram-lint
//!
//! A dependency-free, workspace-wide determinism & invariant linter
//! for the GS-DRAM reproduction.
//!
//! The repo's core guarantee — parallel sweeps and telemetry-attached
//! runs stay byte-identical to serial, unobserved runs — is enforced
//! after the fact by byte-compares in CI. This tool enforces it *at
//! the source level*: a hand-rolled lexer ([`lexer`]) walks every
//! `.rs` file in the workspace and a rule engine ([`rules`]) flags
//! constructs that introduce nondeterminism sources or break the
//! paper's invariants (§3.2–3.3: shuffle + CTL must be an exact
//! bijection on column/chip addresses) before any config ever has to
//! be diffed.
//!
//! Rules are named (`D1`..`D7`) and individually waivable with inline
//! comments:
//!
//! ```text
//! self.outstanding.get_mut(&parent).expect("registered at enqueue");
//! // gsdram-lint: allow(D4) parent inserted by enqueue_fetch, removed only here
//! ```
//!
//! so every exception stays greppable and justified. Waiver hygiene is
//! itself enforced: reasons are mandatory (`W0`) and stale waivers are
//! flagged (`W1`). See `docs/LINTS.md` for the full rule catalogue and
//! rationale.

pub mod format;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod symbols;
pub mod workspace;

use std::io;
use std::path::Path;

pub use rules::{Report, RuleInfo, Violation, RULES};

/// Runs every rule over an already-loaded workspace.
pub fn check_loaded(ws: &workspace::Workspace) -> Report {
    rules::check_workspace(
        &ws.files,
        ws.arch_md.as_deref().map(|a| ("docs/ARCHITECTURE.md", a)),
        ws.waiver_baseline.as_deref(),
    )
}

/// Loads the workspace at `root`, runs every rule, and returns the
/// report.
pub fn check_root(root: &Path) -> io::Result<Report> {
    Ok(check_loaded(&workspace::load(root)?))
}
