//! Machine-readable report output.
//!
//! CI byte-diffs lint output the same way it diffs figure baselines,
//! so both documents here are *byte-stable*: objects are built from
//! sorted maps (and the already-sorted violation list), serialized
//! with the shared `gsdram_core::json` writer, and carry a schema tag
//! so a future shape change is detectable instead of silent.

use gsdram_core::json::Json;

use crate::rules::{waiver_inventory, Report};
use crate::scan::SourceFile;

/// Schema tag of the findings document.
pub const FINDINGS_SCHEMA: &str = "gsdram-lint/1";
/// Schema tag of the committed waiver baseline.
pub const WAIVERS_SCHEMA: &str = "gsdram-lint-waivers/1";

/// The full report as a pretty JSON document (no trailing newline):
/// scanned-file count, span-exact violations in report order, and the
/// per-rule waiver inventory.
pub fn findings_json(report: &Report, files: &[SourceFile]) -> String {
    let violations = report
        .violations
        .iter()
        .map(|v| {
            Json::Obj(vec![
                ("rule".to_string(), Json::Str(v.rule.to_string())),
                ("file".to_string(), Json::Str(v.rel.clone())),
                ("line".to_string(), Json::Num(f64::from(v.line))),
                ("col".to_string(), Json::Num(f64::from(v.col))),
                ("msg".to_string(), Json::Str(v.msg.clone())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(FINDINGS_SCHEMA.to_string())),
        ("files".to_string(), Json::Num(report.files as f64)),
        ("violations".to_string(), Json::Arr(violations)),
        ("waived".to_string(), Json::Num(report.waived as f64)),
        ("waivers".to_string(), inventory_json(files)),
    ])
    .to_json_pretty()
}

/// The committed `lint_waivers.json` document (no trailing newline):
/// rule D10's baseline. Regenerated with `--write-waivers` whenever
/// the waiver set deliberately changes, so the diff shows in review.
pub fn waivers_json(files: &[SourceFile]) -> String {
    let total: usize = waiver_inventory(files)
        .values()
        .flat_map(|by_file| by_file.values())
        .sum();
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(WAIVERS_SCHEMA.to_string())),
        ("rules".to_string(), inventory_json(files)),
        ("total".to_string(), Json::Num(total as f64)),
    ])
    .to_json_pretty()
}

/// `rule → file → waiver count` as nested JSON objects, sorted on both
/// levels (BTreeMap iteration order).
fn inventory_json(files: &[SourceFile]) -> Json {
    Json::Obj(
        waiver_inventory(files)
            .into_iter()
            .map(|(rule, by_file)| {
                (
                    rule,
                    Json::Obj(
                        by_file
                            .into_iter()
                            .map(|(rel, n)| (rel, Json::Num(n as f64)))
                            .collect(),
                    ),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::check_workspace;
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.to_string(), src.to_string())
    }

    #[test]
    fn findings_json_is_byte_stable_and_parses() {
        let files = [
            file(
                "crates/core/src/a.rs",
                "// gsdram-lint: allow(D4) fixture\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\nuse std::time::Instant;\n",
            ),
            file("crates/dram/src/b.rs", "use std::collections::HashMap;\n"),
        ];
        let report = check_workspace(&files, None, None);
        let a = findings_json(&report, &files);
        let b = findings_json(&check_workspace(&files, None, None), &files);
        assert_eq!(a, b, "two runs must serialize identically");
        let v = Json::parse(&a).expect("findings parse back");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some(FINDINGS_SCHEMA)
        );
        let viols = v.get("violations").and_then(Json::as_array).unwrap();
        assert_eq!(viols.len(), report.violations.len());
        assert_eq!(
            viols[0].get("rule").and_then(Json::as_str),
            Some(report.violations[0].rule)
        );
        assert_eq!(v.get("waived").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn waivers_json_matches_the_d10_reader() {
        // What `--write-waivers` emits must satisfy the D10 audit of
        // the same tree: generate → check is always clean.
        let files = [file(
            "crates/core/src/a.rs",
            "// gsdram-lint: allow(D4) fixture\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let baseline = waivers_json(&files);
        let report = check_workspace(&files, None, Some(&baseline));
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let v = Json::parse(&baseline).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(WAIVERS_SCHEMA));
        assert_eq!(v.get("total").and_then(Json::as_u64), Some(1));
    }
}
