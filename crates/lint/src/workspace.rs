//! Workspace discovery: find the root, walk the source tree, load and
//! lex every `.rs` file plus the architecture doc D6 cross-checks.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scan::SourceFile;

/// Directories never descended into: build output, VCS metadata, and
/// the linter's own rule fixtures (which contain violations *by
/// design* — the fixture tests scan them with explicit roots).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "node_modules"];

/// Source roots scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// A loaded workspace: lexed sources plus the architecture doc.
#[derive(Debug)]
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// `docs/ARCHITECTURE.md` contents, when present.
    pub arch_md: Option<String>,
    /// `lint_waivers.json` contents, when present — rule D10's
    /// committed waiver-debt baseline.
    pub waiver_baseline: Option<String>,
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Loads every workspace `.rs` file (sorted by relative path, so
/// reports and fixture assertions are stable) and the architecture
/// doc.
pub fn load(root: &Path) -> io::Result<Workspace> {
    let mut paths = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = relpath(root, &p);
        let src = fs::read_to_string(&p)?;
        files.push(SourceFile::parse(p, rel, src));
    }
    let arch_md = fs::read_to_string(root.join("docs/ARCHITECTURE.md")).ok();
    let waiver_baseline = fs::read_to_string(root.join(crate::rules::WAIVER_BASELINE_REL)).ok();
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        arch_md,
        waiver_baseline,
    })
}

/// Root-relative path with unix separators.
fn relpath(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
