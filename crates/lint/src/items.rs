//! Item-level structural parser over the span-exact token stream.
//!
//! The per-line rules (D1–D7) only need tokens; the structural rules
//! (D8 concurrency-determinism, D9 merge-totality) need to know *what
//! item* a token belongs to: which struct owns which fields, which
//! `impl` block carries which methods, what a method's receiver and
//! parameters are. This module parses the lexed token stream into a
//! tree of [`Item`]s — `fn` / `struct` / `enum` / `impl` / `mod` /
//! `use` / `trait` / `const` / `static` and friends — with byte-exact
//! spans.
//!
//! The contract, pinned by `tests/items.rs` over the whole workspace
//! corpus:
//!
//! * parsing never panics and always terminates;
//! * sibling item spans are ordered and disjoint, and together they
//!   cover **every** code token at their nesting level — unknown
//!   syntax degrades to an [`ItemKind::Other`] item, never to a
//!   skipped region (the same "scanned but unclassified" posture as
//!   the lexer);
//! * child items (methods in an `impl`, items in a `mod`) lie strictly
//!   inside their parent's body span.
//!
//! Macro bodies (`macro_rules!` definitions and top-level macro
//! invocations) are consumed opaquely: the tokens inside expand to
//! arbitrary syntax, so treating them as items would invent structure
//! the compiler never sees. Function bodies are recorded as opaque
//! byte spans for the same reason — rules that care (D9) scan the
//! span's tokens directly.

use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// What an item is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Union,
    Trait,
    Impl,
    Mod,
    Use,
    Const,
    Static,
    TypeAlias,
    /// `macro_rules!` / `macro` definition; body consumed opaquely.
    MacroDef,
    /// Item-position macro invocation (`thread_local! { ... }`).
    MacroCall,
    /// `extern "C" { ... }` block or `extern crate ...;`.
    Extern,
    /// Inner attribute (`#![...]`) or syntax the parser cannot
    /// classify — consumed so spans stay total, never skipped.
    Other,
}

/// A method's self parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// Free function or associated function without `self`.
    None,
    /// `self` / `mut self`.
    Owned,
    /// `&self` / `&'a self`.
    Ref,
    /// `&mut self` / `&'a mut self`.
    RefMut,
}

/// One named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// One parsed item.
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    /// Declared name; for `impl` blocks the self type's last path
    /// segment; empty for `use`/`extern`/`Other`.
    pub name: String,
    /// `impl` only: the self type's last path segment (same as `name`).
    pub self_ty: Option<String>,
    /// `impl Trait for Ty` only: the trait's last path segment.
    pub trait_name: Option<String>,
    /// `fn` only.
    pub receiver: Receiver,
    /// `fn` only: parameter names after the receiver, in order.
    pub params: Vec<String>,
    /// `struct` only: named fields (empty for tuple/unit structs).
    pub fields: Vec<Field>,
    /// `static mut` — rule D8's shared-mutable-state anchor.
    pub is_mut_static: bool,
    /// Byte span, inclusive of leading attributes and visibility.
    pub span: (usize, usize),
    /// 1-based line of the first token.
    pub line: u32,
    /// Byte span of the `{ ... }` body including delimiters, when the
    /// item has one (`fn` bodies, `impl`/`mod`/`trait` blocks).
    pub body: Option<(usize, usize)>,
    /// Members of `impl` / `mod` / `trait` bodies.
    pub children: Vec<Item>,
}

impl Item {
    fn new(kind: ItemKind, span: (usize, usize), line: u32) -> Item {
        Item {
            kind,
            name: String::new(),
            self_ty: None,
            trait_name: None,
            receiver: Receiver::None,
            params: Vec::new(),
            fields: Vec::new(),
            is_mut_static: false,
            span,
            line,
            body: None,
            children: Vec::new(),
        }
    }

    /// Depth-first walk over this item and its children.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        visit(self);
        for c in &self.children {
            c.walk(visit);
        }
    }
}

/// Parses a file's top-level items. Total: every code token of the
/// file lands inside exactly one returned item's span.
pub fn parse_items(f: &SourceFile) -> Vec<Item> {
    let code = f.code_tokens();
    let mut p = Parser {
        f,
        code: &code,
        pos: 0,
    };
    p.parse_seq(false)
}

struct Parser<'a> {
    f: &'a SourceFile,
    /// Indices into `f.tokens` of non-trivia tokens.
    code: &'a [usize],
    /// Cursor into `code`.
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.code.len()
    }

    /// Text of the code token at cursor offset `n`.
    fn peek(&self, n: usize) -> &'a str {
        match self.code.get(self.pos + n) {
            Some(&i) => self.f.text(&self.f.tokens[i]),
            None => "",
        }
    }

    fn peek_kind(&self, n: usize) -> Option<TokKind> {
        self.code.get(self.pos + n).map(|&i| self.f.tokens[i].kind)
    }

    /// Byte start of the token at cursor offset `n` (or EOF).
    fn start_at(&self, n: usize) -> usize {
        match self.code.get(self.pos + n) {
            Some(&i) => self.f.tokens[i].start,
            None => self.f.src.len(),
        }
    }

    /// Byte end of the most recently consumed token.
    fn last_end(&self) -> usize {
        match self.pos.checked_sub(1).and_then(|p| self.code.get(p)) {
            Some(&i) => self.f.tokens[i].end,
            None => 0,
        }
    }

    fn line_at(&self, n: usize) -> u32 {
        match self.code.get(self.pos + n) {
            Some(&i) => self.f.tokens[i].line,
            None => self.f.tokens.last().map_or(1, |t| t.line),
        }
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    /// Consumes one balanced delimiter group (cursor on the opener).
    /// Returns the byte span including delimiters. Unbalanced input
    /// runs to the end of the stream.
    fn consume_group(&mut self, open: &str, close: &str) -> (usize, usize) {
        let start = self.start_at(0);
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.peek(0);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return (start, self.last_end());
                }
            }
            self.bump();
        }
        (start, self.last_end())
    }

    /// Consumes a balanced `<...>` generics group (cursor on `<`).
    /// `->` arrows inside (fn-pointer bounds like `F: Fn() -> u8`) do
    /// not close an angle; `{...}` const-generic braces are opaque.
    fn consume_generics(&mut self) {
        let mut depth = 0usize;
        let mut prev_was_dash = false;
        while !self.at_end() {
            match self.peek(0) {
                "<" => {
                    depth += 1;
                    self.bump();
                    prev_was_dash = false;
                }
                ">" if prev_was_dash => {
                    // The `>` of a `->` return arrow.
                    self.bump();
                    prev_was_dash = false;
                }
                ">" => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                    prev_was_dash = false;
                }
                "{" => {
                    self.consume_group("{", "}");
                    prev_was_dash = false;
                }
                "(" => {
                    self.consume_group("(", ")");
                    prev_was_dash = false;
                }
                "[" => {
                    self.consume_group("[", "]");
                    prev_was_dash = false;
                }
                t => {
                    prev_was_dash = t == "-";
                    self.bump();
                }
            }
        }
    }

    /// Consumes up to (and including) a `;` at delimiter depth 0.
    fn consume_to_semi(&mut self) {
        while !self.at_end() {
            match self.peek(0) {
                ";" => {
                    self.bump();
                    return;
                }
                "{" => {
                    self.consume_group("{", "}");
                }
                "(" => {
                    self.consume_group("(", ")");
                }
                "[" => {
                    self.consume_group("[", "]");
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes tokens until an item body `{` or terminating `;` at
    /// depth 0 (return types, where-clauses, trait bounds). Leaves the
    /// cursor ON the `{` / `;`.
    fn consume_to_body(&mut self) {
        while !self.at_end() {
            match self.peek(0) {
                "{" | ";" => return,
                "<" => self.consume_generics(),
                "(" => {
                    self.consume_group("(", ")");
                }
                "[" => {
                    self.consume_group("[", "]");
                }
                _ => self.bump(),
            }
        }
    }

    /// Parses a `;`- or `{}`-terminated item tail, recording a body
    /// span for the brace form.
    fn finish_body_or_semi(&mut self, item: &mut Item, children: bool) {
        self.consume_to_body();
        if self.peek(0) == "{" {
            if children {
                let body_start = self.start_at(0);
                self.bump(); // `{`
                item.children = self.parse_seq(true);
                if self.peek(0) == "}" {
                    self.bump();
                }
                item.body = Some((body_start, self.last_end()));
            } else {
                item.body = Some(self.consume_group("{", "}"));
            }
        } else if self.peek(0) == ";" {
            self.bump();
        }
    }

    /// Parses items until end of stream (`stop_at_close` false) or an
    /// unmatched `}` (true, for `impl`/`mod`/`trait` bodies).
    fn parse_seq(&mut self, stop_at_close: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.at_end() {
            if stop_at_close && self.peek(0) == "}" {
                break;
            }
            let before = self.pos;
            items.push(self.parse_item());
            // Totality guard: an item always consumes at least one
            // token, otherwise degrade to a one-token Other.
            if self.pos == before {
                let span = (self.start_at(0), self.start_at(0));
                let line = self.line_at(0);
                self.bump();
                let mut it = Item::new(ItemKind::Other, span, line);
                it.span.1 = self.last_end();
                items.push(it);
            }
        }
        items
    }

    /// Parses one item starting at the cursor.
    fn parse_item(&mut self) -> Item {
        let start = self.start_at(0);
        let line = self.line_at(0);

        // Inner attribute `#![...]`: its own Other item (file header).
        if self.peek(0) == "#" && self.peek(1) == "!" {
            self.bump();
            self.bump();
            if self.peek(0) == "[" {
                self.consume_group("[", "]");
            }
            return Item::new(ItemKind::Other, (start, self.last_end()), line);
        }
        // Outer attributes belong to the item they decorate.
        while self.peek(0) == "#" && self.peek(1) == "[" {
            self.bump();
            self.consume_group("[", "]");
        }
        // Visibility and modifiers.
        loop {
            match self.peek(0) {
                "pub" => {
                    self.bump();
                    if self.peek(0) == "(" {
                        self.consume_group("(", ")");
                    }
                }
                "default" | "unsafe" | "async" => self.bump(),
                "const" if matches!(self.peek(1), "fn" | "unsafe" | "extern" | "async") => {
                    self.bump()
                }
                "extern" if self.peek_kind(1) == Some(TokKind::Str) && self.peek(2) == "fn" => {
                    self.bump();
                    self.bump();
                }
                _ => break,
            }
        }

        let mut item = match self.peek(0) {
            "fn" => self.parse_fn(),
            "struct" => self.parse_struct(),
            "enum" => self.parse_simple_block(ItemKind::Enum),
            "union" if self.peek_kind(1) == Some(TokKind::Ident) && self.peek(1) != "{" => {
                self.parse_simple_block(ItemKind::Union)
            }
            "trait" => self.parse_named_container(ItemKind::Trait),
            "impl" => self.parse_impl(),
            "mod" => self.parse_named_container(ItemKind::Mod),
            "use" => {
                self.bump();
                self.consume_to_semi();
                Item::new(ItemKind::Use, (0, 0), line)
            }
            "static" => self.parse_const_like(ItemKind::Static),
            "const" => self.parse_const_like(ItemKind::Const),
            "type" => {
                self.bump();
                let mut it = Item::new(ItemKind::TypeAlias, (0, 0), line);
                if self.peek_kind(0) == Some(TokKind::Ident) {
                    it.name = self.peek(0).to_string();
                }
                self.consume_to_semi();
                it
            }
            "macro_rules" | "macro" => self.parse_macro_def(),
            "extern" => {
                self.bump();
                let mut it = Item::new(ItemKind::Extern, (0, 0), line);
                if self.peek(0) == "crate" {
                    self.consume_to_semi();
                } else {
                    // `extern "C" { ... }` foreign block, body opaque.
                    self.finish_body_or_semi(&mut it, false);
                }
                it
            }
            _ if self.peek_kind(0) == Some(TokKind::Ident) && self.peek(1) == "!" => {
                self.parse_macro_call()
            }
            _ => {
                // Unclassifiable: sync to the next `;` or balanced
                // block so spans stay total.
                if self.peek(0) == "{" {
                    self.consume_group("{", "}");
                } else {
                    self.consume_to_semi();
                }
                Item::new(ItemKind::Other, (0, 0), line)
            }
        };
        item.span = (start, self.last_end());
        item.line = line;
        item
    }

    fn parse_fn(&mut self) -> Item {
        let line = self.line_at(0);
        self.bump(); // `fn`
        let mut item = Item::new(ItemKind::Fn, (0, 0), line);
        if self.peek_kind(0) == Some(TokKind::Ident) {
            item.name = self.peek(0).to_string();
            self.bump();
        }
        if self.peek(0) == "<" {
            self.consume_generics();
        }
        if self.peek(0) == "(" {
            let (recv, params) = self.parse_params();
            item.receiver = recv;
            item.params = params;
        }
        self.finish_body_or_semi(&mut item, false);
        item
    }

    /// Parses a fn parameter list (cursor on `(`): receiver plus the
    /// names of the remaining parameters.
    fn parse_params(&mut self) -> (Receiver, Vec<String>) {
        self.bump(); // `(`
        let mut depth = 1usize;
        let mut receiver = Receiver::None;
        let mut params = Vec::new();
        // Per-segment state, reset at each top-level comma.
        let mut seg_first = true;
        let mut seg_named = false;
        let mut seg_tokens: Vec<&'a str> = Vec::new();
        let close_segment =
            |first: bool, tokens: &mut Vec<&'a str>, recv: &mut Receiver, out: &mut Vec<String>| {
                if first && tokens.contains(&"self") {
                    let has_amp = tokens.contains(&"&");
                    let has_mut = tokens.contains(&"mut");
                    *recv = match (has_amp, has_mut) {
                        (true, true) => Receiver::RefMut,
                        (true, false) => Receiver::Ref,
                        (false, _) => Receiver::Owned,
                    };
                } else if !tokens.is_empty() {
                    // Pattern before the `:`; the last ident covers
                    // `x`, `mut x`, and `ref x`.
                    let name = tokens
                        .iter()
                        .rev()
                        .find(|&&t| t != "mut" && t != "ref")
                        .copied()
                        .unwrap_or("");
                    if !name.is_empty() {
                        out.push(name.to_string());
                    }
                }
                tokens.clear();
            };
        while !self.at_end() {
            let t = self.peek(0);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        close_segment(seg_first, &mut seg_tokens, &mut receiver, &mut params);
                        self.bump();
                        return (receiver, params);
                    }
                }
                "<" if depth >= 1 => {
                    self.consume_generics();
                    seg_named = true; // generics only appear after `:`
                    continue;
                }
                "," if depth == 1 => {
                    close_segment(seg_first, &mut seg_tokens, &mut receiver, &mut params);
                    seg_first = false;
                    seg_named = false;
                    self.bump();
                    continue;
                }
                ":" if depth == 1 => seg_named = true,
                _ => {
                    let pattern_tok = (self.peek_kind(0) == Some(TokKind::Ident)
                        && seg_tokens.len() < 8)
                        || matches!(t, "&" | "mut");
                    if depth == 1 && !seg_named && pattern_tok {
                        seg_tokens.push(t);
                    }
                }
            }
            self.bump();
        }
        (receiver, params)
    }

    fn parse_struct(&mut self) -> Item {
        let line = self.line_at(0);
        self.bump(); // `struct`
        let mut item = Item::new(ItemKind::Struct, (0, 0), line);
        if self.peek_kind(0) == Some(TokKind::Ident) {
            item.name = self.peek(0).to_string();
            self.bump();
        }
        if self.peek(0) == "<" {
            self.consume_generics();
        }
        self.consume_to_body(); // where-clause / tuple body / unit `;`
        match self.peek(0) {
            "{" => {
                let (bs, be) = self.consume_group("{", "}");
                item.body = Some((bs, be));
                item.fields = self.fields_in_span(bs, be);
            }
            ";" => self.bump(),
            _ => {}
        }
        item
    }

    /// Extracts named fields from a struct body's byte span: idents at
    /// brace depth 1 directly followed by `:`, skipping attributes and
    /// `pub(...)` visibility.
    fn fields_in_span(&self, start: usize, end: usize) -> Vec<Field> {
        let toks: Vec<usize> = self
            .code
            .iter()
            .copied()
            .filter(|&i| self.f.tokens[i].start >= start && self.f.tokens[i].end <= end)
            .collect();
        let text = |i: usize| self.f.text(&self.f.tokens[i]);
        let mut fields = Vec::new();
        let mut depth = 0i32;
        let mut p = 0usize;
        while p < toks.len() {
            match text(toks[p]) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "<" if depth == 1 => {
                    // Generic field type: skip to the matching `>` so
                    // `BTreeMap<String, u64>`'s type arguments are
                    // never mistaken for fields.
                    let mut angle = 0i32;
                    while p < toks.len() {
                        match text(toks[p]) {
                            "<" => angle += 1,
                            ">" => {
                                angle -= 1;
                                if angle == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        p += 1;
                    }
                }
                _ => {
                    if depth == 1
                        && self.f.tokens[toks[p]].kind == TokKind::Ident
                        && toks
                            .get(p + 1)
                            .is_some_and(|&j| self.f.text(&self.f.tokens[j]) == ":")
                        && toks
                            .get(p + 2)
                            .is_some_and(|&j| self.f.text(&self.f.tokens[j]) != ":")
                        && text(toks[p]) != "pub"
                    {
                        // Not a path segment (`a::b`) and not preceded
                        // by `:` (type position).
                        let prev = p.checked_sub(1).map(|q| text(toks[q]));
                        if prev != Some(":") {
                            fields.push(Field {
                                name: text(toks[p]).to_string(),
                                line: self.f.tokens[toks[p]].line,
                            });
                        }
                    }
                }
            }
            p += 1;
        }
        fields
    }

    /// `enum` / `union`: name, generics, opaque brace body.
    fn parse_simple_block(&mut self, kind: ItemKind) -> Item {
        let line = self.line_at(0);
        self.bump();
        let mut item = Item::new(kind, (0, 0), line);
        if self.peek_kind(0) == Some(TokKind::Ident) {
            item.name = self.peek(0).to_string();
            self.bump();
        }
        if self.peek(0) == "<" {
            self.consume_generics();
        }
        self.finish_body_or_semi(&mut item, false);
        item
    }

    /// `trait` / `mod`: name plus a body whose members are items.
    fn parse_named_container(&mut self, kind: ItemKind) -> Item {
        let line = self.line_at(0);
        self.bump();
        let mut item = Item::new(kind, (0, 0), line);
        if self.peek_kind(0) == Some(TokKind::Ident) {
            item.name = self.peek(0).to_string();
            self.bump();
        }
        if self.peek(0) == "<" {
            self.consume_generics();
        }
        self.finish_body_or_semi(&mut item, true);
        item
    }

    fn parse_impl(&mut self) -> Item {
        let line = self.line_at(0);
        self.bump(); // `impl`
        let mut item = Item::new(ItemKind::Impl, (0, 0), line);
        if self.peek(0) == "<" {
            self.consume_generics();
        }
        // First path: either the self type or the implemented trait.
        let first = self.collect_type_path();
        if self.peek(0) == "for" {
            self.bump();
            let second = self.collect_type_path();
            item.trait_name = first;
            item.self_ty = second;
        } else {
            item.self_ty = first;
        }
        item.name = item.self_ty.clone().unwrap_or_default();
        self.finish_body_or_semi(&mut item, true);
        item
    }

    /// Collects a type path up to `for` / `where` / `{` / `;`,
    /// returning its last path segment (skipping generic arguments).
    fn collect_type_path(&mut self) -> Option<String> {
        let mut last: Option<String> = None;
        while !self.at_end() {
            match self.peek(0) {
                "for" | "where" | "{" | ";" => break,
                "<" => self.consume_generics(),
                "(" => {
                    self.consume_group("(", ")");
                }
                "[" => {
                    self.consume_group("[", "]");
                }
                t => {
                    if self.peek_kind(0) == Some(TokKind::Ident)
                        && !matches!(t, "dyn" | "mut" | "const" | "unsafe")
                    {
                        last = Some(t.to_string());
                    }
                    self.bump();
                }
            }
        }
        last
    }

    fn parse_const_like(&mut self, kind: ItemKind) -> Item {
        let line = self.line_at(0);
        self.bump(); // `static` / `const`
        let mut item = Item::new(kind, (0, 0), line);
        if kind == ItemKind::Static && self.peek(0) == "mut" {
            item.is_mut_static = true;
            self.bump();
        }
        if self.peek_kind(0) == Some(TokKind::Ident) || self.peek(0) == "_" {
            item.name = self.peek(0).to_string();
        }
        self.consume_to_semi();
        item
    }

    /// `macro_rules! name { ... }` / `macro name { ... }`: the body is
    /// one opaque delimiter group.
    fn parse_macro_def(&mut self) -> Item {
        let line = self.line_at(0);
        self.bump(); // `macro_rules` / `macro`
        if self.peek(0) == "!" {
            self.bump();
        }
        let mut item = Item::new(ItemKind::MacroDef, (0, 0), line);
        if self.peek_kind(0) == Some(TokKind::Ident) {
            item.name = self.peek(0).to_string();
            self.bump();
        }
        self.consume_macro_tail();
        item
    }

    /// `name! { ... }` / `name!(...);` at item position.
    fn parse_macro_call(&mut self) -> Item {
        let line = self.line_at(0);
        let mut item = Item::new(ItemKind::MacroCall, (0, 0), line);
        item.name = self.peek(0).to_string();
        self.bump(); // name
        self.bump(); // `!`
        if self.peek_kind(0) == Some(TokKind::Ident) {
            // `macro_name! ident { ... }` (e.g. `lazy_static!`-style).
            self.bump();
        }
        self.consume_macro_tail();
        item
    }

    /// The delimited tail of a macro def/call: one balanced group,
    /// plus the trailing `;` of the `()` / `[]` forms.
    fn consume_macro_tail(&mut self) {
        match self.peek(0) {
            "{" => {
                self.consume_group("{", "}");
            }
            "(" => {
                self.consume_group("(", ")");
                if self.peek(0) == ";" {
                    self.bump();
                }
            }
            "[" => {
                self.consume_group("[", "]");
                if self.peek(0) == ";" {
                    self.bump();
                }
            }
            _ => self.consume_to_semi(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> (SourceFile, Vec<Item>) {
        let f = SourceFile::parse(
            PathBuf::from("crates/core/src/x.rs"),
            "crates/core/src/x.rs".to_string(),
            src.to_string(),
        );
        let items = parse_items(&f);
        (f, items)
    }

    #[test]
    fn structs_with_fields_and_generics() {
        let (_, items) = parse(
            "pub struct FooStats<T: Clone> where T: Default {\n    pub reads: u64,\n    map: BTreeMap<String, u64>,\n    t: T,\n}\n",
        );
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].kind, ItemKind::Struct);
        assert_eq!(items[0].name, "FooStats");
        let names: Vec<&str> = items[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["reads", "map", "t"]);
    }

    #[test]
    fn impl_blocks_carry_methods() {
        let (_, items) = parse(
            "impl FooStats {\n    pub fn merge(&mut self, other: &Self) { self.a += other.a; }\n    fn len(&self) -> usize { 0 }\n    pub fn make(n: u64, mut label: String) -> Self { todo!() }\n}\n",
        );
        assert_eq!(items.len(), 1);
        let imp = &items[0];
        assert_eq!(imp.kind, ItemKind::Impl);
        assert_eq!(imp.self_ty.as_deref(), Some("FooStats"));
        assert_eq!(imp.trait_name, None);
        assert_eq!(imp.children.len(), 3);
        let merge = &imp.children[0];
        assert_eq!((merge.kind, merge.name.as_str()), (ItemKind::Fn, "merge"));
        assert_eq!(merge.receiver, Receiver::RefMut);
        assert_eq!(merge.params, ["other"]);
        assert!(merge.body.is_some());
        assert_eq!(imp.children[1].receiver, Receiver::Ref);
        let make = &imp.children[2];
        assert_eq!(make.receiver, Receiver::None);
        assert_eq!(make.params, ["n", "label"]);
    }

    #[test]
    fn trait_impls_name_both_sides() {
        let (_, items) = parse(
            "impl<T> fmt::Display for Wrapper<T> where T: fmt::Debug {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\n",
        );
        assert_eq!(items[0].trait_name.as_deref(), Some("Display"));
        assert_eq!(items[0].self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(items[0].children.len(), 1);
        assert_eq!(items[0].children[0].params, ["f"]);
    }

    #[test]
    fn macro_bodies_are_opaque() {
        let (_, items) = parse(
            "macro_rules! counters {\n    ($($n:ident),*) => { $(pub fn $n() {} struct Hidden { x: u64 })* };\n}\ncounters!(a, b);\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::MacroDef);
        assert_eq!(items[0].name, "counters");
        assert!(items[0].children.is_empty(), "macro bodies yield no items");
        assert_eq!(items[1].kind, ItemKind::MacroCall);
    }

    #[test]
    fn statics_and_mut_statics() {
        let (_, items) =
            parse("static OK: u64 = 0;\npub static mut RACY: u64 = { 1 };\nconst N: usize = 4;\n");
        assert_eq!(items.len(), 3);
        assert!(!items[0].is_mut_static);
        assert!(items[1].is_mut_static);
        assert_eq!(items[1].name, "RACY");
        assert_eq!(items[2].kind, ItemKind::Const);
    }

    #[test]
    fn mods_nest() {
        let (_, items) = parse(
            "mod outer {\n    pub mod inner {\n        pub fn f() {}\n    }\n    struct S;\n}\n",
        );
        assert_eq!(items.len(), 1);
        let outer = &items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].children.len(), 1);
        assert_eq!(outer.children[0].children[0].name, "f");
    }

    #[test]
    fn fn_generics_with_return_arrows_inside() {
        let (_, items) =
            parse("fn apply<F: Fn(u64) -> u64, const N: usize>(f: F, xs: [u64; N]) -> u64 { 0 }\n");
        assert_eq!(items.len(), 1, "{items:#?}");
        assert_eq!(items[0].name, "apply");
        assert_eq!(items[0].params, ["f", "xs"]);
        assert!(items[0].body.is_some());
    }

    #[test]
    fn raw_ident_items() {
        let (_, items) = parse("struct r#type { r#fn: u64 }\nfn r#match() {}\n");
        assert_eq!(items[0].name, "r#type");
        assert_eq!(items[0].fields[0].name, "r#fn");
        assert_eq!(items[1].name, "r#match");
    }

    #[test]
    fn spans_tile_and_nest() {
        let src = "use a::b;\n#[derive(Debug)]\nstruct S { x: u64 }\nimpl S { fn f(&self) {} }\n";
        let (f, items) = parse(src);
        // Sibling spans: ordered, disjoint.
        let mut at = 0usize;
        for it in &items {
            assert!(it.span.0 >= at, "{it:?}");
            assert!(it.span.1 > it.span.0);
            at = it.span.1;
        }
        // The derive attribute is part of the struct's span.
        let s = &items[1];
        assert!(f.src[s.span.0..s.span.1].starts_with("#[derive"));
        // Children sit inside the parent body.
        let imp = &items[2];
        let (bs, be) = imp.body.unwrap();
        for c in &imp.children {
            assert!(c.span.0 >= bs && c.span.1 <= be);
        }
    }
}
