//! The rule engine: named, individually waivable determinism and
//! invariant checks over the lexed workspace.
//!
//! Each rule has an id (`D1`..`D7`, `W0`, `W1`), a one-line summary,
//! and a rationale tied to the repo's determinism contract
//! (`docs/ARCHITECTURE.md` §ordering invariants, `docs/LINTS.md`).
//! Violations carry the file, line, column, and a message naming the
//! offending construct; a matching inline waiver suppresses the
//! violation and is counted instead.

use std::collections::{BTreeMap, BTreeSet};

use gsdram_core::json::Json;

use crate::items::{ItemKind, Receiver};
use crate::lexer::TokKind;
use crate::scan::{FileKind, SourceFile};
use crate::symbols::ItemGraph;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`D1`..`D7`, `W0`, `W1`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    pub msg: String,
}

/// Outcome of a workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by `(rel, line, col, rule)`.
    pub violations: Vec<Violation>,
    /// Violations suppressed by a used waiver.
    pub waived: usize,
    /// Source files scanned.
    pub files: usize,
}

/// Static description of one rule, for `--list-rules` and the docs.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Every rule the engine knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "no HashMap/HashSet in simulation-crate library code (iteration order \
                  is seeded per-process; use BTreeMap/BTreeSet or sorted keys)",
    },
    RuleInfo {
        id: "D2",
        summary: "no ambient-nondeterminism APIs (std::time, Instant, SystemTime, rand, \
                  thread_rng, RandomState) outside waived bench plumbing",
    },
    RuleInfo {
        id: "D3",
        summary: "no bare `as` casts between integer widths in address/cycle code \
                  (dram/mapping.rs, system/bridge.rs, cache/*); use gsdram_core::cast \
                  or From/TryFrom",
    },
    RuleInfo {
        id: "D4",
        summary: "no unwrap()/expect() in non-test library code without an inline waiver \
                  stating the invariant",
    },
    RuleInfo {
        id: "D5",
        summary: "no float types or literals in simulation-crate library code outside \
                  energy/report/stats leaves (floats never feed timing decisions)",
    },
    RuleInfo {
        id: "D6",
        summary: "every SimEvent variant must be handled in telemetry/collector.rs and \
                  documented in the docs/ARCHITECTURE.md event table",
    },
    RuleInfo {
        id: "D7",
        summary: "no direct clock mutation (`now += 1`-style unit ticking) in \
                  simulation-crate library code outside core/src/time.rs; advance \
                  clocks by leaping to a component's reported next-event bound",
    },
    RuleInfo {
        id: "D8",
        summary: "no shared mutable state or ad-hoc synchronization (`static mut`, \
                  std::sync, atomics, Ordering, thread::spawn, rayon) in \
                  simulation-crate or bench library code outside the waived sweep \
                  runner; parallel ≡ serial stays provable only if sim code is \
                  single-threaded by construction",
    },
    RuleInfo {
        id: "D9",
        summary: "every field of a *Stats/*Breakdown struct with a \
                  `merge(&mut self, &Self)` must be read from the other side inside \
                  it; a silently dropped field corrupts every parallel sweep",
    },
    RuleInfo {
        id: "D10",
        summary: "the per-rule waiver inventory must match the committed \
                  lint_waivers.json baseline; new waivers land as a reviewed diff \
                  and stale entries fail CI",
    },
    RuleInfo {
        id: "W0",
        summary: "every waiver must parse and carry a non-empty reason",
    },
    RuleInfo {
        id: "W1",
        summary: "every waiver must suppress at least one violation (stale waivers rot)",
    },
];

/// Integer type names rule D3 refuses `as` casts into.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Identifiers rule D2 treats as ambient-nondeterminism entry points.
const D2_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "ThreadRng",
    "getrandom",
    "RandomState",
];

/// Identifiers rule D7 treats as clock fields when unit-ticked.
const D7_CLOCKS: &[&str] = &["now", "time", "clock", "cycle", "cycles"];

/// File basenames where rule D5 permits float arithmetic: the energy
/// model, report assembly, and statistics leaves.
const D5_FLOAT_LEAVES: &[&str] = &[
    "energy.rs",
    "report.rs",
    "stats.rs",
    "hist.rs",
    "cost.rs",
    "chrome.rs",
    "json.rs",
];

/// Files rule D3 covers: the address-translation hot spots where a
/// truncating cast silently corrupts an address or cycle count.
fn d3_covers(rel: &str) -> bool {
    rel == "crates/dram/src/mapping.rs"
        || rel == "crates/system/src/bridge.rs"
        || rel.starts_with("crates/cache/src/")
}

/// Synchronization-primitive type names rule D8 bans: everything in
/// `std::sync` a sim crate could reach for, atomics included.
const D8_SYNC_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "Barrier",
    "Once",
    "OnceLock",
    "LazyLock",
    "Arc",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "mpsc",
];

/// Memory-ordering variants: `Ordering::<one of these>` marks the
/// atomic `Ordering`, never `std::cmp::Ordering` (whose variants are
/// Less/Equal/Greater).
const D8_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Files rule D8 covers: simulation-crate library code (telemetry
/// included — collectors run inside the sim loop) plus the bench
/// crate's library. The two sanctioned parallel sites — the sweep
/// runner in `bench/src/sweep.rs` and the channel-shard advance in
/// `dram/src/shard.rs` — carry in-place waivers with their proof
/// obligations.
fn d8_covers(f: &SourceFile) -> bool {
    f.class.is_sim_lib(true)
        || (f.class.kind == FileKind::Lib && f.class.crate_name.as_deref() == Some("bench"))
}

/// Checks every per-file rule plus the cross-file rules (D6, D9, D10).
///
/// `arch_md` is `docs/ARCHITECTURE.md`'s `(rel, contents)` when
/// present — D6's event-table leg is skipped without it (fixture
/// trees may omit it deliberately). `waiver_baseline` is the committed
/// `lint_waivers.json` when present — D10 is skipped without it, so a
/// tree that has never generated a baseline is not failed for it.
pub fn check_workspace(
    files: &[SourceFile],
    arch_md: Option<(&str, &str)>,
    waiver_baseline: Option<&str>,
) -> Report {
    let mut report = Report {
        files: files.len(),
        ..Report::default()
    };
    for f in files {
        check_hash_containers(f, &mut report);
        check_ambient_nondeterminism(f, &mut report);
        check_bare_casts(f, &mut report);
        check_panic_paths(f, &mut report);
        check_floats(f, &mut report);
        check_clock_ticking(f, &mut report);
        check_concurrency(f, &mut report);
        check_waiver_syntax(f, &mut report);
    }
    check_sim_event_coverage(files, arch_md, &mut report);
    check_merge_totality(files, &mut report);
    // D10 runs after every waiver-consulting rule so the inventory it
    // audits is the one this very report used.
    check_waiver_debt(files, waiver_baseline, &mut report);
    for f in files {
        check_unused_waivers(f, &mut report);
    }
    report.violations.sort_by(|a, b| {
        (a.rel.as_str(), a.line, a.col, a.rule).cmp(&(b.rel.as_str(), b.line, b.col, b.rule))
    });
    report
}

/// Records a violation at a token position unless a waiver covers it.
fn push(report: &mut Report, f: &SourceFile, rule: &'static str, line: u32, col: u32, msg: String) {
    if f.waived(rule, line) {
        report.waived += 1;
    } else {
        report.violations.push(Violation {
            rule,
            rel: f.rel.clone(),
            line,
            col,
            msg,
        });
    }
}

/// D1: hash containers in simulation-crate library code.
fn check_hash_containers(f: &SourceFile, report: &mut Report) {
    if !f.class.is_sim_lib(true) {
        return;
    }
    for &i in &f.code_tokens() {
        let t = &f.tokens[i];
        if t.kind != TokKind::Ident || f.in_test_region(t.start) {
            continue;
        }
        let name = f.text(t);
        if name == "HashMap" || name == "HashSet" {
            push(
                report,
                f,
                "D1",
                t.line,
                t.col,
                format!("`{name}` in simulation code: iteration order is per-process; use BTree{} or sorted-key iteration", if name == "HashMap" { "Map" } else { "Set" }),
            );
        }
    }
}

/// D2: wall-clock and entropy APIs outside the bench harness.
fn check_ambient_nondeterminism(f: &SourceFile, report: &mut Report) {
    if f.class.kind == FileKind::Test {
        return;
    }
    let code = f.code_tokens();
    for (pos, &i) in code.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokKind::Ident || f.in_test_region(t.start) {
            continue;
        }
        let name = f.text(t);
        if D2_IDENTS.contains(&name) {
            push(
                report,
                f,
                "D2",
                t.line,
                t.col,
                format!("`{name}` is an ambient-nondeterminism source; simulations must be a pure function of their spec"),
            );
            continue;
        }
        // `std::time` and `rand::` path heads.
        let next_is = |n: usize, s: &str| {
            code.get(pos + n)
                .is_some_and(|&j| f.text(&f.tokens[j]) == s)
        };
        if name == "std" && next_is(1, ":") && next_is(2, ":") && next_is(3, "time") {
            push(
                report,
                f,
                "D2",
                t.line,
                t.col,
                "`std::time` is an ambient-nondeterminism source; model time is the only clock"
                    .to_string(),
            );
        }
        if name == "rand" && next_is(1, ":") && next_is(2, ":") {
            push(
                report,
                f,
                "D2",
                t.line,
                t.col,
                "`rand::` paths are banned; use gsdram_core::rng (seeded SplitMix64)".to_string(),
            );
        }
    }
}

/// D3: bare `as` casts between integer widths in address/cycle code.
fn check_bare_casts(f: &SourceFile, report: &mut Report) {
    if !d3_covers(&f.rel) || f.class.kind == FileKind::Test {
        return;
    }
    let code = f.code_tokens();
    for (pos, &i) in code.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokKind::Ident || f.text(t) != "as" || f.in_test_region(t.start) {
            continue;
        }
        let Some(&j) = code.get(pos + 1) else {
            continue;
        };
        let target = f.text(&f.tokens[j]);
        if INT_TYPES.contains(&target) {
            push(
                report,
                f,
                "D3",
                t.line,
                t.col,
                format!("bare `as {target}` on an address/cycle value can silently truncate; use gsdram_core::cast or From/TryFrom"),
            );
        }
    }
}

/// D4: `.unwrap()` / `.expect(` in non-test library code.
fn check_panic_paths(f: &SourceFile, report: &mut Report) {
    if f.class.kind != FileKind::Lib {
        return;
    }
    let code = f.code_tokens();
    for (pos, &i) in code.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokKind::Ident || f.in_test_region(t.start) {
            continue;
        }
        let name = f.text(t);
        if name != "unwrap" && name != "expect" {
            continue;
        }
        let prev_is_dot = pos
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .is_some_and(|&j| f.text(&f.tokens[j]) == ".");
        let next_is_paren = code
            .get(pos + 1)
            .is_some_and(|&j| f.text(&f.tokens[j]) == "(");
        if prev_is_dot && next_is_paren {
            push(
                report,
                f,
                "D4",
                t.line,
                t.col,
                format!("`.{name}()` in library code: return an error, or waive with the invariant that makes the panic unreachable"),
            );
        }
    }
}

/// Whether a `Number` token is a float literal (exponents are
/// recognised outside hex/binary/octal literals; `usize`-style
/// suffixes are not exponents).
fn is_float_literal(s: &str) -> bool {
    if s.starts_with("0x") || s.starts_with("0b") || s.starts_with("0o") {
        return false;
    }
    if s.contains('.') || s.ends_with("f32") || s.ends_with("f64") {
        return true;
    }
    let b = s.as_bytes();
    (1..b.len().saturating_sub(1)).any(|i| {
        (b[i] == b'e' || b[i] == b'E')
            && (b[i - 1].is_ascii_digit() || b[i - 1] == b'_')
            && (b[i + 1].is_ascii_digit() || b[i + 1] == b'+' || b[i + 1] == b'-')
    })
}

/// D5: float types/literals outside the designated leaves.
fn check_floats(f: &SourceFile, report: &mut Report) {
    if !f.class.is_sim_lib(true) {
        return;
    }
    let base = f.rel.rsplit('/').next().unwrap_or(&f.rel);
    if D5_FLOAT_LEAVES.contains(&base) {
        return;
    }
    for &i in &f.code_tokens() {
        let t = &f.tokens[i];
        if f.in_test_region(t.start) {
            continue;
        }
        let flagged = match t.kind {
            TokKind::Ident => matches!(f.text(t), "f32" | "f64"),
            TokKind::Number => is_float_literal(f.text(t)),
            _ => false,
        };
        if flagged {
            push(
                report,
                f,
                "D5",
                t.line,
                t.col,
                format!(
                    "float `{}` outside energy/report/stats leaves; keep simulation state integral",
                    f.text(t)
                ),
            );
        }
    }
}

/// D7: direct clock mutation (`<clock> += <literal>` unit ticking) in
/// simulation-crate library code outside the time-engine module. A
/// clock stepped by a constant bypasses the next-event fold of
/// `gsdram_core::time`, turning leaps back into crawls; clocks must
/// advance via `max(now, to)` toward a component's reported bound.
fn check_clock_ticking(f: &SourceFile, report: &mut Report) {
    if !f.class.is_sim_lib(true) || f.rel == "crates/core/src/time.rs" {
        return;
    }
    let code = f.code_tokens();
    for (pos, &i) in code.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokKind::Ident || f.in_test_region(t.start) {
            continue;
        }
        let name = f.text(t);
        if !D7_CLOCKS.contains(&name) {
            continue;
        }
        let tok_is = |n: usize, s: &str| {
            code.get(pos + n)
                .is_some_and(|&j| f.text(&f.tokens[j]) == s)
        };
        let rhs_is_literal = code
            .get(pos + 3)
            .is_some_and(|&j| f.tokens[j].kind == TokKind::Number);
        if tok_is(1, "+") && tok_is(2, "=") && rhs_is_literal {
            push(
                report,
                f,
                "D7",
                t.line,
                t.col,
                format!("`{name} += <literal>` ticks a clock by a constant; leap to the component's next-event bound (gsdram_core::time) instead"),
            );
        }
    }
}

/// D8: shared mutable state and ad-hoc synchronization in sim/bench
/// library code. ROADMAP item 2 shards per-channel simulation across
/// threads; "parallel ≡ serial" stays provable only if the simulation
/// itself is statically barred from `static mut`, `std::sync`
/// primitives, atomics with their memory orderings, and thread
/// spawning. The sanctioned parallel sites — the sweep runner in
/// `bench/src/sweep.rs` and the channel-shard advance in
/// `dram/src/shard.rs` — carry in-place waivers tied to their
/// sharded ≡ serial proofs.
fn check_concurrency(f: &SourceFile, report: &mut Report) {
    if !d8_covers(f) {
        return;
    }
    let code = f.code_tokens();
    for (pos, &i) in code.iter().enumerate() {
        let t = &f.tokens[i];
        if t.kind != TokKind::Ident || f.in_test_region(t.start) {
            continue;
        }
        let name = f.text(t);
        let tok_is = |n: usize, s: &str| {
            code.get(pos + n)
                .is_some_and(|&j| f.text(&f.tokens[j]) == s)
        };
        let tok_in = |n: usize, set: &[&str]| {
            code.get(pos + n)
                .is_some_and(|&j| set.contains(&f.text(&f.tokens[j])))
        };
        let prev_is = |s: &str| {
            pos.checked_sub(1)
                .and_then(|p| code.get(p))
                .is_some_and(|&j| f.text(&f.tokens[j]) == s)
        };
        let hit = if name == "static" && tok_is(1, "mut") {
            Some("`static mut` is shared mutable state; thread the value through the sim spec instead".to_string())
        } else if D8_SYNC_TYPES.contains(&name) {
            Some(format!(
                "`{name}` is a synchronization primitive; sim code must be single-threaded so parallel \u{2261} serial stays provable"
            ))
        } else if (name == "std" || name == "core")
            && tok_is(1, ":")
            && tok_is(2, ":")
            && (tok_is(3, "sync") || tok_is(3, "thread"))
        {
            Some(format!(
                "`{name}::{}` is banned in sim code; the sweep runner is the one sanctioned parallel site",
                if tok_is(3, "sync") { "sync" } else { "thread" }
            ))
        } else if name == "rayon" || name == "crossbeam" {
            Some(format!(
                "`{name}` introduces work-stealing parallelism; sharding must go through the sweep runner"
            ))
        } else if name == "thread" && tok_is(1, ":") && tok_is(2, ":") && tok_is(3, "spawn") {
            Some("`thread::spawn` in sim code; the sweep runner owns all threads".to_string())
        } else if name == "spawn" && prev_is(".") && tok_is(1, "(") {
            Some("`.spawn(` starts a thread; the sweep runner owns all threads".to_string())
        } else if name == "Ordering" && tok_is(1, ":") && tok_is(2, ":") && tok_in(3, D8_ORDERINGS)
        {
            Some(
                "atomic memory orderings have no place in sim code; state is single-threaded by construction"
                    .to_string(),
            )
        } else {
            None
        };
        if let Some(msg) = hit {
            push(report, f, "D8", t.line, t.col, msg);
        }
    }
}

/// D9: merge totality. For every `*Stats`/`*Breakdown` struct with
/// named fields and a same-crate `merge(&mut self, &Self)`, each field
/// must be read off the merge's other side — `other.field` for
/// whatever the parameter is named. A merge that silently drops a
/// field makes parallel sweeps under-count without any test noticing
/// until someone hand-writes a per-field assertion; this closes that
/// hole structurally. Violations anchor at the `merge` fn, where the
/// fix goes.
fn check_merge_totality(files: &[SourceFile], report: &mut Report) {
    let graph = ItemGraph::build(files);
    for (name, defs) in &graph.type_defs {
        if !(name.ends_with("Stats") || name.ends_with("Breakdown")) {
            continue;
        }
        for def_id in defs {
            let def = graph.item(def_id);
            if def.kind != ItemKind::Struct
                || def.fields.is_empty()
                || files[def_id.file].class.kind == FileKind::Test
                || files[def_id.file].in_test_region(def.span.0)
            {
                continue;
            }
            for imp_id in graph.impls_of(name, files, def_id.file) {
                let imp_file = &files[imp_id.file];
                if imp_file.class.kind == FileKind::Test {
                    continue;
                }
                let imp = graph.item(imp_id);
                for m in &imp.children {
                    if m.kind != ItemKind::Fn
                        || m.name != "merge"
                        || m.receiver != Receiver::RefMut
                        || m.params.len() != 1
                        || imp_file.in_test_region(m.span.0)
                    {
                        continue;
                    }
                    let Some((bs, be)) = m.body else {
                        continue;
                    };
                    let other = &m.params[0];
                    let reads = field_reads(imp_file, bs, be, other);
                    for fld in &def.fields {
                        if !reads.contains(&fld.name) {
                            push(
                                report,
                                imp_file,
                                "D9",
                                m.line,
                                1,
                                format!(
                                    "`{name}::merge` never reads `{other}.{}`; a merge that drops a field corrupts every parallel sweep",
                                    fld.name
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Field names read as `<param> . <field>` inside a body byte span.
fn field_reads(f: &SourceFile, start: usize, end: usize, param: &str) -> BTreeSet<String> {
    let code: Vec<usize> = f
        .code_tokens()
        .into_iter()
        .filter(|&i| f.tokens[i].start >= start && f.tokens[i].end <= end)
        .collect();
    let mut reads = BTreeSet::new();
    for (pos, &i) in code.iter().enumerate() {
        if f.text(&f.tokens[i]) != param || f.tokens[i].kind != TokKind::Ident {
            continue;
        }
        let dot = code.get(pos + 1);
        let fld = code.get(pos + 2);
        if let (Some(&d), Some(&n)) = (dot, fld) {
            if f.text(&f.tokens[d]) == "." && f.tokens[n].kind == TokKind::Ident {
                reads.insert(f.text(&f.tokens[n]).to_string());
            }
        }
    }
    reads
}

/// The per-rule waiver inventory: rule id → file → count of waiver
/// comments naming that rule. This is what `lint_waivers.json`
/// commits and what D10 audits.
pub fn waiver_inventory(files: &[SourceFile]) -> BTreeMap<String, BTreeMap<String, usize>> {
    let mut inv: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    for f in files {
        for w in &f.waivers {
            for r in &w.rules {
                *inv.entry(r.clone())
                    .or_default()
                    .entry(f.rel.clone())
                    .or_insert(0) += 1;
            }
        }
    }
    inv
}

/// The file D10 anchors its violations at.
pub const WAIVER_BASELINE_REL: &str = "lint_waivers.json";

/// D10: waiver-debt accounting. Compares the live waiver inventory
/// against the committed baseline; new waivers must land as a reviewed
/// baseline diff and stale entries must be cleaned up. D10 violations
/// are themselves unwaivable — a waiver for the waiver-audit would be
/// circular.
fn check_waiver_debt(files: &[SourceFile], baseline: Option<&str>, report: &mut Report) {
    let Some(text) = baseline else {
        return;
    };
    const REGEN: &str =
        "regenerate with `gsdram-lint --workspace --write-waivers lint_waivers.json` and justify the diff in review";
    let mut fail = |msg: String| {
        report.violations.push(Violation {
            rule: "D10",
            rel: WAIVER_BASELINE_REL.to_string(),
            line: 1,
            col: 1,
            msg,
        });
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            fail(format!("waiver baseline does not parse: {e}; {REGEN}"));
            return;
        }
    };
    let mut base: BTreeMap<(String, String), usize> = BTreeMap::new();
    if let Some(rules) = parsed.get("rules").and_then(Json::as_object) {
        for (rule, by_file) in rules {
            for (rel, count) in by_file.as_object().unwrap_or(&[]) {
                let n = count.as_u64().unwrap_or(0) as usize;
                base.insert((rule.clone(), rel.clone()), n);
            }
        }
    } else {
        fail(format!("waiver baseline has no `rules` object; {REGEN}"));
        return;
    }
    let mut actual: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (rule, by_file) in waiver_inventory(files) {
        for (rel, n) in by_file {
            actual.insert((rule.clone(), rel), n);
        }
    }
    for ((rule, rel), &n) in &actual {
        match base.get(&(rule.clone(), rel.clone())) {
            None => fail(format!(
                "new waiver debt: {n} waiver(s) for {rule} in {rel} not in the baseline; {REGEN}"
            )),
            Some(&m) if n > m => fail(format!(
                "waiver debt grew: {rule} in {rel} has {n} waiver(s), baseline says {m}; {REGEN}"
            )),
            Some(_) => {}
        }
    }
    for ((rule, rel), &m) in &base {
        let n = actual
            .get(&(rule.clone(), rel.clone()))
            .copied()
            .unwrap_or(0);
        if n < m {
            fail(format!(
                "stale baseline entry: {rule} in {rel} records {m} waiver(s) but {n} exist; {REGEN}"
            ));
        }
    }
}

/// W0: malformed waivers and waivers without a reason.
fn check_waiver_syntax(f: &SourceFile, report: &mut Report) {
    for &line in &f.malformed_waivers {
        report.violations.push(Violation {
            rule: "W0",
            rel: f.rel.clone(),
            line,
            col: 1,
            msg: "malformed waiver: expected `gsdram-lint: allow(<rules>) <reason>`".to_string(),
        });
    }
    for w in &f.waivers {
        if w.reason.is_empty() {
            report.violations.push(Violation {
                rule: "W0",
                rel: f.rel.clone(),
                line: w.line,
                col: 1,
                msg: format!(
                    "waiver for {} has no reason; every exception must be justified",
                    w.rules.join(",")
                ),
            });
        }
    }
}

/// W1: waivers that never suppressed anything.
fn check_unused_waivers(f: &SourceFile, report: &mut Report) {
    for w in &f.waivers {
        if !w.used.get() && !w.reason.is_empty() {
            report.violations.push(Violation {
                rule: "W1",
                rel: f.rel.clone(),
                line: w.line,
                col: 1,
                msg: format!(
                    "unused waiver for {}: the violation it excused is gone, delete it",
                    w.rules.join(",")
                ),
            });
        }
    }
}

/// Extracts the top-level variant names of `enum <name>` from a file's
/// code tokens. Returns `None` when the enum is absent.
fn enum_variants(f: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let code = f.code_tokens();
    let mut at = None;
    for (pos, &i) in code.iter().enumerate() {
        if f.text(&f.tokens[i]) == "enum"
            && code
                .get(pos + 1)
                .is_some_and(|&j| f.text(&f.tokens[j]) == name)
        {
            at = Some(pos + 2);
            break;
        }
    }
    let mut pos = at?;
    // Find the opening brace.
    while pos < code.len() && f.text(&f.tokens[code[pos]]) != "{" {
        pos += 1;
    }
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    while pos < code.len() {
        let t = &f.tokens[code[pos]];
        match f.text(t) {
            "{" | "(" | "[" => {
                if f.text(t) == "{" && depth == 0 {
                    expect_variant = true;
                }
                depth += 1;
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => expect_variant = true,
            "#" => {
                // Skip an attribute at variant position.
                if depth == 1
                    && code
                        .get(pos + 1)
                        .is_some_and(|&j| f.text(&f.tokens[j]) == "[")
                {
                    let mut d = 0i32;
                    pos += 1;
                    while pos < code.len() {
                        match f.text(&f.tokens[code[pos]]) {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        pos += 1;
                    }
                }
            }
            word => {
                if depth == 1
                    && expect_variant
                    && t.kind == TokKind::Ident
                    && word.chars().next().is_some_and(char::is_uppercase)
                {
                    variants.push((word.to_string(), t.line));
                    expect_variant = false;
                }
            }
        }
        pos += 1;
    }
    Some(variants)
}

/// D6: every `SimEvent` variant is folded by the telemetry collector
/// and documented in the architecture event table.
fn check_sim_event_coverage(
    files: &[SourceFile],
    arch_md: Option<(&str, &str)>,
    report: &mut Report,
) {
    let Some(port) = files.iter().find(|f| f.rel.ends_with("core/src/port.rs")) else {
        return;
    };
    let Some(variants) = enum_variants(port, "SimEvent") else {
        report.violations.push(Violation {
            rule: "D6",
            rel: port.rel.clone(),
            line: 1,
            col: 1,
            msg: "expected `enum SimEvent` in core/src/port.rs; if it moved, move this rule's anchor too".to_string(),
        });
        return;
    };
    let collector = files
        .iter()
        .find(|f| f.rel.ends_with("telemetry/src/collector.rs"));
    for (v, line) in &variants {
        if let Some(c) = collector {
            if !has_variant_use(c, v) {
                push(
                    report,
                    port,
                    "D6",
                    *line,
                    1,
                    format!("SimEvent::{v} has no arm in telemetry/src/collector.rs; collectors must fold every event"),
                );
            }
        }
        if let Some((arch_rel, arch)) = arch_md {
            // A row mentions the variant in code font, either bare
            // (`CacheFill`) or with its fields (`CacheFill { ... }`).
            let needle = format!("`{v}");
            let in_table = arch.lines().any(|l| {
                l.trim_start().starts_with('|')
                    && l.match_indices(&needle).any(|(at, _)| {
                        l[at + needle.len()..]
                            .chars()
                            .next()
                            .is_none_or(|c| !(c == '_' || c.is_alphanumeric()))
                    })
            });
            if !in_table {
                push(
                    report,
                    port,
                    "D6",
                    *line,
                    1,
                    format!("SimEvent::{v} has no row in the {arch_rel} event table"),
                );
            }
        }
    }
}

/// Whether `f` contains the code-token sequence `SimEvent :: <variant>`.
fn has_variant_use(f: &SourceFile, variant: &str) -> bool {
    let code = f.code_tokens();
    code.iter().enumerate().any(|(pos, &i)| {
        f.text(&f.tokens[i]) == "SimEvent"
            && code
                .get(pos + 1)
                .is_some_and(|&j| f.text(&f.tokens[j]) == ":")
            && code
                .get(pos + 2)
                .is_some_and(|&j| f.text(&f.tokens[j]) == ":")
            && code
                .get(pos + 3)
                .is_some_and(|&j| f.text(&f.tokens[j]) == variant)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.to_string(), src.to_string())
    }

    fn check_one(rel: &str, src: &str) -> Report {
        check_workspace(&[file(rel, src)], None, None)
    }

    fn rules_of(r: &Report) -> Vec<&'static str> {
        r.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn d1_flags_sim_crates_only() {
        let bad = "use std::collections::HashMap;\n";
        assert_eq!(rules_of(&check_one("crates/cache/src/x.rs", bad)), ["D1"]);
        assert_eq!(
            rules_of(&check_one("crates/telemetry/src/x.rs", bad)),
            ["D1"]
        );
        assert!(rules_of(&check_one("crates/bench/src/x.rs", bad)).is_empty());
        assert!(rules_of(&check_one("crates/cache/tests/x.rs", bad)).is_empty());
    }

    #[test]
    fn d2_flags_time_and_rand() {
        let r = check_one(
            "crates/bench/src/x.rs",
            "use std::time::Instant;\nfn f() { let _ = rand::random::<u8>(); }\n",
        );
        // `std::time` + `Instant` on line 1, `rand::` on line 2.
        assert_eq!(rules_of(&r), ["D2", "D2", "D2"]);
    }

    #[test]
    fn d3_flags_only_covered_files() {
        let bad = "fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(
            rules_of(&check_one("crates/dram/src/mapping.rs", bad)),
            ["D3"]
        );
        assert_eq!(rules_of(&check_one("crates/cache/src/dbi.rs", bad)), ["D3"]);
        assert!(rules_of(&check_one("crates/dram/src/timing.rs", bad)).is_empty());
        // `as f64` is D5's domain, not D3's.
        let float_cast = "fn f(x: u64) -> f64 { x as f64 }\n";
        assert!(!rules_of(&check_one("crates/dram/src/mapping.rs", float_cast)).contains(&"D3"));
    }

    #[test]
    fn d4_flags_lib_not_tests_or_bins() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&check_one("crates/core/src/x.rs", bad)), ["D4"]);
        assert!(rules_of(&check_one("crates/cli/src/main.rs", bad)).is_empty());
        assert!(rules_of(&check_one("crates/core/tests/x.rs", bad)).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) { x.unwrap(); } }\n";
        assert!(rules_of(&check_one("crates/core/src/x.rs", in_test_mod)).is_empty());
        let expect = "fn f(x: Option<u8>) -> u8 { x.expect(\"set by caller\") }\n";
        assert_eq!(rules_of(&check_one("crates/core/src/x.rs", expect)), ["D4"]);
        // Not method calls: no flags.
        let ok = "fn f() { let _ = Rc::try_unwrap(x); expect_something(); }\n";
        assert!(rules_of(&check_one("crates/core/src/x.rs", ok)).is_empty());
    }

    #[test]
    fn d5_flags_floats_outside_leaves() {
        let bad = "fn f(x: u64) -> f64 { x as f64 * 1.5 }\n";
        // Return type, cast target, literal: three sites.
        assert_eq!(
            rules_of(&check_one("crates/dram/src/bank.rs", bad)),
            ["D5", "D5", "D5"]
        );
        assert!(rules_of(&check_one("crates/dram/src/energy.rs", bad)).is_empty());
        assert!(rules_of(&check_one("crates/system/src/report.rs", bad)).is_empty());
        assert!(rules_of(&check_one("crates/bench/src/x.rs", bad)).is_empty());
        // Integer exponent-ish suffixes are not floats.
        let ints = "fn f() -> usize { 7usize + 0xEF + 1e3 as usize }\n";
        let r = check_one("crates/dram/src/bank.rs", ints);
        assert_eq!(rules_of(&r), ["D5"], "only the true exponent literal");
    }

    #[test]
    fn d7_flags_unit_ticking_outside_time_engine() {
        let bad = "fn f(&mut self) { self.now += 1; }\n";
        assert_eq!(rules_of(&check_one("crates/dram/src/x.rs", bad)), ["D7"]);
        assert_eq!(rules_of(&check_one("crates/system/src/x.rs", bad)), ["D7"]);
        // The time-engine module itself, non-sim crates, and tests are
        // out of scope.
        assert!(rules_of(&check_one("crates/core/src/time.rs", bad)).is_empty());
        assert!(rules_of(&check_one("crates/bench/src/x.rs", bad)).is_empty());
        assert!(rules_of(&check_one("crates/dram/tests/x.rs", bad)).is_empty());
        // Any watched clock name and any literal step width count.
        let time2 = "fn f(&mut self) { core.time += 2; }\n";
        assert_eq!(
            rules_of(&check_one("crates/system/src/x.rs", time2)),
            ["D7"]
        );
        // Leaping by a computed bound is the sanctioned idiom.
        let leap = "fn f(&mut self) { self.now = self.now.max(to); self.pos += 1; }\n";
        assert!(rules_of(&check_one("crates/dram/src/x.rs", leap)).is_empty());
        // A non-literal step (an op cost, a delta) is not unit ticking.
        let delta = "fn f(&mut self) { self.time += cost; }\n";
        assert!(rules_of(&check_one("crates/system/src/x.rs", delta)).is_empty());
    }

    #[test]
    fn waivers_suppress_and_count() {
        let src = "// gsdram-lint: allow(D4) key inserted above\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = check_one("crates/core/src/x.rs", src);
        assert!(r.violations.is_empty());
        assert_eq!(r.waived, 1);
        let trailing =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // gsdram-lint: allow(D4) fixture key\n";
        let r = check_one("crates/core/src/x.rs", trailing);
        assert!(r.violations.is_empty());
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn w0_and_w1_guard_waiver_hygiene() {
        let no_reason = "// gsdram-lint: allow(D4)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = check_one("crates/core/src/x.rs", no_reason);
        // The reasonless waiver is reported and does not suppress.
        assert!(rules_of(&r).contains(&"W0"));
        assert!(rules_of(&r).contains(&"D4"));
        let unused = "// gsdram-lint: allow(D4) nothing here needs this\nfn f() {}\n";
        let r = check_one("crates/core/src/x.rs", unused);
        assert_eq!(rules_of(&r), ["W1"]);
    }

    #[test]
    fn d6_cross_file_coverage() {
        let port = file(
            "crates/core/src/port.rs",
            "pub enum SimEvent {\n    CacheFill { addr: u64 },\n    DramComplete { id: u64, at_mem: u64 },\n}\n",
        );
        let collector_ok = file(
            "crates/telemetry/src/collector.rs",
            "fn fold(ev: &SimEvent) { match ev { SimEvent::CacheFill { .. } => {}, SimEvent::DramComplete { .. } => {} } }\n",
        );
        let arch = "| Event | Emitted by |\n|---|---|\n| `CacheFill` | hier |\n| `DramComplete` | controller |\n";
        let r = check_workspace(
            &[
                file("crates/core/src/port.rs", &port.src),
                file("crates/telemetry/src/collector.rs", &collector_ok.src),
            ],
            Some(("docs/ARCHITECTURE.md", arch)),
            None,
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);

        let collector_missing = file(
            "crates/telemetry/src/collector.rs",
            "fn fold(ev: &SimEvent) { match ev { SimEvent::CacheFill { .. } => {}, _ => {} } }\n",
        );
        let arch_missing = "| Event |\n| `CacheFill` |\n";
        let r = check_workspace(
            &[
                file("crates/core/src/port.rs", &port.src),
                file("crates/telemetry/src/collector.rs", &collector_missing.src),
            ],
            Some(("docs/ARCHITECTURE.md", arch_missing)),
            None,
        );
        assert_eq!(rules_of(&r), ["D6", "D6"], "{:?}", r.violations);
        assert!(r.violations.iter().all(|v| v.msg.contains("DramComplete")));
    }

    #[test]
    fn d8_flags_sync_and_threads_in_sim_and_bench_lib() {
        let bad = concat!(
            "static mut RACY: u64 = 0;\n",
            "use std::sync::atomic::{AtomicUsize, Ordering};\n",
            "fn f() { let _ = x.fetch_add(1, Ordering::Relaxed); }\n",
            "fn g(s: &std::thread::Scope) { s.spawn(|| {}); }\n",
        );
        let r = check_one("crates/dram/src/x.rs", bad);
        assert!(
            rules_of(&r).iter().all(|&v| v == "D8"),
            "{:?}",
            r.violations
        );
        // static mut; std::sync + AtomicUsize; Ordering::Relaxed;
        // std::thread; .spawn(
        assert_eq!(r.violations.len(), 6, "{:?}", r.violations);
        // The bench *library* is covered (it hosts the sweep runner)…
        assert_eq!(
            rules_of(&check_one(
                "crates/bench/src/x.rs",
                "fn f() { let m = Mutex::new(0); }\n"
            )),
            ["D8"]
        );
        // …but tests, bins, and non-sim crates are not.
        assert!(rules_of(&check_one("crates/dram/tests/x.rs", bad)).is_empty());
        assert!(rules_of(&check_one("crates/cli/src/main.rs", bad)).is_empty());
        // `std::cmp::Ordering` is untouched.
        let cmp = "fn f(a: u64, b: u64) -> std::cmp::Ordering { a.cmp(&b) }\n";
        assert!(rules_of(&check_one("crates/dram/src/x.rs", cmp)).is_empty());
        // Waivers suppress, as for every D rule.
        let waived =
            "// gsdram-lint: allow(D8) sanctioned parallel site, proven serial-identical\nuse std::thread;\n";
        let r = check_one("crates/bench/src/x.rs", waived);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waived, 1);
    }

    #[test]
    fn d9_requires_total_merges() {
        let total = concat!(
            "pub struct QueueStats { pub enq: u64, pub deq: u64, pub peak: u64 }\n",
            "impl QueueStats {\n",
            "    pub fn merge(&mut self, other: &Self) {\n",
            "        self.enq += other.enq;\n",
            "        self.deq += other.deq;\n",
            "        if other.peak > self.peak { self.peak = other.peak; }\n",
            "    }\n",
            "}\n",
        );
        assert!(rules_of(&check_one("crates/dram/src/x.rs", total)).is_empty());
        let dropped = total.replace("if other.peak > self.peak { self.peak = other.peak; }", "");
        let r = check_one("crates/dram/src/x.rs", &dropped);
        assert_eq!(rules_of(&r), ["D9"], "{:?}", r.violations);
        assert!(
            r.violations[0].msg.contains("other.peak"),
            "{:?}",
            r.violations
        );
        // The violation anchors at the merge fn.
        assert_eq!(r.violations[0].line, 3);
        // Cross-file within one crate: struct and impl in different files.
        let r = check_workspace(
            &[
                file(
                    "crates/dram/src/stats.rs",
                    "pub struct IoStats { pub n: u64 }\n",
                ),
                file(
                    "crates/dram/src/merge.rs",
                    "impl IoStats { pub fn merge(&mut self, rhs: &Self) { let _ = rhs; } }\n",
                ),
            ],
            None,
            None,
        );
        assert_eq!(rules_of(&r), ["D9"], "{:?}", r.violations);
        assert!(r.violations[0].msg.contains("rhs.n"));
        // Non-merge impls, tuple structs, and differently-named types
        // carry no obligation.
        let no_merge = "pub struct FooStats { pub a: u64 }\nimpl FooStats { fn reset(&mut self) { self.a = 0; } }\n";
        assert!(rules_of(&check_one("crates/dram/src/x.rs", no_merge)).is_empty());
        let not_stats = "pub struct Queue { pub a: u64 }\nimpl Queue { pub fn merge(&mut self, o: &Self) {} }\n";
        assert!(rules_of(&check_one("crates/dram/src/x.rs", not_stats)).is_empty());
    }

    #[test]
    fn d10_audits_waiver_debt_against_the_baseline() {
        let src = "// gsdram-lint: allow(D4) key inserted above\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let files = [file("crates/core/src/x.rs", src)];
        let matching = r#"{"rules": {"D4": {"crates/core/src/x.rs": 1}}}"#;
        let r = check_workspace(&files, None, Some(matching));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // New debt: a waiver the baseline has never seen.
        let empty = r#"{"rules": {}}"#;
        let r = check_workspace(&files, None, Some(empty));
        assert_eq!(rules_of(&r), ["D10"], "{:?}", r.violations);
        assert!(r.violations[0].msg.contains("new waiver debt"));
        assert_eq!(r.violations[0].rel, WAIVER_BASELINE_REL);
        // Stale debt: the baseline records a waiver that is gone.
        let stale =
            r#"{"rules": {"D4": {"crates/core/src/x.rs": 1, "crates/core/src/gone.rs": 2}}}"#;
        let r = check_workspace(&files, None, Some(stale));
        assert_eq!(rules_of(&r), ["D10"]);
        assert!(r.violations[0].msg.contains("stale baseline entry"));
        // No baseline → no audit (fixture trees, fresh checkouts).
        let r = check_workspace(&files, None, None);
        assert!(r.violations.is_empty());
        // Garbage baseline is a violation, not a crash.
        let r = check_workspace(&files, None, Some("{nope"));
        assert_eq!(rules_of(&r), ["D10"]);
    }

    #[test]
    fn waiver_inventory_counts_per_rule_per_file() {
        let files = [
            file(
                "crates/core/src/a.rs",
                "// gsdram-lint: allow(D4) one\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n// gsdram-lint: allow(D4, D5) two\nfn g() {}\n",
            ),
            file("crates/core/src/b.rs", "fn h() {}\n"),
        ];
        let inv = waiver_inventory(&files);
        assert_eq!(inv["D4"]["crates/core/src/a.rs"], 2);
        assert_eq!(inv["D5"]["crates/core/src/a.rs"], 1);
        assert!(!inv.contains_key("D1"));
        assert!(!inv["D4"].contains_key("crates/core/src/b.rs"));
    }

    #[test]
    fn enum_variant_extraction_handles_attrs_and_bodies() {
        let f = file(
            "crates/core/src/port.rs",
            "pub enum SimEvent {\n    #[doc(hidden)]\n    A { x: Vec<u8> },\n    B(u64),\n    C,\n}\n",
        );
        let v = enum_variants(&f, "SimEvent")
            .map(|vs| vs.into_iter().map(|(n, _)| n).collect::<Vec<_>>());
        assert_eq!(
            v.as_deref(),
            Some(&["A".to_string(), "B".to_string(), "C".to_string()][..])
        );
    }
}
