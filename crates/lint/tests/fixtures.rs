//! Fixture-tree tests: every rule has an on-disk mini-workspace that
//! trips it, and a twin where an inline waiver (with a reason)
//! silences it. These pin the end-to-end path — directory walk, file
//! classification, lexing, rule, waiver — not just the rule functions.

use std::path::PathBuf;

use gsdram_lint::check_root;
use gsdram_lint::Report;

fn check(rel: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    check_root(&root).expect("fixture tree loads")
}

fn rules(r: &Report) -> Vec<&'static str> {
    r.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn d1_hash_container() {
    let r = check("D1/violation");
    assert_eq!(rules(&r), ["D1"], "{:?}", r.violations);
    let r = check("D1/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 1);
}

#[test]
fn d2_ambient_nondeterminism() {
    let r = check("D2/violation");
    // `std::time` + `Instant` in both the signature and the body.
    assert_eq!(rules(&r), ["D2", "D2", "D2", "D2"], "{:?}", r.violations);
    let r = check("D2/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 4);
}

#[test]
fn d3_bare_cast() {
    let r = check("D3/violation");
    assert_eq!(rules(&r), ["D3"], "{:?}", r.violations);
    assert!(r.violations[0].rel.ends_with("dram/src/mapping.rs"));
    let r = check("D3/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 1);
}

#[test]
fn d4_panic_path() {
    let r = check("D4/violation");
    assert_eq!(rules(&r), ["D4"], "{:?}", r.violations);
    let r = check("D4/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 1);
}

#[test]
fn d5_float_outside_leaves() {
    let r = check("D5/violation");
    // Return type plus two cast targets.
    assert_eq!(rules(&r), ["D5", "D5", "D5"], "{:?}", r.violations);
    let r = check("D5/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 3, "the block waiver covers the whole helper");
}

#[test]
fn d6_event_coverage() {
    let r = check("D6/violation");
    // `DramEnqueue` missing from the collector and the event table.
    assert_eq!(rules(&r), ["D6", "D6"], "{:?}", r.violations);
    assert!(r
        .violations
        .iter()
        .all(|v| v.msg.contains("DramEnqueue") && v.rel.ends_with("core/src/port.rs")));
    let r = check("D6/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 2);
}

#[test]
fn d7_clock_ticking() {
    let r = check("D7/violation");
    assert_eq!(rules(&r), ["D7"], "{:?}", r.violations);
    assert!(r.violations[0].rel.ends_with("dram/src/ticker.rs"));
    let r = check("D7/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 1);
}

#[test]
fn d8_concurrency() {
    let r = check("D8/violation");
    // `static mut`, `std::thread`, and `thread::spawn`.
    assert_eq!(rules(&r), ["D8", "D8", "D8"], "{:?}", r.violations);
    assert!(r.violations[0].rel.ends_with("dram/src/racy.rs"));
    let r = check("D8/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 3);
}

#[test]
fn d9_merge_totality() {
    let r = check("D9/violation");
    assert_eq!(rules(&r), ["D9"], "{:?}", r.violations);
    assert!(
        r.violations[0].msg.contains("other.peak"),
        "{:?}",
        r.violations
    );
    let r = check("D9/waived");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 1);
}

#[test]
fn d10_waiver_debt() {
    let r = check("D10/violation");
    // A live waiver the baseline misses, and a baseline entry whose
    // waiver is gone.
    assert_eq!(rules(&r), ["D10", "D10"], "{:?}", r.violations);
    assert!(r
        .violations
        .iter()
        .any(|v| v.msg.contains("new waiver debt")));
    assert!(r
        .violations
        .iter()
        .any(|v| v.msg.contains("stale baseline entry")));
    assert!(r.violations.iter().all(|v| v.rel == "lint_waivers.json"));
    let r = check("D10/clean");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waived, 1);
}

#[test]
fn w0_waiver_hygiene() {
    let r = check("W0/violation");
    // The reasonless waiver is reported AND fails to suppress its D4;
    // the malformed waiver is a second W0.
    let mut got = rules(&r);
    got.sort_unstable();
    assert_eq!(got, ["D4", "W0", "W0"], "{:?}", r.violations);
    assert_eq!(r.waived, 0);
}

#[test]
fn w1_stale_waiver() {
    let r = check("W1/violation");
    assert_eq!(rules(&r), ["W1"], "{:?}", r.violations);
}
