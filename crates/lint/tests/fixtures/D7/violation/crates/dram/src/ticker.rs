//! D7 fixture: a clock stepped cycle-by-cycle in simulation code.

pub struct Ticker {
    now: u64,
}

impl Ticker {
    pub fn advance(&mut self, to: u64) {
        while self.now < to {
            self.now += 1;
        }
    }
}
