//! D7 fixture: the same unit tick, waived with a justification.

pub struct Ticker {
    now: u64,
}

impl Ticker {
    pub fn advance(&mut self, to: u64) {
        while self.now < to {
            // gsdram-lint: allow(D7) fixture: pretend this loop is load-bearing
            self.now += 1;
        }
    }
}
