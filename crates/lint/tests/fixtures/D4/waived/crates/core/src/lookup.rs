//! D4 fixture: the same panic path, waived with its invariant.

pub fn head(xs: &[u64]) -> u64 {
    // gsdram-lint: allow(D4) callers validate non-emptiness at construction
    xs.first().copied().expect("non-empty by construction")
}
