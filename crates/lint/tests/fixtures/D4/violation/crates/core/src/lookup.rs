//! D4 fixture: a panic path in library code.

pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
