//! W0 fixture: a reasonless waiver (which must not suppress) and a
//! malformed one.

pub fn head(xs: &[u64]) -> u64 {
    // gsdram-lint: allow(D4)
    xs.first().copied().unwrap()
}

// gsdram-lint: allow(D4 missing close paren
pub fn noop() {}
