//! D1 fixture: a hash container in simulation-crate library code.

pub struct Table {
    rows: std::collections::HashMap<u64, u64>,
}
