//! D1 fixture: the same hash container, waived with a justification.

pub struct Table {
    // gsdram-lint: allow(D1) membership-only map, never iterated
    rows: std::collections::HashMap<u64, u64>,
}
