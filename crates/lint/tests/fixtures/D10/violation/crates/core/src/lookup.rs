//! D10 fixture: a live waiver the baseline has never seen (and a
//! baseline entry for a waiver that does not exist).

pub fn pick(xs: &[u64]) -> u64 {
    // gsdram-lint: allow(D4) fixture: first element is guaranteed by construction
    *xs.first().unwrap()
}
