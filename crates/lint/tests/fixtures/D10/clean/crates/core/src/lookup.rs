//! D10 fixture: the waiver inventory matches the committed baseline.

pub fn pick(xs: &[u64]) -> u64 {
    // gsdram-lint: allow(D4) fixture: first element is guaranteed by construction
    *xs.first().unwrap()
}
