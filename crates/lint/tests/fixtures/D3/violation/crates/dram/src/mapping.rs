//! D3 fixture: a bare truncating cast in an address-translation file.

pub fn row_of(line: u64) -> u32 {
    line as u32
}
