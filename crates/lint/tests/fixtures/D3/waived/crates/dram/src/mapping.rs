//! D3 fixture: the same cast, waived with the bound that makes it safe.

pub fn row_of(line: u64) -> u32 {
    // gsdram-lint: allow(D3) callers mask line to 20 bits first
    line as u32
}
