//! D9 fixture: a stats merge that silently drops a field.

pub struct QueueStats {
    pub enq: u64,
    pub deq: u64,
    pub peak: u64,
}

impl QueueStats {
    pub fn merge(&mut self, other: &Self) {
        self.enq += other.enq;
        self.deq += other.deq;
    }
}
