//! D9 fixture: the same partial merge, waived with the invariant that
//! makes dropping the field sound.

pub struct QueueStats {
    pub enq: u64,
    pub deq: u64,
    pub peak: u64,
}

impl QueueStats {
    // gsdram-lint: allow(D9) peak is recomputed by the report assembler, not additive
    pub fn merge(&mut self, other: &Self) {
        self.enq += other.enq;
        self.deq += other.deq;
    }
}
