//! D2 fixture: wall-clock time in non-test code.

pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
