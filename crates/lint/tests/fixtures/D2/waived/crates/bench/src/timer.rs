//! D2 fixture: the same wall-clock use, waived as harness plumbing.

// gsdram-lint: allow(D2) wall-clock is this harness's deliverable
pub fn now() -> std::time::Instant {
    // gsdram-lint: allow(D2) wall-clock is this harness's deliverable
    std::time::Instant::now()
}
