//! D8 fixture: the same constructs, waived with a justification.

// gsdram-lint: allow(D8) fixture: pretend this counter is a sanctioned debug probe
pub static mut HITS: u64 = 0;

pub fn count() {
    // gsdram-lint: allow(D8) fixture: pretend this worker is the sanctioned parallel site
    std::thread::spawn(|| unsafe { HITS += 1 });
}
