//! D8 fixture: shared mutable state and ad-hoc threading in sim code.

pub static mut HITS: u64 = 0;

pub fn count() {
    std::thread::spawn(|| unsafe { HITS += 1 });
}
