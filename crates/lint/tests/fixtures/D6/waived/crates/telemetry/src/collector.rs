//! D6 fixture collector: folds only `CacheFill`.

pub fn fold(ev: &SimEvent) {
    match ev {
        SimEvent::CacheFill { .. } => {}
        _ => {}
    }
}
