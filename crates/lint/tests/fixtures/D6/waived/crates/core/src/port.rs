//! D6 fixture: the uncovered variant carries a waiver naming why.

pub enum SimEvent {
    CacheFill { addr: u64 },
    // gsdram-lint: allow(D6) staged variant; collector arm lands with the emitter
    DramEnqueue { id: u64 },
}
