//! D6 fixture: `DramEnqueue` is missing from the collector and the
//! architecture event table.

pub enum SimEvent {
    CacheFill { addr: u64 },
    DramEnqueue { id: u64 },
}
