//! W1 fixture: a well-formed waiver with nothing left to excuse.

// gsdram-lint: allow(D4) the unwrap this excused was removed
pub fn noop() {}
