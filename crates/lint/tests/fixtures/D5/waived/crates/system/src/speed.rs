//! D5 fixture: the same float helper, block-waived as a report leaf.

// gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
pub fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / b as f64
}
