//! D5 fixture: float arithmetic in simulation-crate library code.

pub fn ratio(a: u64, b: u64) -> f64 {
    a as f64 / b as f64
}
