//! Item-parser structural properties over the real workspace corpus.
//!
//! The structural rules (D8/D9) trust three parser invariants, checked
//! here against every `.rs` file the linter actually scans:
//!
//! * sibling item spans are ordered and disjoint;
//! * children lie inside their parent's body span;
//! * every code token of a file falls inside some top-level item span
//!   (totality: unknown syntax degrades to `Other`, never to a gap).

use std::path::Path;

use gsdram_lint::items::{parse_items, Item};
use gsdram_lint::workspace;

fn check_seq(rel: &str, items: &[Item], bounds: Option<(usize, usize)>) {
    let mut at = bounds.map_or(0, |b| b.0);
    for it in items {
        assert!(
            it.span.0 >= at,
            "{rel}: item at byte {} overlaps its predecessor",
            it.span.0
        );
        assert!(it.span.1 > it.span.0, "{rel}: empty item span");
        at = it.span.1;
        if let Some((_, end)) = bounds {
            assert!(it.span.1 <= end, "{rel}: child escapes its parent body");
        }
        if !it.children.is_empty() {
            let body = it.body.expect("children imply a recorded body span");
            assert!(
                body.0 >= it.span.0 && body.1 <= it.span.1,
                "{rel}: body outside the item"
            );
            check_seq(rel, &it.children, Some(body));
        }
    }
}

#[test]
fn item_spans_tile_every_workspace_file() {
    let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let ws = workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace walk found only {} files",
        ws.files.len()
    );
    for f in &ws.files {
        let items = parse_items(f);
        check_seq(&f.rel, &items, None);
        for &i in &f.code_tokens() {
            let t = &f.tokens[i];
            assert!(
                items
                    .iter()
                    .any(|it| t.start >= it.span.0 && t.end <= it.span.1),
                "{}: code token {:?} at byte {} is outside every top-level item",
                f.rel,
                &f.src[t.start..t.end],
                t.start,
            );
        }
    }
}

#[test]
fn workspace_yields_structural_facts_not_just_spans() {
    // Guard against the parser degrading into one big `Other` per
    // file: over the real corpus it must recognise a healthy number of
    // named items.
    let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let ws = workspace::load(&root).unwrap();
    let mut fns = 0usize;
    let mut structs_with_fields = 0usize;
    let mut impls = 0usize;
    for f in &ws.files {
        for it in parse_items(f) {
            it.walk(&mut |i| {
                use gsdram_lint::items::ItemKind;
                match i.kind {
                    ItemKind::Fn => fns += 1,
                    ItemKind::Struct if !i.fields.is_empty() => structs_with_fields += 1,
                    ItemKind::Impl => impls += 1,
                    _ => {}
                }
            });
        }
    }
    assert!(fns > 500, "only {fns} fns parsed across the workspace");
    assert!(
        structs_with_fields > 50,
        "only {structs_with_fields} field-bearing structs"
    );
    assert!(impls > 100, "only {impls} impl blocks");
}
