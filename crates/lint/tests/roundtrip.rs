//! Lexer round-trip properties.
//!
//! The rule engine trusts two lexer invariants: token spans tile the
//! input exactly (no gaps, no overlap, full coverage), and lexing
//! never panics. The first test checks both over every real source
//! file in this workspace — the corpus the linter actually runs on —
//! and the second over seeded pseudo-random hostile inputs, so the
//! property holds beyond today's code.

use std::path::Path;

use gsdram_lint::lexer::lex;
use gsdram_lint::workspace;

/// Spans must be ordered, contiguous, and cover the whole input; the
/// concatenated span texts must rebuild the file byte-for-byte.
fn assert_round_trips(name: &str, src: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut at = 0usize;
    for t in &tokens {
        assert_eq!(t.start, at, "{name}: gap or overlap before offset {at}");
        assert!(t.end > t.start, "{name}: empty token at {at}");
        rebuilt.push_str(&src[t.start..t.end]);
        at = t.end;
    }
    assert_eq!(at, src.len(), "{name}: trailing bytes not tokenised");
    assert_eq!(rebuilt, src, "{name}: concatenated spans differ");
}

#[test]
fn every_workspace_source_round_trips() {
    let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("test runs inside the workspace");
    let ws = workspace::load(&root).expect("workspace loads");
    assert!(
        ws.files.len() > 50,
        "workspace walk found only {} files",
        ws.files.len()
    );
    for f in &ws.files {
        assert_round_trips(&f.rel, &f.src);
    }
}

/// SplitMix64 (Steele et al.) — inlined so the linter crate stays
/// dependency-free even in tests.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[test]
fn hostile_inputs_round_trip_without_panicking() {
    // Fragments chosen to stress the tricky lexer states: raw strings,
    // raw identifiers, char-vs-lifetime, nested comments, exponents,
    // unterminated constructs.
    const PIECES: &[&str] = &[
        "r#\"raw \" body\"#",
        "r##\"deeper\"##",
        "b\"bytes\\\"\"",
        "br#\"raw bytes\"#",
        "r#type",
        "r#match",
        "r#as.r#await",
        "let r#fn = 1;",
        "rb\"not a prefix\"",
        "r###\"deep \"## inside\"###",
        "'a",
        "'x'",
        "'\\n'",
        "/* outer /* nested */ still */",
        "/* \"/*\" x */ y */",
        "/* \"*/\" */",
        "/* r#\"*/ tail */",
        "/* b\"*/\" */",
        "// line comment",
        "/// doc",
        "1e-9",
        "1_000e+3",
        "0xEF",
        "7usize",
        "1.5f64",
        "0..8",
        "ident",
        "\"str with // not a comment\"",
        "\u{3b1}\u{3b2}", // non-ASCII identifiers
        "{",
        "}",
        "..=",
        "::",
        "#[cfg(test)]",
        "\n",
        " ",
        "\t",
        "\"unterminated",
        "/* unterminated",
        "r#\"unterminated raw",
    ];
    let mut rng = SplitMix(0x6507_DA44);
    for case in 0..512 {
        let n = rng.below(40) + 1;
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(PIECES[rng.below(PIECES.len() as u64) as usize]);
            if rng.below(3) == 0 {
                src.push(' ');
            }
        }
        assert_round_trips(&format!("fuzz case {case}"), &src);
    }
}

#[test]
fn pathological_small_inputs_round_trip() {
    for src in [
        "", "'", "\"", "r", "r#", "b'", "0", ".", "\\", "\u{0}", "🦀",
    ] {
        assert_round_trips("small input", src);
    }
}
