//! Acceptance pin for rule D9 on the real controller stats: deleting
//! any single field-read from `ControllerStats::merge` must fail D9,
//! and the unmodified file must pass. This replaces the hand-written
//! per-field merge test as the thing that keeps parallel sweeps
//! honest — the rule now generalises to every future `*Stats` struct.

use std::fs;
use std::path::PathBuf;

use gsdram_lint::items::{parse_items, Field, ItemKind};
use gsdram_lint::rules::check_workspace;
use gsdram_lint::scan::SourceFile;

const REL: &str = "crates/dram/src/controller.rs";

fn controller_src() -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../dram/src/controller.rs");
    fs::read_to_string(p).expect("controller.rs readable")
}

fn parse(src: &str) -> SourceFile {
    SourceFile::parse(PathBuf::from(REL), REL.to_string(), src.to_string())
}

fn d9_messages(src: &str) -> Vec<String> {
    check_workspace(&[parse(src)], None, None)
        .violations
        .into_iter()
        .filter(|v| v.rule == "D9")
        .map(|v| v.msg)
        .collect()
}

fn controller_stats_fields(src: &str) -> Vec<Field> {
    let f = parse(src);
    let mut fields = Vec::new();
    for it in parse_items(&f) {
        it.walk(&mut |i| {
            if i.kind == ItemKind::Struct && i.name == "ControllerStats" {
                fields = i.fields.clone();
            }
        });
    }
    fields
}

#[test]
fn controller_stats_merge_is_total_today() {
    let msgs = d9_messages(&controller_src());
    assert!(msgs.is_empty(), "{msgs:?}");
}

#[test]
fn dropping_any_single_field_read_fails_d9() {
    let src = controller_src();
    let fields = controller_stats_fields(&src);
    assert!(
        fields.len() >= 17,
        "ControllerStats lost fields? found {}",
        fields.len()
    );
    for fld in &fields {
        let read = format!("other.{}", fld.name);
        let mutated = src.replace(&read, "0");
        assert_ne!(mutated, src, "merge never mentioned `{read}`?");
        let msgs = d9_messages(&mutated);
        assert!(
            msgs.iter().any(|m| m.contains(&read)),
            "dropping `{read}` went unflagged; D9 reported: {msgs:?}"
        );
    }
}
