//! Property-style tests for the GS-DRAM core invariants (DESIGN.md §7).
//!
//! The workspace builds without external crates, so instead of
//! `proptest` these run each property over a deterministic
//! pseudo-random case stream ([`gsdram_core::rng::SplitMix`]) — same
//! coverage breadth, bit-reproducible failures.

use gsdram_core::analysis::{chip_conflicts, MappingScheme};
use gsdram_core::ecc::{decode, encode, Decode};
use gsdram_core::rng::SplitMix;
use gsdram_core::shuffle::{shuffle_line, ShuffleFn};
use gsdram_core::{
    gather_slots, gathered_elements, ColumnId, Geometry, GsDramConfig, GsModule, PatternId, RowId,
};

const CASES: usize = 200;

/// The valid `GS-DRAM(c,s,p)` configurations we care about.
fn configs() -> Vec<GsDramConfig> {
    vec![
        GsDramConfig::gs_dram_4_2_2(),
        GsDramConfig::gs_dram_8_3_3(),
        GsDramConfig::new(16, 4, 4).unwrap(),
        GsDramConfig::new(8, 2, 3).unwrap(),
        GsDramConfig::new(8, 3, 6).unwrap(), // §6.2 wide pattern IDs
    ]
}

fn pick_config(rng: &mut SplitMix) -> GsDramConfig {
    let all = configs();
    let i = rng.below(all.len() as u64) as usize;
    all[i].clone()
}

/// The shuffle network is an involution for every control input, and a
/// permutation (never loses or duplicates words).
#[test]
fn shuffle_is_an_involutive_permutation() {
    let mut rng = SplitMix(0x5701);
    for _ in 0..CASES {
        let line = rng.words(8);
        let control = rng.below(8) as u8;
        let mut work = line.clone();
        shuffle_line(&mut work, 3, control);
        let mut sorted_shuffled = work.clone();
        shuffle_line(&mut work, 3, control);
        assert_eq!(work, line, "involution under control {control}");
        let mut sorted_orig = line.clone();
        sorted_shuffled.sort_unstable();
        sorted_orig.sort_unstable();
        assert_eq!(
            sorted_shuffled, sorted_orig,
            "permutation under control {control}"
        );
    }
}

/// Every gather reads each chip exactly once — the property that lets a
/// single READ command fetch the whole pattern (paper §3).
#[test]
fn gather_touches_each_chip_once() {
    let mut rng = SplitMix(0x5702);
    for _ in 0..CASES {
        let cfg = pick_config(&mut rng);
        let pattern = PatternId(rng.below(256) as u8 & cfg.max_pattern());
        let col = ColumnId(rng.below(128) as u32);
        let slots = gather_slots(&cfg, pattern, col, true);
        let mut chips: Vec<u8> = slots.iter().map(|s| s.chip).collect();
        chips.sort_unstable();
        assert_eq!(chips, (0..cfg.chips() as u8).collect::<Vec<u8>>());
    }
}

/// Gathered elements are distinct and in strictly ascending assembly
/// order.
#[test]
fn gathered_elements_strictly_ascend() {
    let mut rng = SplitMix(0x5703);
    for _ in 0..CASES {
        let cfg = pick_config(&mut rng);
        let pattern = PatternId(rng.below(256) as u8 & cfg.max_pattern());
        let col = ColumnId(rng.below(128) as u32);
        let e = gathered_elements(&cfg, pattern, col, true);
        assert!(e.windows(2).all(|w| w[0] < w[1]), "{e:?}");
    }
}

/// Pattern `2^k − 1` gathers exactly the aligned stride-`2^k` group
/// containing the issued column's elements, with zero chip conflicts.
/// Requires `k ≤ shuffle_stages` — §3.5: the stage count (with the
/// pattern width) determines which patterns gather efficiently.
#[test]
fn stride_patterns_gather_strides() {
    let mut rng = SplitMix(0x5704);
    for _ in 0..CASES {
        let cfg = pick_config(&mut rng);
        let k = rng.below(4) as u32;
        let col = ColumnId(rng.below(16) as u32);
        if k > cfg.pattern_bits() as u32
            || k > cfg.shuffle_stages() as u32
            || (1u32 << k) > cfg.chips() as u32 * 16
        {
            continue;
        }
        let stride = 1usize << k;
        let pattern = PatternId((stride - 1) as u8);
        let e = gathered_elements(&cfg, pattern, col, true);
        let gaps: Vec<usize> = e.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.iter().all(|&g| g == stride),
            "stride {stride} gaps {gaps:?}"
        );
        assert_eq!(chip_conflicts(&cfg, MappingScheme::Shuffled, &e), 0);
    }
}

/// Scatter followed by gather with the same (pattern, col) returns the
/// written line bit-for-bit, and leaves all other elements of the row
/// untouched.
#[test]
fn scatter_gather_round_trip() {
    let mut rng = SplitMix(0x5705);
    for _ in 0..CASES {
        let cfg = pick_config(&mut rng);
        let pattern = PatternId(rng.below(256) as u8 & cfg.max_pattern());
        let col = ColumnId(rng.below(16) as u32);
        let row = RowId(rng.below(2) as u32);
        let shuffled = rng.flip();
        let line16 = rng.words(16);
        let geom = Geometry::new(&cfg, 2, 16.max(1 << cfg.pattern_bits())).unwrap();
        let mut m = GsModule::new(cfg.clone(), geom);
        // Background fill so we can detect stray writes.
        for e in 0..geom.cols_per_row() * cfg.chips() {
            m.write_element(row, e, shuffled, 0xAAAA_0000 + e as u64)
                .unwrap();
        }
        let line = &line16[..cfg.chips()];
        m.write_line(row, col, pattern, shuffled, line).unwrap();
        let back = m.read_line(row, col, pattern, shuffled).unwrap();
        assert_eq!(&back, line);
        // Untouched elements keep the background value.
        let touched = gathered_elements(&cfg, pattern, col, shuffled);
        for e in 0..geom.cols_per_row() * cfg.chips() {
            if !touched.contains(&e) {
                assert_eq!(
                    m.read_element(row, e, shuffled).unwrap(),
                    0xAAAA_0000 + e as u64,
                    "element {e} was clobbered"
                );
            }
        }
    }
}

/// Two gathers of *different* columns under the *same* pattern never
/// overlap (they partition the row) — the property that keeps
/// same-pattern cache lines disjoint (§4.1).
#[test]
fn same_pattern_gathers_are_disjoint() {
    let mut rng = SplitMix(0x5706);
    for _ in 0..CASES {
        let cfg = pick_config(&mut rng);
        let pattern = PatternId(rng.below(256) as u8 & cfg.max_pattern());
        let c1 = rng.below(16) as u32;
        let c2 = rng.below(16) as u32;
        if c1 == c2 {
            continue;
        }
        let a = gathered_elements(&cfg, pattern, ColumnId(c1), true);
        let b = gathered_elements(&cfg, pattern, ColumnId(c2), true);
        assert!(a.iter().all(|e| !b.contains(e)));
    }
}

/// §6.1 programmable shuffling: the XOR-fold variant (like the default)
/// gathers every power-of-two stride conflict-free — the fold only
/// changes *which* word each chip holds, uniformly per column.
#[test]
fn xor_fold_shuffle_still_gathers_strides() {
    let mut rng = SplitMix(0x5707);
    for _ in 0..CASES {
        let k = rng.below(4) as u32;
        let col = ColumnId(rng.below(64) as u32);
        let groups = rng.range(1, 4) as u8;
        let cfg = GsDramConfig::with_shuffle_fn(8, 3, 3, ShuffleFn::XorFold { groups }).unwrap();
        let stride = 1usize << k;
        let pattern = PatternId((stride - 1) as u8);
        let e = gathered_elements(&cfg, pattern, col, true);
        let gaps: Vec<usize> = e.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.iter().all(|&g| g == stride),
            "stride {stride} gaps {gaps:?}"
        );
    }
}

/// Round-tripping a module through scatter/gather works for every
/// programmable shuffle function.
#[test]
fn round_trip_under_programmable_shuffles() {
    let mut rng = SplitMix(0x5708);
    for _ in 0..CASES {
        let pattern = PatternId(rng.below(8) as u8);
        let col = ColumnId(rng.below(16) as u32);
        let line = rng.words(8);
        let f = match rng.below(3) {
            0 => ShuffleFn::LowBits,
            1 => ShuffleFn::Masked { mask: 0b101 },
            _ => ShuffleFn::XorFold { groups: 2 },
        };
        let cfg = GsDramConfig::with_shuffle_fn(8, 3, 3, f).unwrap();
        let geom = Geometry::new(&cfg, 1, 16).unwrap();
        let mut m = GsModule::new(cfg, geom);
        m.write_line(RowId(0), col, pattern, true, &line).unwrap();
        let back = m.read_line(RowId(0), col, pattern, true).unwrap();
        assert_eq!(back, line);
    }
}

/// SEC-DED: every single-bit corruption of any codeword is corrected to
/// the original data; every double-bit data corruption is detected.
#[test]
fn secded_corrects_singles_detects_doubles() {
    let mut rng = SplitMix(0x5709);
    for _ in 0..CASES {
        let data = rng.next_u64();
        let b1 = rng.below(72) as u32;
        let b2 = rng.below(64) as u32;
        let check = encode(data);
        // Single flip anywhere in the 72-bit codeword.
        let (d1, c1) = if b1 < 64 {
            (data ^ (1u64 << b1), check)
        } else {
            (data, check ^ (1u8 << (b1 - 64)))
        };
        match decode(d1, c1) {
            Decode::Corrected(v) => assert_eq!(v, data),
            Decode::Clean(_) => panic!("flip must be noticed"),
            Decode::DoubleError => panic!("single flip flagged double"),
        }
        // Double flip within the data bits.
        let b1d = b1 % 64;
        if b1d == b2 {
            continue;
        }
        let d2 = data ^ (1u64 << b1d) ^ (1u64 << b2);
        assert_eq!(decode(d2, check), Decode::DoubleError);
    }
}

/// All shuffle functions produce controls within the stage width, so
/// the programmable variants (§6.1) remain legal datapath inputs.
#[test]
fn shuffle_fn_controls_fit_stage_width() {
    let mut rng = SplitMix(0x570A);
    for _ in 0..CASES {
        let col = ColumnId(rng.next_u64() as u32);
        let stages = rng.range(1, 4) as u8;
        for f in [
            ShuffleFn::Identity,
            ShuffleFn::LowBits,
            ShuffleFn::Masked { mask: 0b101 },
            ShuffleFn::XorFold { groups: 3 },
        ] {
            let c = f.control(col, stages);
            assert!(c < (1 << stages), "{f:?} produced {c}");
        }
    }
}
