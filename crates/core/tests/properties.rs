//! Property-based tests for the GS-DRAM core invariants (DESIGN.md §7).

use gsdram_core::analysis::{chip_conflicts, MappingScheme};
use gsdram_core::ecc::{decode, encode, Decode};
use gsdram_core::shuffle::{shuffle_line, ShuffleFn};
use gsdram_core::{
    gather_slots, gathered_elements, ColumnId, Geometry, GsDramConfig, GsModule, PatternId, RowId,
};
use proptest::prelude::*;

/// Strategy over the valid `GS-DRAM(c,s,p)` configurations we care about.
fn configs() -> impl Strategy<Value = GsDramConfig> {
    prop_oneof![
        Just(GsDramConfig::gs_dram_4_2_2()),
        Just(GsDramConfig::gs_dram_8_3_3()),
        Just(GsDramConfig::new(16, 4, 4).unwrap()),
        Just(GsDramConfig::new(8, 2, 3).unwrap()),
        Just(GsDramConfig::new(8, 3, 6).unwrap()), // §6.2 wide pattern IDs
    ]
}

proptest! {
    /// The shuffle network is an involution for every control input.
    #[test]
    fn shuffle_is_involution(
        line in proptest::collection::vec(any::<u64>(), 8),
        control in 0u8..8,
    ) {
        let mut work = line.clone();
        shuffle_line(&mut work, 3, control);
        shuffle_line(&mut work, 3, control);
        prop_assert_eq!(work, line);
    }

    /// Shuffling never loses or duplicates words (it is a permutation).
    #[test]
    fn shuffle_is_a_permutation(control in 0u8..8) {
        let mut line: Vec<u64> = (0..8).collect();
        shuffle_line(&mut line, 3, control);
        let mut sorted = line.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..8).collect::<Vec<u64>>());
    }

    /// Every gather reads each chip exactly once — the property that lets
    /// a single READ command fetch the whole pattern (paper §3).
    #[test]
    fn gather_touches_each_chip_once(cfg in configs(), pattern in 0u8..=255, col in 0u32..128) {
        let pattern = PatternId(pattern & cfg.max_pattern());
        let slots = gather_slots(&cfg, pattern, ColumnId(col), true);
        let mut chips: Vec<u8> = slots.iter().map(|s| s.chip).collect();
        chips.sort_unstable();
        prop_assert_eq!(chips, (0..cfg.chips() as u8).collect::<Vec<u8>>());
    }

    /// Gathered elements are distinct and in strictly ascending assembly
    /// order.
    #[test]
    fn gathered_elements_strictly_ascend(cfg in configs(), pattern in 0u8..=255, col in 0u32..128) {
        let pattern = PatternId(pattern & cfg.max_pattern());
        let e = gathered_elements(&cfg, pattern, ColumnId(col), true);
        prop_assert!(e.windows(2).all(|w| w[0] < w[1]), "{:?}", e);
    }

    /// Pattern `2^k − 1` gathers exactly the aligned stride-`2^k` group
    /// containing the issued column's elements, with zero chip conflicts.
    /// Requires `k ≤ shuffle_stages` — §3.5: the stage count (with the
    /// pattern width) determines which patterns gather efficiently.
    #[test]
    fn stride_patterns_gather_strides(cfg in configs(), k in 0u32..4, col in 0u32..16) {
        prop_assume!(
            k <= cfg.pattern_bits() as u32
                && k <= cfg.shuffle_stages() as u32
                && (1u32 << k) <= cfg.chips() as u32 * 16
        );
        let stride = 1usize << k;
        let pattern = PatternId((stride - 1) as u8);
        let e = gathered_elements(&cfg, pattern, ColumnId(col), true);
        let gaps: Vec<usize> = e.windows(2).map(|w| w[1] - w[0]).collect();
        prop_assert!(gaps.iter().all(|&g| g == stride), "stride {} gaps {:?}", stride, gaps);
        prop_assert_eq!(chip_conflicts(&cfg, MappingScheme::Shuffled, &e), 0);
    }

    /// Scatter followed by gather with the same (pattern, col) returns
    /// the written line bit-for-bit, and leaves all other elements of the
    /// row untouched.
    #[test]
    fn scatter_gather_round_trip(
        cfg in configs(),
        pattern in 0u8..=255,
        col in 0u32..16,
        row in 0u32..2,
        line in proptest::collection::vec(any::<u64>(), 16),
        shuffled in any::<bool>(),
    ) {
        let pattern = PatternId(pattern & cfg.max_pattern());
        let geom = Geometry::new(&cfg, 2, 16.max(1 << cfg.pattern_bits())).unwrap();
        let mut m = GsModule::new(cfg.clone(), geom);
        // Background fill so we can detect stray writes.
        for e in 0..geom.cols_per_row() * cfg.chips() {
            m.write_element(RowId(row), e, shuffled, 0xAAAA_0000 + e as u64).unwrap();
        }
        let line = &line[..cfg.chips()];
        m.write_line(RowId(row), ColumnId(col), pattern, shuffled, line).unwrap();
        let back = m.read_line(RowId(row), ColumnId(col), pattern, shuffled).unwrap();
        prop_assert_eq!(&back, line);
        // Untouched elements keep the background value.
        let touched = gathered_elements(&cfg, pattern, ColumnId(col), shuffled);
        for e in 0..geom.cols_per_row() * cfg.chips() {
            if !touched.contains(&e) {
                prop_assert_eq!(
                    m.read_element(RowId(row), e, shuffled).unwrap(),
                    0xAAAA_0000 + e as u64,
                    "element {} was clobbered", e
                );
            }
        }
    }

    /// Two gathers of *different* columns under the *same* pattern never
    /// overlap (they partition the row) — the property that keeps
    /// same-pattern cache lines disjoint (§4.1).
    #[test]
    fn same_pattern_gathers_are_disjoint(cfg in configs(), pattern in 0u8..=255, c1 in 0u32..16, c2 in 0u32..16) {
        prop_assume!(c1 != c2);
        let pattern = PatternId(pattern & cfg.max_pattern());
        let a = gathered_elements(&cfg, pattern, ColumnId(c1), true);
        let b = gathered_elements(&cfg, pattern, ColumnId(c2), true);
        prop_assert!(a.iter().all(|e| !b.contains(e)));
    }

    /// §6.1 programmable shuffling: the XOR-fold variant (like the
    /// default) gathers every power-of-two stride conflict-free — the
    /// fold only changes *which* word each chip holds, uniformly per
    /// column.
    #[test]
    fn xor_fold_shuffle_still_gathers_strides(k in 0u32..4, col in 0u32..64, groups in 1u8..=3) {
        let cfg = GsDramConfig::with_shuffle_fn(
            8, 3, 3, ShuffleFn::XorFold { groups },
        ).unwrap();
        let stride = 1usize << k;
        let pattern = PatternId((stride - 1) as u8);
        let e = gathered_elements(&cfg, pattern, ColumnId(col), true);
        let gaps: Vec<usize> = e.windows(2).map(|w| w[1] - w[0]).collect();
        prop_assert!(gaps.iter().all(|&g| g == stride), "stride {} gaps {:?}", stride, gaps);
    }

    /// Round-tripping a module through scatter/gather works for every
    /// programmable shuffle function.
    #[test]
    fn round_trip_under_programmable_shuffles(
        pattern in 0u8..8,
        col in 0u32..16,
        line in proptest::collection::vec(any::<u64>(), 8),
        which in 0usize..3,
    ) {
        let f = match which {
            0 => ShuffleFn::LowBits,
            1 => ShuffleFn::Masked { mask: 0b101 },
            _ => ShuffleFn::XorFold { groups: 2 },
        };
        let cfg = GsDramConfig::with_shuffle_fn(8, 3, 3, f).unwrap();
        let geom = Geometry::new(&cfg, 1, 16).unwrap();
        let mut m = GsModule::new(cfg, geom);
        m.write_line(RowId(0), ColumnId(col), PatternId(pattern), true, &line).unwrap();
        let back = m.read_line(RowId(0), ColumnId(col), PatternId(pattern), true).unwrap();
        prop_assert_eq!(back, line);
    }

    /// SEC-DED: every single-bit corruption of any codeword is corrected
    /// to the original data; every double-bit data corruption is
    /// detected.
    #[test]
    fn secded_corrects_singles_detects_doubles(data in any::<u64>(), b1 in 0u32..72, b2 in 0u32..64) {
        let check = encode(data);
        // Single flip anywhere in the 72-bit codeword.
        let (d1, c1) = if b1 < 64 {
            (data ^ (1u64 << b1), check)
        } else {
            (data, check ^ (1u8 << (b1 - 64)))
        };
        match decode(d1, c1) {
            Decode::Corrected(v) => prop_assert_eq!(v, data),
            Decode::Clean(_) => prop_assert!(false, "flip must be noticed"),
            Decode::DoubleError => prop_assert!(false, "single flip flagged double"),
        }
        // Double flip within the data bits.
        let b1d = b1 % 64;
        prop_assume!(b1d != b2);
        let d2 = data ^ (1u64 << b1d) ^ (1u64 << b2);
        prop_assert_eq!(decode(d2, check), Decode::DoubleError);
    }

    /// All shuffle functions produce controls within the stage width, so
    /// the programmable variants (§6.1) remain legal datapath inputs.
    #[test]
    fn shuffle_fn_controls_fit_stage_width(col in any::<u32>(), stages in 1u8..=3) {
        for f in [
            ShuffleFn::Identity,
            ShuffleFn::LowBits,
            ShuffleFn::Masked { mask: 0b101 },
            ShuffleFn::XorFold { groups: 3 },
        ] {
            let c = f.control(ColumnId(col), stages);
            prop_assert!(c < (1 << stages), "{:?} produced {}", f, c);
        }
    }
}
