//! Intra-chip column translation (paper §6.3).
//!
//! A DRAM bank is physically a 2-D grid of small tiles (MATs); each tile
//! contributes an equal share of the 64 bits a chip supplies per column
//! access. Running the CTL *inside* the chip, per tile, allows two
//! extensions:
//!
//! 1. gathering at a granularity smaller than 8 bytes (each tile picks a
//!    different column, so one chip word can mix sub-words of several
//!    columns), and
//! 2. ECC DIMMs: the ECC chip's eight tiles gather the ECC bytes of the
//!    eight data lines touched by a non-zero pattern, so every pattern
//!    remains ECC-protected.

use crate::ctl::{ColumnTranslationLogic, CommandKind};
use crate::error::ConfigError;
use crate::{ChipId, ColumnId, PatternId};

/// A chip model with per-tile (MAT) column translation (§6.3).
///
/// The chip's 8-byte word is split across `tiles` tiles; tile `t` carries
/// `8 / tiles` bytes and owns its own CTL whose ID is the tile index, so
/// a single READ can select a different column per tile.
#[derive(Debug, Clone)]
pub struct IntraChipCtl {
    tiles: usize,
    ctls: Vec<ColumnTranslationLogic>,
}

impl IntraChipCtl {
    /// Builds the per-tile translation logic for a chip.
    ///
    /// # Errors
    ///
    /// `tiles` must be a power of two in `{1, 2, 4, 8}` so each tile
    /// carries a whole number of bytes of the 8-byte chip word.
    pub fn new(tiles: usize, pattern_bits: u8) -> Result<Self, ConfigError> {
        if !tiles.is_power_of_two() || tiles > 8 || tiles == 0 {
            return Err(ConfigError::BadTileCount(tiles));
        }
        let ctls = (0..tiles as u8)
            .map(|t| ColumnTranslationLogic::new(ChipId(t), pattern_bits))
            .collect();
        Ok(IntraChipCtl { tiles, ctls })
    }

    /// Number of tiles.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Bytes each tile contributes to the chip's 8-byte word.
    pub fn bytes_per_tile(&self) -> usize {
        8 / self.tiles
    }

    /// The column each tile accesses for a `(pattern, col)` column
    /// command.
    pub fn tile_columns(&self, pattern: PatternId, col: ColumnId) -> Vec<ColumnId> {
        self.ctls
            .iter()
            .map(|c| c.translate(CommandKind::Read, pattern, col))
            .collect()
    }

    /// Assembles the chip's output word for a gather: byte-slice `t` of
    /// the word comes from tile `t`'s column. `row` maps a column to the
    /// 8-byte word stored there (the tile then supplies its byte share of
    /// that word).
    pub fn gather_word(
        &self,
        pattern: PatternId,
        col: ColumnId,
        row: impl Fn(ColumnId) -> u64,
    ) -> u64 {
        let bpt = self.bytes_per_tile();
        let mut out = 0u64;
        for (t, tile_col) in self.tile_columns(pattern, col).iter().enumerate() {
            let word = row(*tile_col);
            let shift = (t * bpt * 8) as u32;
            let mask = if bpt == 8 {
                u64::MAX
            } else {
                ((1u64 << (bpt * 8)) - 1) << shift
            };
            out |= word & mask;
        }
        out
    }
}

/// ECC support for GS-DRAM (§6.3): with an ECC chip whose tiles support
/// intra-chip translation, a non-zero-pattern access gathers the ECC
/// bytes of all `chips` data lines it touches in one access.
///
/// This helper computes which ECC columns the ECC chip's tiles must read
/// for a gather, and verifies they cover the data lines' ECC exactly.
#[derive(Debug, Clone)]
pub struct EccGather {
    intra: IntraChipCtl,
}

impl EccGather {
    /// ECC layout for a module with `chips` data chips (one ECC byte per
    /// data line per chip-column, stored column-aligned in the ECC chip).
    ///
    /// # Errors
    ///
    /// Propagates [`IntraChipCtl::new`] validation (`chips` must be a
    /// power of two ≤ 8).
    pub fn new(chips: usize, pattern_bits: u8) -> Result<Self, ConfigError> {
        Ok(EccGather {
            intra: IntraChipCtl::new(chips, pattern_bits)?,
        })
    }

    /// The ECC-chip columns gathered for a `(pattern, col)` access: tile
    /// `t` fetches the ECC byte of the data line chip `t` reads.
    pub fn ecc_columns(&self, pattern: PatternId, col: ColumnId) -> Vec<ColumnId> {
        self.intra.tile_columns(pattern, col)
    }

    /// Whether a single ECC-chip access covers all data columns touched
    /// by the gather (true by construction; exposed for tests and the
    /// ablation harness).
    pub fn covers(&self, pattern: PatternId, col: ColumnId, data_cols: &[ColumnId]) -> bool {
        let mut mine = self.ecc_columns(pattern, col);
        let mut want = data_cols.to_vec();
        mine.sort_by_key(|c| c.0);
        want.sort_by_key(|c| c.0);
        mine == want
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctl::ctl_bank;
    use crate::GsDramConfig;

    #[test]
    fn tile_validation() {
        assert!(IntraChipCtl::new(0, 3).is_err());
        assert!(IntraChipCtl::new(3, 3).is_err());
        assert!(IntraChipCtl::new(16, 3).is_err());
        for t in [1, 2, 4, 8] {
            assert!(IntraChipCtl::new(t, 3).is_ok(), "{t}");
        }
    }

    #[test]
    fn sub_word_gather_granularity() {
        let intra = IntraChipCtl::new(8, 3).unwrap();
        assert_eq!(intra.bytes_per_tile(), 1);
        // Pattern 7: tile t reads column t (from col 0) — eight different
        // columns feed one chip word, i.e. 1-byte gather granularity.
        let cols = intra.tile_columns(PatternId(7), ColumnId(0));
        let want: Vec<ColumnId> = (0..8).map(ColumnId).collect();
        assert_eq!(cols, want);
    }

    #[test]
    fn gather_word_assembles_byte_slices() {
        let intra = IntraChipCtl::new(8, 3).unwrap();
        // Column c stores the word with every byte = c.
        let row = |c: ColumnId| {
            let b = c.0 as u64 & 0xff;
            b * 0x0101_0101_0101_0101
        };
        let w = intra.gather_word(PatternId(7), ColumnId(0), row);
        assert_eq!(w, 0x0706_0504_0302_0100);
        // Pattern 0 keeps the plain word.
        let w = intra.gather_word(PatternId(0), ColumnId(3), row);
        assert_eq!(w, row(ColumnId(3)));
    }

    #[test]
    fn ecc_gather_covers_all_data_columns() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        let ecc = EccGather::new(8, 3).unwrap();
        let ctls = ctl_bank(&cfg);
        for p in 0..8u8 {
            for c in 0..16u32 {
                let data_cols: Vec<ColumnId> = ctls
                    .iter()
                    .map(|ctl| ctl.translate(CommandKind::Read, PatternId(p), ColumnId(c)))
                    .collect();
                assert!(
                    ecc.covers(PatternId(p), ColumnId(c), &data_cols),
                    "pattern {p} col {c}"
                );
            }
        }
    }
}
