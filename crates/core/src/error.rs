//! Error types for GS-DRAM configuration and access validation.

use core::fmt;

/// Error constructing or validating a [`GsDramConfig`](crate::GsDramConfig)
/// or [`Geometry`](crate::Geometry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The chip count must be a power of two (the shuffle network and the
    /// ascending reassembly both rely on it).
    ChipsNotPowerOfTwo(usize),
    /// The chip count must be at least 2 for gathering to be meaningful.
    TooFewChips(usize),
    /// More shuffle stages than `log2(chips)` would swap words that do not
    /// exist.
    TooManyShuffleStages {
        /// Requested number of stages.
        stages: u8,
        /// Number of chips in the module.
        chips: usize,
    },
    /// Pattern IDs wider than 8 bits are not representable.
    PatternBitsTooWide(u8),
    /// Columns per row must be a power of two not smaller than
    /// `2^pattern_bits`, so column translation (an XOR of the low
    /// `pattern_bits` bits) never leaves the row.
    BadColumnsPerRow {
        /// Requested columns per row.
        cols: usize,
        /// Minimum legal value given the pattern width.
        min: usize,
    },
    /// A row count of zero makes the module empty.
    ZeroRows,
    /// Number of intra-chip tiles (MATs) must be a power of two dividing
    /// the 8-byte chip word (paper §6.3).
    BadTileCount(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ChipsNotPowerOfTwo(c) => {
                write!(f, "chip count {c} is not a power of two")
            }
            ConfigError::TooFewChips(c) => write!(f, "chip count {c} is less than 2"),
            ConfigError::TooManyShuffleStages { stages, chips } => write!(
                f,
                "{stages} shuffle stages exceed log2 of the {chips}-chip module"
            ),
            ConfigError::PatternBitsTooWide(p) => {
                write!(f, "pattern id width {p} exceeds 8 bits")
            }
            ConfigError::BadColumnsPerRow { cols, min } => write!(
                f,
                "columns per row {cols} must be a power of two and at least {min}"
            ),
            ConfigError::ZeroRows => write!(f, "row count must be nonzero"),
            ConfigError::BadTileCount(t) => {
                write!(f, "tile count {t} must be a power of two dividing 8")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Error performing a gather/scatter access on a
/// [`GsModule`](crate::GsModule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Row address beyond the module's row count.
    RowOutOfRange {
        /// Requested row.
        row: u32,
        /// Number of rows in the module.
        rows: usize,
    },
    /// Column address beyond the row's column count.
    ColumnOutOfRange {
        /// Requested column.
        col: u32,
        /// Columns per row.
        cols: usize,
    },
    /// Pattern ID does not fit the configured pattern width.
    PatternTooWide {
        /// Requested pattern.
        pattern: u8,
        /// Configured pattern width in bits.
        bits: u8,
    },
    /// A scatter supplied the wrong number of words (must equal chips).
    WrongLineLength {
        /// Words supplied.
        got: usize,
        /// Words expected (one per chip).
        expected: usize,
    },
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (module has {rows} rows)")
            }
            AccessError::ColumnOutOfRange { col, cols } => {
                write!(f, "column {col} out of range (row has {cols} columns)")
            }
            AccessError::PatternTooWide { pattern, bits } => {
                write!(f, "pattern {pattern} does not fit in {bits} bits")
            }
            AccessError::WrongLineLength { got, expected } => {
                write!(f, "line has {got} words, expected {expected}")
            }
        }
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningful_text() {
        let e = ConfigError::TooManyShuffleStages {
            stages: 4,
            chips: 8,
        };
        assert!(e.to_string().contains("4 shuffle stages"));
        let e = AccessError::PatternTooWide {
            pattern: 9,
            bits: 3,
        };
        assert!(e.to_string().contains("pattern 9"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<AccessError>();
    }
}
