//! Column-ID-based data shuffling (paper §3.2) and the programmable
//! shuffling functions of §6.1.
//!
//! The memory controller passes each cache line through an `s`-stage
//! butterfly-style swap network before it reaches the chips. Stage `k`
//! (0-indexed) swaps groups of `2^k` adjacent 8-byte words with their
//! neighbouring group whenever control bit `k` is set. The control bits
//! are derived from the line's column address by a *shuffling function*
//! `f`; the default takes the `s` least-significant column bits.
//!
//! Because stage `k` is exactly "XOR bit `k` of the word index", the whole
//! network maps the word at index `i` to chip `i XOR f(column)`. The
//! network is therefore its own inverse — the controller uses the same
//! hardware to unshuffle lines read back from the module (§3.6 charges
//! 3 cycles for it in GS-DRAM(8,3,3)).

use crate::{ColumnId, GsDramConfig};

/// A programmable shuffling function `f` mapping a column address to the
/// control input of the shuffle network's stages (paper §6.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleFn {
    /// No shuffling: every stage disabled. Data structures that never use
    /// non-zero patterns keep the trivial mapping (the `pattmalloc`
    /// shuffle flag cleared — §4.3).
    Identity,
    /// The default of §3.2: control bits are the `s` least-significant
    /// bits of the column address.
    LowBits,
    /// `LowBits` with a *shuffle mask* ANDed in, disabling selected
    /// stages (§6.1: "the shuffle mask 10 disables swapping of adjacent
    /// values").
    Masked {
        /// Bit `k` enables stage `k`.
        mask: u8,
    },
    /// XOR-fold of the column address: the control input is the XOR of
    /// consecutive `s`-bit groups of the column bits (§6.1 suggests
    /// "XOR of multiple sets of bits" after Frailong et al.'s
    /// XOR-schemes).
    XorFold {
        /// How many `s`-bit groups of the column address to fold.
        groups: u8,
    },
}

impl ShuffleFn {
    /// Computes the control input to the `stages` shuffle stages for a
    /// line at column `col`.
    ///
    /// ```
    /// use gsdram_core::{shuffle::ShuffleFn, ColumnId};
    /// assert_eq!(ShuffleFn::LowBits.control(ColumnId(6), 3), 6);
    /// assert_eq!(ShuffleFn::Identity.control(ColumnId(6), 3), 0);
    /// assert_eq!(ShuffleFn::Masked { mask: 0b10 }.control(ColumnId(3), 2), 0b10);
    /// ```
    pub fn control(&self, col: ColumnId, stages: u8) -> u8 {
        let low_mask = ((1u16 << stages) - 1) as u8;
        match self {
            ShuffleFn::Identity => 0,
            ShuffleFn::LowBits => (col.0 as u8) & low_mask,
            ShuffleFn::Masked { mask } => (col.0 as u8) & low_mask & mask,
            ShuffleFn::XorFold { groups } => {
                let mut acc = 0u8;
                for g in 0..*groups {
                    acc ^= (col.0 >> (g as u32 * stages as u32)) as u8 & low_mask;
                }
                acc
            }
        }
    }
}

/// Runs the `s`-stage shuffle network over a cache line in place.
///
/// `control` bit `k` enables stage `k`, which swaps adjacent groups of
/// `2^k` words (Figure 4). The network is an involution: applying it a
/// second time with the same control restores the original line.
///
/// This walks the stages literally, mirroring the hardware datapath; the
/// equivalent closed form is `out[i ^ control] = in[i]`.
///
/// # Panics
///
/// Panics if `line.len()` is not a power of two or `stages` exceeds
/// `log2(line.len())` — both are enforced earlier by
/// [`crate::GsDramConfig`] validation.
pub fn shuffle_line(line: &mut [u64], stages: u8, control: u8) {
    assert!(
        line.len().is_power_of_two(),
        "line length must be a power of two"
    );
    assert!(
        (stages as u32) <= line.len().trailing_zeros(),
        "more stages than log2(line length)"
    );
    for k in 0..stages {
        if control & (1 << k) != 0 {
            let half = 1usize << k;
            let mut i = 0;
            while i < line.len() {
                for j in 0..half {
                    line.swap(i + j, i + j + half);
                }
                i += 2 * half;
            }
        }
    }
}

/// The chip a word at in-line index `word` is routed to after shuffling
/// with the given `control`: `word XOR control`.
///
/// ```
/// use gsdram_core::shuffle::chip_of_word;
/// // Column 1 of Figure 6: adjacent values swapped.
/// assert_eq!(chip_of_word(0, 1), 1);
/// assert_eq!(chip_of_word(1, 1), 0);
/// ```
pub fn chip_of_word(word: usize, control: u8) -> usize {
    word ^ control as usize
}

/// Convenience: shuffles a line for a write to `col` under `cfg`,
/// honouring the per-data-structure shuffle flag (§4.3).
pub fn shuffle_for_column(cfg: &GsDramConfig, col: ColumnId, shuffled: bool, line: &mut [u64]) {
    if !shuffled {
        return;
    }
    let control = cfg.shuffle_fn().control(col, cfg.shuffle_stages());
    shuffle_line(line, cfg.shuffle_stages(), control);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_example_two_stage() {
        // Figure 4: input (v0 v1 v2 v3), column LSBs "0 1" shown with
        // stage 1 active: adjacent values swapped.
        let mut line = vec![0u64, 1, 2, 3];
        shuffle_line(&mut line, 2, 0b01);
        assert_eq!(line, vec![1, 0, 3, 2]);

        // Stage 2 alone: adjacent pairs swapped.
        let mut line = vec![0u64, 1, 2, 3];
        shuffle_line(&mut line, 2, 0b10);
        assert_eq!(line, vec![2, 3, 0, 1]);

        // Both stages (column id 3).
        let mut line = vec![0u64, 1, 2, 3];
        shuffle_line(&mut line, 2, 0b11);
        assert_eq!(line, vec![3, 2, 1, 0]);
    }

    #[test]
    fn figure6_mapping_of_first_four_tuples() {
        // Figure 6: tuple `t` (column id t) maps its field f to chip
        // f XOR (t mod 4). Check the shaded first-field placement:
        // 00 on chip 0, 10 on chip 1, 20 on chip 2, 30 on chip 3.
        for t in 0u8..4 {
            let mut line: Vec<u64> = (0..4).map(|f| (t as u64) * 10 + f).collect();
            shuffle_line(&mut line, 2, t & 0b11);
            let field0_chip = line.iter().position(|&v| v == (t as u64) * 10).unwrap();
            assert_eq!(field0_chip, t as usize);
        }
    }

    #[test]
    fn shuffle_is_involution() {
        for control in 0u8..8 {
            let original: Vec<u64> = (0..8).collect();
            let mut line = original.clone();
            shuffle_line(&mut line, 3, control);
            shuffle_line(&mut line, 3, control);
            assert_eq!(line, original, "control {control}");
        }
    }

    #[test]
    fn shuffle_equals_index_xor() {
        for control in 0u8..8 {
            let mut line: Vec<u64> = (0..8).collect();
            shuffle_line(&mut line, 3, control);
            for (pos, &v) in line.iter().enumerate() {
                assert_eq!(pos, chip_of_word(v as usize, control));
            }
        }
    }

    #[test]
    fn control_functions() {
        assert_eq!(ShuffleFn::LowBits.control(ColumnId(0b10110), 3), 0b110);
        assert_eq!(ShuffleFn::Identity.control(ColumnId(0b10110), 3), 0);
        assert_eq!(
            ShuffleFn::Masked { mask: 0b101 }.control(ColumnId(0b111), 3),
            0b101
        );
        // XorFold over two 3-bit groups of column 0b101_110.
        assert_eq!(
            ShuffleFn::XorFold { groups: 2 }.control(ColumnId(0b101_110), 3),
            0b101 ^ 0b110
        );
        // One group degenerates to LowBits.
        assert_eq!(
            ShuffleFn::XorFold { groups: 1 }.control(ColumnId(0b10110), 3),
            0b110
        );
    }

    #[test]
    fn shuffle_disabled_flag_is_honoured() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        let original: Vec<u64> = (100..108).collect();
        let mut line = original.clone();
        shuffle_for_column(&cfg, ColumnId(5), false, &mut line);
        assert_eq!(line, original);
        shuffle_for_column(&cfg, ColumnId(5), true, &mut line);
        assert_ne!(line, original);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line() {
        let mut line = vec![0u64; 6];
        shuffle_line(&mut line, 1, 1);
    }

    #[test]
    #[should_panic(expected = "more stages")]
    fn rejects_excess_stages() {
        let mut line = vec![0u64; 4];
        shuffle_line(&mut line, 3, 1);
    }
}
