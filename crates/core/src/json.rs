//! A minimal generic JSON value parser and writer.
//!
//! The [`stats`](crate::stats) module ships a JSON codec, but its
//! parser only reads the stats-tree schema (`{"name", "values",
//! "children"}`). Validating Chrome trace output, perf reports, and
//! pattern-spec files needs arbitrary JSON values, and the build is
//! fully self-contained (no serde offline), so this module provides a
//! small recursive-descent parser in the same hand-rolled style.
//!
//! The writer ([`Json::to_json_string`] / [`Json::to_json_pretty`])
//! exists for consumers that need *byte-stable* output to diff in CI —
//! `gsdram-lint --format json` and its committed waiver baseline.
//! Object members serialize in their source order, so a caller that
//! builds members from sorted keys gets deterministic bytes; the
//! writer never reorders.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON value (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer: a number with no
    /// fractional part in `[0, 2^53]` (JSON's interoperable integer
    /// range). Consumers that must stay float-free (the pattern-spec
    /// parser in `gsdram-patterns`, under lint rule D5) read numbers
    /// through this instead of [`Json::as_f64`].
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= MAX_EXACT && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace). Member order is preserved;
    /// build members sorted if the output must be byte-stable.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, for committed files that
    /// humans diff in review. No trailing newline; file writers append
    /// their own.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, members.len(), '{', '}', |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// Writes one delimited sequence, indenting each element when `indent`
/// is set.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut elem: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        elem(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

/// Writes `s` as a quoted JSON string with the standard escapes —
/// shared with the stats-tree exporter so every JSON the workspace
/// emits escapes identically.
pub fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a number: exact integers (within the 2^53 interoperable
/// range) without a fractional part, everything else via `f64`'s
/// shortest-round-trip display, and non-finite values as `null` (JSON
/// has no NaN/inf; schema-level encodings are the caller's business).
fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write;
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= MAX_EXACT {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Maximum container nesting the parser accepts. Recursive descent
/// burns one stack frame per `[`/`{`, so unbounded depth lets a
/// hostile document (e.g. a pattern-spec file of 100k open brackets)
/// overflow the stack instead of returning an error. Real inputs here
/// (stats trees, Chrome traces, perf reports, pattern specs) nest a
/// handful of levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let chunk =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                self.descend()?;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(Json::Arr(items));
                    }
                    if !items.is_empty() {
                        self.expect_byte(b',')?;
                    }
                    items.push(self.value()?);
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.descend()?;
                let mut members = Vec::new();
                loop {
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        self.depth -= 1;
                        return Ok(Json::Obj(members));
                    }
                    if !members.is_empty() {
                        self.expect_byte(b',')?;
                        self.skip_ws();
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect_byte(b':')?;
                    let v = self.value()?;
                    members.push((key, v));
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn descend(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.as_object().map(<[_]>::len), Some(4));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}junk").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn depth_is_bounded_not_stack_fatal() {
        // Shallow nesting (well past any real document) parses.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // Hostile depth is an error, not a stack overflow.
        let deep = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let objs = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&objs).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""é\t""#).unwrap();
        assert_eq!(v.as_str(), Some("é\t"));
    }

    #[test]
    fn writer_round_trips_through_the_parser() {
        let v = Json::Obj(vec![
            ("n".to_string(), Json::Num(42.0)),
            ("half".to_string(), Json::Num(0.5)),
            ("s".to_string(), Json::Str("a\"b\\c\nd\u{1}é".to_string())),
            (
                "arr".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Obj(vec![])]),
            ),
            ("empty".to_string(), Json::Arr(vec![])),
        ]);
        for text in [v.to_json_string(), v.to_json_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn writer_integers_have_no_fraction() {
        assert_eq!(Json::Num(7.0).to_json_string(), "7");
        assert_eq!(Json::Num(-3.0).to_json_string(), "-3");
        assert_eq!(Json::Num(2.5).to_json_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_json_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json_string(), "null");
    }

    #[test]
    fn writer_is_deterministic_and_order_preserving() {
        let v = Json::Obj(vec![
            ("b".to_string(), Json::Num(1.0)),
            ("a".to_string(), Json::Num(2.0)),
        ]);
        // Source order is preserved (the caller sorts when stability
        // across runs matters), and repeated serialization is
        // byte-identical.
        assert_eq!(v.to_json_string(), r#"{"b":1,"a":2}"#);
        assert_eq!(v.to_json_string(), v.to_json_string());
        assert_eq!(v.to_json_pretty(), "{\n  \"b\": 1,\n  \"a\": 2\n}");
    }
}
