//! # gsdram-core
//!
//! Functional model of **Gather-Scatter DRAM** (Seshadri et al.,
//! MICRO-48, 2015): a commodity-DRAM substrate that lets the memory
//! controller gather or scatter power-of-two strided access patterns
//! with a single column command.
//!
//! The substrate combines two mechanisms:
//!
//! * **Column-ID-based data shuffling** ([`shuffle`], paper §3.2): the
//!   memory controller permutes the 8-byte words of each cache line by
//!   a butterfly network controlled by the line's column address, so the
//!   words of any power-of-two stride land on distinct chips.
//! * **Pattern-ID-based column translation** ([`ctl`], paper §3.3): each
//!   chip computes its own column as `(chip_id & pattern_id) XOR
//!   column_id`, so one READ/WRITE touches a different column per chip.
//!
//! [`GsModule`] glues both into a functional module model; [`analysis`]
//! quantifies chip conflicts and reproduces the paper's Figure 7;
//! [`mat`] implements the §6.3 intra-chip (per-MAT) translation and ECC
//! extensions.
//!
//! ## Quickstart
//!
//! ```
//! use gsdram_core::{GsModule, GsDramConfig, Geometry, RowId, ColumnId, PatternId};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's evaluated GS-DRAM(8,3,3): 8 chips, 64-byte lines.
//! let cfg = GsDramConfig::gs_dram_8_3_3();
//! let geom = Geometry::ddr3_row(&cfg, 1)?;
//! let mut dram = GsModule::new(cfg, geom);
//!
//! // Store eight 8-field tuples, one per cache line (pattern 0).
//! for t in 0..8u64 {
//!     let tuple: Vec<u64> = (0..8).map(|f| t * 100 + f).collect();
//!     dram.write_line(RowId(0), ColumnId(t as u32), PatternId(0), true, &tuple)?;
//! }
//!
//! // One READ with pattern 7 (stride 8) gathers field 0 of all eight
//! // tuples into a single cache line.
//! let field0 = dram.read_line(RowId(0), ColumnId(0), PatternId(7), true)?;
//! assert_eq!(field0, vec![0, 100, 200, 300, 400, 500, 600, 700]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod cast;
mod config;
pub mod cost;
pub mod ctl;
pub mod ecc;
mod error;
mod ids;
pub mod json;
pub mod mat;
mod module;
pub mod plan;
pub mod port;
pub mod rng;
pub mod shuffle;
pub mod stats;
pub mod time;

pub use config::{Geometry, GsDramConfig};
pub use error::{AccessError, ConfigError};
pub use ids::{ChipId, ColumnId, PatternId, RowId};
pub use module::{
    column_containing, gather_slots, gathered_elements, gathered_elements_into, GatherSlot,
    GsModule,
};
