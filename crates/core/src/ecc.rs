//! ECC DIMM support for GS-DRAM (paper §6.3).
//!
//! An ECC DIMM adds a ninth chip carrying 8 check bits per 64-bit word
//! (Hamming SEC-DED). For pattern-0 accesses the ECC chip simply reads
//! the same column as the data chips. For a non-zero pattern, the eight
//! data words come from eight *different* columns — so their check
//! bytes live in eight different ECC-chip columns. §6.3's fix: give the
//! ECC chip intra-chip (per-tile) column translation and lay its check
//! bytes out with the same column-ID shuffle as the data, so tile `t`
//! runs the identical `(t & pattern) ⊕ column` math as data chip `t`
//! and every pattern remains ECC-protected in a single access.
//!
//! [`EccModule`] implements that end to end — including real SEC-DED
//! encode/decode, so injected single-bit faults are corrected and
//! double-bit faults detected under every access pattern.

use crate::error::AccessError;
use crate::{gather_slots, ColumnId, Geometry, GsDramConfig, GsModule, PatternId, RowId};

/// Outcome of decoding one 72-bit SEC-DED codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// Codeword clean.
    Clean(u64),
    /// One bit flipped; corrected transparently.
    Corrected(u64),
    /// Two bit errors detected (uncorrectable).
    DoubleError,
}

/// Number of check bits per 64-bit word (Hamming(72,64) SEC-DED).
pub const CHECK_BITS: u32 = 8;

/// Position of data bit `i` (0-based) within the 72-bit codeword,
/// skipping the power-of-two check-bit positions (1-based positions).
fn data_position(i: u32) -> u32 {
    // Codeword positions are 1..=72; positions 1,2,4,8,16,32,64 hold
    // check bits; everything else holds data bits in order.
    let mut pos: u32 = 1;
    let mut seen = 0;
    loop {
        if !pos.is_power_of_two() {
            if seen == i {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

/// Encodes `data` into its 8 check bits (7 Hamming + 1 overall parity).
pub fn encode(data: u64) -> u8 {
    let mut check: u8 = 0;
    // Hamming bits c0..c6 cover positions with the matching bit set.
    for c in 0..7u32 {
        let mask_bit = 1u32 << c;
        let mut parity = 0u64;
        for i in 0..64u32 {
            if data_position(i) & mask_bit != 0 {
                parity ^= (data >> i) & 1;
            }
        }
        check |= (parity as u8) << c;
    }
    // Overall parity over data + the 7 Hamming bits (for double-error
    // detection).
    let total = (data.count_ones() + (check & 0x7f).count_ones()) & 1;
    check |= (total as u8) << 7;
    check
}

/// Decodes a (data, check) pair, correcting single-bit data or check
/// errors and flagging double errors.
pub fn decode(data: u64, check: u8) -> Decode {
    // Hamming syndrome: recomputed check bits vs the stored ones.
    let syndrome = (encode(data) ^ check) & 0x7f;
    // Whole-codeword parity: a clean codeword is even by construction
    // (the stored parity bit completes it); odd means exactly one bit
    // of the 72 flipped.
    let odd = (data.count_ones() + check.count_ones()) & 1 == 1;
    match (syndrome, odd) {
        (0, false) => Decode::Clean(data),
        (0, true) => Decode::Corrected(data), // the parity bit itself flipped
        (_, false) => Decode::DoubleError,    // two flips cancel the parity
        (pos, true) => {
            let pos = pos as u32;
            if pos.is_power_of_two() {
                // A stored Hamming check bit was hit; data is intact.
                return Decode::Corrected(data);
            }
            for i in 0..64u32 {
                if data_position(i) == pos {
                    return Decode::Corrected(data ^ (1u64 << i));
                }
            }
            // Syndrome points past the codeword: miscorrection risk —
            // treat as uncorrectable.
            Decode::DoubleError
        }
    }
}

/// A GS-DRAM module with a ninth, intra-chip-translating ECC chip
/// (§6.3): every gather/scatter pattern carries SEC-DED protection.
///
/// ```
/// use gsdram_core::{ecc::EccModule, ColumnId, Geometry, GsDramConfig, PatternId, RowId};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = GsDramConfig::gs_dram_8_3_3();
/// let mut m = EccModule::new(cfg.clone(), Geometry::ddr3_row(&cfg, 1)?);
/// m.write_line(RowId(0), ColumnId(0), PatternId(0), true, &[1, 2, 3, 4, 5, 6, 7, 8])?;
/// // Flip a bit under the gathered view; the read corrects it.
/// m.inject_data_error(RowId(0), ColumnId(0), PatternId(7), true, 0, 1 << 5);
/// let line = m.read_line(RowId(0), ColumnId(0), PatternId(7), true)?;
/// assert!(line.is_usable());
/// assert_eq!(line.data[0], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EccModule {
    data: GsModule,
    /// Check bytes, stored in a shadow module with identical shuffle +
    /// CTL math: "chip" `t` of this module is tile `t` of the ECC chip.
    ecc: GsModule,
}

/// Result of a protected gather.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedLine {
    /// The (corrected) line in assembly order.
    pub data: Vec<u64>,
    /// Per-word decode outcome.
    pub outcomes: Vec<Decode>,
}

impl ProtectedLine {
    /// Whether every word decoded cleanly or was corrected.
    pub fn is_usable(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| !matches!(o, Decode::DoubleError))
    }
}

impl EccModule {
    /// A zeroed ECC module.
    pub fn new(cfg: GsDramConfig, geom: Geometry) -> Self {
        EccModule {
            data: GsModule::new(cfg.clone(), geom),
            ecc: GsModule::new(cfg, geom),
        }
    }

    /// The module's configuration.
    pub fn config(&self) -> &GsDramConfig {
        self.data.config()
    }

    /// Writes a line with any pattern, updating check bytes alongside.
    ///
    /// # Errors
    ///
    /// As [`GsModule::write_line`].
    pub fn write_line(
        &mut self,
        row: RowId,
        col: ColumnId,
        pattern: PatternId,
        shuffled: bool,
        line: &[u64],
    ) -> Result<(), AccessError> {
        self.data.write_line(row, col, pattern, shuffled, line)?;
        let checks: Vec<u64> = line.iter().map(|w| encode(*w) as u64).collect();
        self.ecc.write_line(row, col, pattern, shuffled, &checks)
    }

    /// Reads a line with any pattern, decoding each word against its
    /// gathered check byte.
    ///
    /// # Errors
    ///
    /// As [`GsModule::read_line`].
    pub fn read_line(
        &self,
        row: RowId,
        col: ColumnId,
        pattern: PatternId,
        shuffled: bool,
    ) -> Result<ProtectedLine, AccessError> {
        let data = self.data.read_line(row, col, pattern, shuffled)?;
        let checks = self.ecc.read_line(row, col, pattern, shuffled)?;
        let outcomes: Vec<Decode> = data
            .iter()
            .zip(&checks)
            .map(|(w, c)| decode(*w, *c as u8))
            .collect();
        let corrected = outcomes
            .iter()
            .zip(&data)
            .map(|(o, w)| match o {
                Decode::Clean(v) | Decode::Corrected(v) => *v,
                Decode::DoubleError => *w,
            })
            .collect();
        Ok(ProtectedLine {
            data: corrected,
            outcomes,
        })
    }

    /// Flips `bits` of the stored word backing the `word`-th slot of the
    /// `(pattern, col)` gather — fault injection for tests and the
    /// reliability harness.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn inject_data_error(
        &mut self,
        row: RowId,
        col: ColumnId,
        pattern: PatternId,
        shuffled: bool,
        word: usize,
        bits: u64,
    ) {
        let slots = gather_slots(self.data.config(), pattern, col, shuffled);
        let s = slots[word];
        let element = s.chip_col as usize * self.data.config().chips()
            + if shuffled {
                (s.chip
                    ^ self
                        .data
                        .config()
                        .shuffle_fn()
                        .control(ColumnId(s.chip_col), self.data.config().shuffle_stages()))
                    as usize
            } else {
                s.chip as usize
            };
        let v = self
            .data
            .read_element(row, element, shuffled)
            // gsdram-lint: allow(D4) element < chips * cols by the modulo arithmetic above
            .expect("in range");
        self.data
            .write_element(row, element, shuffled, v ^ bits)
            // gsdram-lint: allow(D4) same element just read successfully on this row
            .expect("in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_clean() {
        for data in [0u64, u64::MAX, 0xdead_beef_cafe_f00d, 1, 1 << 63] {
            assert_eq!(decode(data, encode(data)), Decode::Clean(data));
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        let data = 0x0123_4567_89ab_cdef_u64;
        let check = encode(data);
        for bit in 0..64 {
            let corrupted = data ^ (1u64 << bit);
            assert_eq!(
                decode(corrupted, check),
                Decode::Corrected(data),
                "bit {bit}"
            );
        }
        // Check-bit flips are also tolerated.
        for bit in 0..8 {
            let d = decode(data, check ^ (1 << bit));
            assert_eq!(d, Decode::Corrected(data), "check bit {bit}");
        }
    }

    #[test]
    fn detects_double_bit_flips() {
        let data = 0x1122_3344_5566_7788_u64;
        let check = encode(data);
        let mut detected = 0;
        let mut total = 0;
        for b1 in 0..64 {
            for b2 in (b1 + 1)..64.min(b1 + 9) {
                let corrupted = data ^ (1u64 << b1) ^ (1u64 << b2);
                total += 1;
                if decode(corrupted, check) == Decode::DoubleError {
                    detected += 1;
                }
            }
        }
        assert_eq!(detected, total, "SEC-DED must flag all double errors");
    }

    fn module() -> EccModule {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        let geom = Geometry::new(&cfg, 1, 16).unwrap();
        let mut m = EccModule::new(cfg, geom);
        for col in 0..16u32 {
            let line: Vec<u64> = (0..8).map(|w| col as u64 * 100 + w).collect();
            m.write_line(RowId(0), ColumnId(col), PatternId(0), true, &line)
                .unwrap();
        }
        m
    }

    #[test]
    fn clean_gathers_are_protected_under_every_pattern() {
        let m = module();
        for p in 0..8u8 {
            for c in 0..16u32 {
                let line = m
                    .read_line(RowId(0), ColumnId(c), PatternId(p), true)
                    .unwrap();
                assert!(line.is_usable(), "pattern {p} col {c}");
                assert!(line.outcomes.iter().all(|o| matches!(o, Decode::Clean(_))));
            }
        }
    }

    #[test]
    fn single_fault_corrected_in_a_gather() {
        let mut m = module();
        // Flip one bit under word 3 of the (pattern 7, col 0) gather.
        m.inject_data_error(RowId(0), ColumnId(0), PatternId(7), true, 3, 1 << 17);
        let line = m
            .read_line(RowId(0), ColumnId(0), PatternId(7), true)
            .unwrap();
        assert!(line.is_usable());
        assert!(matches!(line.outcomes[3], Decode::Corrected(_)));
        // The corrected value equals the pattern-0 ground truth.
        let want: Vec<u64> = (0..8).map(|t| t * 100).collect();
        assert_eq!(line.data, want);
    }

    #[test]
    fn double_fault_detected_in_a_gather() {
        let mut m = module();
        m.inject_data_error(RowId(0), ColumnId(2), PatternId(3), true, 5, 0b11);
        let line = m
            .read_line(RowId(0), ColumnId(2), PatternId(3), true)
            .unwrap();
        assert!(!line.is_usable());
        assert_eq!(line.outcomes[5], Decode::DoubleError);
        // The other seven words are untouched.
        assert!(
            line.outcomes
                .iter()
                .filter(|o| matches!(o, Decode::Clean(_)))
                .count()
                == 7
        );
    }

    #[test]
    fn pattern_scatter_updates_check_bytes() {
        let mut m = module();
        m.write_line(
            RowId(0),
            ColumnId(0),
            PatternId(7),
            true,
            &[9, 8, 7, 6, 5, 4, 3, 2],
        )
        .unwrap();
        // Both the scattered view and the tuple view verify cleanly.
        let gathered = m
            .read_line(RowId(0), ColumnId(0), PatternId(7), true)
            .unwrap();
        assert_eq!(gathered.data, vec![9, 8, 7, 6, 5, 4, 3, 2]);
        assert!(gathered.is_usable());
        for c in 0..8u32 {
            let tuple = m
                .read_line(RowId(0), ColumnId(c), PatternId(0), true)
                .unwrap();
            assert!(tuple.is_usable(), "tuple {c}");
        }
    }
}
