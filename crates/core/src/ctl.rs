//! Pattern-ID-based column translation logic (CTL) — paper §3.3, Figure 5.
//!
//! Each DRAM chip (or, equivalently, the module-side buffer in front of
//! it) carries a tiny piece of logic: a `p`-bit chip-ID register, a
//! bitwise AND, a bitwise XOR, and a multiplexer that engages the
//! translation only for column commands (READ/WRITE). On a column command
//! carrying pattern ID `P` and column address `C`, chip `i` accesses
//! column `(i AND P) XOR C` instead of `C`.
//!
//! With the §6.2 *wide pattern ID* extension, the chip-ID register holds
//! the physical chip ID bit-replicated up to the pattern width, letting a
//! `p > log2(c)`-bit pattern express larger strides.

use crate::{ChipId, ColumnId, GsDramConfig, PatternId};

/// The kind of DRAM command presented to the CTL multiplexer. Only column
/// commands (READ/WRITE) engage translation (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// A column read — translation applies.
    Read,
    /// A column write — translation applies.
    Write,
    /// Row activation — address passes through untranslated.
    Activate,
    /// Bank precharge — address passes through untranslated.
    Precharge,
    /// Refresh — address passes through untranslated.
    Refresh,
}

impl CommandKind {
    /// Whether this is a column command (READ or WRITE).
    pub fn is_column_command(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }
}

/// Column translation logic instance for one chip.
///
/// ```
/// use gsdram_core::{ctl::{ColumnTranslationLogic, CommandKind}, ChipId, ColumnId, PatternId};
/// let ctl = ColumnTranslationLogic::new(ChipId(3), 3);
/// // §3.4: READ col 0, pattern 3 → chip i reads column i.
/// assert_eq!(
///     ctl.translate(CommandKind::Read, PatternId(3), ColumnId(0)),
///     ColumnId(3)
/// );
/// // Pattern 0 is the default read: every chip uses the issued column.
/// assert_eq!(
///     ctl.translate(CommandKind::Read, PatternId(0), ColumnId(2)),
///     ColumnId(2)
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnTranslationLogic {
    chip: ChipId,
    /// The chip-ID register contents: the physical chip ID, bit-replicated
    /// to the pattern width (§6.2).
    wide_chip_id: u8,
}

impl ColumnTranslationLogic {
    /// Builds the CTL for `chip` with the chip-ID register holding the
    /// plain physical chip ID (the base mechanism of §3.3).
    pub fn new(chip: ChipId, _pattern_bits: u8) -> Self {
        ColumnTranslationLogic {
            chip,
            wide_chip_id: chip.0,
        }
    }

    /// Builds the CTL with the §6.2 *wide pattern ID* extension: the
    /// `chip_bits`-wide physical chip ID is bit-replicated to fill
    /// `pattern_bits` bits (chip 3 of an 8-chip rank with 6-bit patterns
    /// holds `011-011`).
    pub fn with_wide_id(chip: ChipId, chip_bits: u8, pattern_bits: u8) -> Self {
        ColumnTranslationLogic {
            chip,
            wide_chip_id: replicate_wide(chip.0, chip_bits, pattern_bits),
        }
    }

    /// Builds the CTL for `chip` using only the physical chip-ID bits
    /// (the base mechanism of §3.3, no §6.2 widening). With this variant
    /// a pattern wider than `log2(chips)` bits is silently truncated by
    /// the AND — exactly the limitation §6.2 describes.
    pub fn without_wide_id(chip: ChipId, chip_bits: u8) -> Self {
        ColumnTranslationLogic {
            chip,
            wide_chip_id: chip.0 & (((1u16 << chip_bits) - 1) as u8),
        }
    }

    /// The chip this CTL serves.
    pub fn chip(&self) -> ChipId {
        self.chip
    }

    /// The contents of the chip-ID register.
    pub fn chip_id_register(&self) -> u8 {
        self.wide_chip_id
    }

    /// The translated column address: `(chip_id & pattern) ^ column` for
    /// column commands, the unmodified column otherwise (the Figure 5
    /// multiplexer).
    pub fn translate(&self, cmd: CommandKind, pattern: PatternId, col: ColumnId) -> ColumnId {
        if !cmd.is_column_command() {
            return col;
        }
        ColumnId(((self.wide_chip_id & pattern.0) as u32) ^ col.0)
    }
}

/// Builds one CTL per chip of a module (the CTL-0..CTL-3 boxes of
/// Figure 6). When the configured pattern width exceeds the chip-ID
/// width, the §6.2 wide-pattern-ID replication is applied.
pub fn ctl_bank(cfg: &GsDramConfig) -> Vec<ColumnTranslationLogic> {
    (0..cfg.chips() as u8)
        .map(|i| ctl_for(cfg, ChipId(i)))
        .collect()
}

/// The CTL instance for one chip of a module — [`ctl_bank`] without the
/// allocation, for callers that iterate chips themselves.
pub fn ctl_for(cfg: &GsDramConfig, chip: ChipId) -> ColumnTranslationLogic {
    if cfg.pattern_bits() > cfg.chip_bits() {
        ColumnTranslationLogic::with_wide_id(chip, cfg.chip_bits(), cfg.pattern_bits())
    } else {
        ColumnTranslationLogic::without_wide_id(chip, cfg.chip_bits())
    }
}

/// Replicates a `chip_bits`-wide chip ID to `pattern_bits` bits (§6.2).
pub fn replicate_wide(chip: u8, chip_bits: u8, pattern_bits: u8) -> u8 {
    let mut out: u16 = 0;
    let mut shift = 0;
    while shift < pattern_bits {
        out |= (chip as u16) << shift;
        shift += chip_bits;
    }
    (out & ((1u16 << pattern_bits) - 1)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_default_pattern_reads_one_tuple() {
        // §3.4: READ col 2, pattern 0 → all chips return column 2.
        for i in 0..4u8 {
            let ctl = ColumnTranslationLogic::new(ChipId(i), 2);
            assert_eq!(
                ctl.translate(CommandKind::Read, PatternId(0), ColumnId(2)),
                ColumnId(2)
            );
        }
    }

    #[test]
    fn figure6_pattern3_reads_one_column_per_chip() {
        // §3.4: READ col 0, pattern 3 → chips return columns (0 1 2 3).
        let cols: Vec<u32> = (0..4u8)
            .map(|i| {
                ColumnTranslationLogic::new(ChipId(i), 2)
                    .translate(CommandKind::Write, PatternId(3), ColumnId(0))
                    .0
            })
            .collect();
        assert_eq!(cols, vec![0, 1, 2, 3]);
    }

    #[test]
    fn non_column_commands_pass_through() {
        let ctl = ColumnTranslationLogic::new(ChipId(5), 3);
        for cmd in [
            CommandKind::Activate,
            CommandKind::Precharge,
            CommandKind::Refresh,
        ] {
            assert_eq!(
                ctl.translate(cmd, PatternId(7), ColumnId(9)),
                ColumnId(9),
                "{cmd:?} must not translate"
            );
        }
        assert!(CommandKind::Read.is_column_command());
        assert!(CommandKind::Write.is_column_command());
        assert!(!CommandKind::Activate.is_column_command());
    }

    #[test]
    fn wide_chip_id_replication_matches_section_6_2() {
        // "with 8 chips and a 6-bit pattern ID, the chip ID used by CTL
        // for chip 3 will be 011-011".
        assert_eq!(replicate_wide(3, 3, 6), 0b011_011);
        assert_eq!(replicate_wide(5, 3, 6), 0b101_101);
        // Truncation when the width is not a multiple of chip bits.
        assert_eq!(replicate_wide(3, 3, 4), 0b1011);
    }

    #[test]
    fn narrow_ctl_truncates_wide_patterns() {
        // §6.2: without widening, a small chip ID disables the high
        // pattern bits.
        let ctl = ColumnTranslationLogic::without_wide_id(ChipId(3), 3);
        let translated = ctl.translate(CommandKind::Read, PatternId(0b111_000), ColumnId(0));
        assert_eq!(translated, ColumnId(0), "high pattern bits ANDed away");
    }

    #[test]
    fn ctl_bank_builds_one_per_chip() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        let bank = ctl_bank(&cfg);
        assert_eq!(bank.len(), 8);
        for (i, ctl) in bank.iter().enumerate() {
            assert_eq!(ctl.chip(), ChipId(i as u8));
            assert_eq!(ctl.chip_id_register(), i as u8);
        }
        // Wide-pattern configuration replicates IDs.
        let cfg = GsDramConfig::new(8, 3, 6).unwrap();
        let bank = ctl_bank(&cfg);
        assert_eq!(bank[3].chip_id_register(), 0b011_011);
    }

    #[test]
    fn translation_is_an_involution_in_column() {
        // Applying the same (chip, pattern) modifier twice restores the
        // column: the XOR structure the write path relies on.
        let ctl = ColumnTranslationLogic::new(ChipId(6), 3);
        for col in 0..16u32 {
            let once = ctl.translate(CommandKind::Read, PatternId(5), ColumnId(col));
            let twice = ctl.translate(CommandKind::Read, PatternId(5), once);
            assert_eq!(twice, ColumnId(col));
        }
    }
}
