//! The time-skip engine: the one place simulated clocks are allowed to
//! move.
//!
//! Event-driven components do not tick; they expose the *exact* next
//! cycle at which their state can change (their **horizon**) and the
//! simulation leaps straight there. This module owns the two pieces of
//! that contract:
//!
//! * [`TimeFold`] — folds per-component horizons into the global "next
//!   interesting cycle" (a plain min over `u64` cycle counts, with
//!   "never" represented as absence rather than a sentinel);
//! * [`Horizon`] — a component-side cache of its own next-event bound,
//!   with explicit staleness so a component can memoise the bound its
//!   scheduling scan just computed and invalidate it on any state
//!   change.
//!
//! The contract a component's `next_event()` must satisfy (see
//! `docs/PERF.md`):
//!
//! 1. **Exactness downward**: no observable state change (command
//!    issue, completion, statistic, emitted event) may occur strictly
//!    before the reported cycle, absent new input.
//! 2. **Monotonicity**: as the component's observation time advances
//!    without new input, the reported cycle never moves earlier — so a
//!    cached bound stays a valid lower bound until invalidated.
//! 3. **Liveness**: advancing *to* the reported cycle makes progress
//!    (issues a command, fires a refresh, retires a request).
//!
//! Direct clock mutation (`now += 1`-style unit ticking) outside this
//! module is forbidden in simulation crates — `gsdram-lint` rule D7
//! enforces it.

/// Folds component horizons into the earliest "next interesting cycle".
///
/// The fold is a plain min; the value of an empty fold is `None`
/// ("nothing will ever happen without new input"), never a sentinel
/// cycle count, so callers cannot confuse idleness with cycle
/// `u64::MAX`.
///
/// ```
/// use gsdram_core::time::TimeFold;
/// let mut f = TimeFold::new();
/// assert_eq!(f.earliest(), None);
/// f.fold(70);
/// f.fold_opt(None); // an idle component contributes nothing
/// f.fold_opt(Some(40));
/// assert_eq!(f.earliest(), Some(40));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeFold {
    next: Option<u64>,
}

impl TimeFold {
    /// An empty fold: no component has reported a horizon yet.
    pub const fn new() -> Self {
        TimeFold { next: None }
    }

    /// Folds in a component whose state next changes at cycle `at`.
    pub fn fold(&mut self, at: u64) {
        self.next = Some(match self.next {
            Some(t) => t.min(at),
            None => at,
        });
    }

    /// Folds in a component horizon; `None` means the component is idle
    /// and contributes nothing.
    pub fn fold_opt(&mut self, at: Option<u64>) {
        if let Some(at) = at {
            self.fold(at);
        }
    }

    /// The earliest folded cycle, or `None` if every component was idle.
    pub fn earliest(&self) -> Option<u64> {
        self.next
    }

    /// The earliest folded cycle, or `idle` if every component was idle.
    pub fn earliest_or(&self, idle: u64) -> u64 {
        self.next.unwrap_or(idle)
    }
}

/// A component-side cache of its own next-event bound.
///
/// Three states, kept distinct so staleness is never conflated with
/// idleness:
///
/// * **stale** — the bound must be recomputed (any state change:
///   enqueue, command issue, refresh);
/// * **next at `t`** — no observable state change before cycle `t`;
/// * **idle** — nothing will ever happen without new input.
///
/// By the monotonicity leg of the time-skip contract, a non-stale bound
/// remains valid as observation time advances; only *state changes*
/// invalidate it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Horizon {
    /// The bound is unknown and must be recomputed.
    #[default]
    Stale,
    /// No observable state change strictly before this cycle.
    NextAt(u64),
    /// No observable state change ever, absent new input.
    Idle,
}

impl Horizon {
    /// Marks the bound stale (call on every state change).
    pub fn invalidate(&mut self) {
        *self = Horizon::Stale;
    }

    /// Records a freshly computed bound (`None` = idle).
    pub fn learn(&mut self, bound: Option<u64>) {
        *self = match bound {
            Some(t) => Horizon::NextAt(t),
            None => Horizon::Idle,
        };
    }

    /// The cached bound, or `None` if stale **or** idle — use
    /// [`Horizon::is_stale`] to tell the two apart.
    pub fn known(&self) -> Option<u64> {
        match *self {
            Horizon::NextAt(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the bound must be recomputed.
    pub fn is_stale(&self) -> bool {
        matches!(self, Horizon::Stale)
    }

    /// Whether the cache proves nothing observable happens up to and
    /// including cycle `to` — i.e. an advance to `to` may skip its
    /// scheduling scan entirely. Stale caches never permit a skip.
    pub fn skips(&self, to: u64) -> bool {
        match *self {
            Horizon::Stale => false,
            Horizon::NextAt(t) => to < t,
            Horizon::Idle => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_takes_the_minimum_and_ignores_idle() {
        let mut f = TimeFold::new();
        assert_eq!(f.earliest(), None);
        assert_eq!(f.earliest_or(99), 99);
        f.fold_opt(None);
        assert_eq!(f.earliest(), None, "idle components contribute nothing");
        f.fold(70);
        f.fold(40);
        f.fold(55);
        f.fold_opt(Some(41));
        assert_eq!(f.earliest(), Some(40));
        assert_eq!(f.earliest_or(99), 40);
    }

    #[test]
    fn horizon_states_are_distinct() {
        let mut h = Horizon::default();
        assert!(h.is_stale());
        assert_eq!(h.known(), None);
        assert!(!h.skips(0), "stale never permits a skip");

        h.learn(Some(10));
        assert!(!h.is_stale());
        assert_eq!(h.known(), Some(10));
        assert!(h.skips(9), "advance short of the bound skips");
        assert!(!h.skips(10), "advance to the bound must scan");

        h.learn(None);
        assert!(!h.is_stale());
        assert_eq!(h.known(), None);
        assert!(h.skips(u64::MAX), "idle skips everything");

        h.invalidate();
        assert!(h.is_stale());
        assert!(!h.skips(u64::MAX));
    }
}
