//! Hierarchical run statistics: a [`StatsNode`] tree behind the
//! [`ReportStats`] trait.
//!
//! Every component of the simulator (caches, memory controller, DBI,
//! prefetcher, energy meters, whole runs) reports its counters through
//! this one structure instead of ad-hoc structs + `println!`. A node
//! holds ordered named values (counters, gauges, texts) plus ordered
//! child nodes, so a whole-machine report is one tree that can be
//!
//! * rendered for humans ([`StatsNode::render`]),
//! * serialized to JSON ([`StatsNode::to_json`]) for machine-readable
//!   experiment output, and
//! * parsed back ([`StatsNode::from_json`]) and compared bit-for-bit
//!   (`PartialEq`), which is how the sweep runner proves parallel runs
//!   are identical to serial ones.
//!
//! The JSON codec is hand-rolled (the build is fully self-contained —
//! no serde available offline); the schema is documented in
//! `docs/STATS.md`. Ordering is part of a node's identity: two trees
//! are equal only if values and children appear in the same order,
//! which deterministic simulation guarantees.

use std::fmt::Write as _;

/// One named measurement inside a [`StatsNode`].
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// A monotonic integer count (events, cycles, bytes).
    Counter(u64),
    /// A derived floating-point measure (rates, joules, seconds).
    Gauge(f64),
    /// A configuration label or annotation.
    Text(String),
}

/// A named node of the statistics tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsNode {
    /// Node name (path segment).
    name: String,
    /// Ordered `(key, value)` pairs.
    values: Vec<(String, StatValue)>,
    /// Ordered child nodes.
    children: Vec<StatsNode>,
}

impl StatsNode {
    /// An empty node named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        StatsNode {
            name: name.into(),
            values: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered values of this node.
    pub fn values(&self) -> &[(String, StatValue)] {
        &self.values
    }

    /// Ordered children of this node.
    pub fn children(&self) -> &[StatsNode] {
        &self.children
    }

    /// Adds (or overwrites) an integer counter. Builder-style.
    pub fn counter(mut self, key: impl Into<String>, v: u64) -> Self {
        self.put(key.into(), StatValue::Counter(v));
        self
    }

    /// Adds (or overwrites) a floating-point gauge. Builder-style.
    pub fn gauge(mut self, key: impl Into<String>, v: f64) -> Self {
        self.put(key.into(), StatValue::Gauge(v));
        self
    }

    /// Adds (or overwrites) a text annotation. Builder-style.
    pub fn text(mut self, key: impl Into<String>, v: impl Into<String>) -> Self {
        self.put(key.into(), StatValue::Text(v.into()));
        self
    }

    /// Appends a child subtree. Builder-style.
    pub fn child(mut self, node: StatsNode) -> Self {
        self.children.push(node);
        self
    }

    /// Appends every node in `nodes` as a child. Builder-style.
    pub fn children_from(mut self, nodes: impl IntoIterator<Item = StatsNode>) -> Self {
        self.children.extend(nodes);
        self
    }

    fn put(&mut self, key: String, v: StatValue) {
        if let Some(slot) = self.values.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = v;
        } else {
            self.values.push((key, v));
        }
    }

    /// Looks up a value by slash-separated path relative to this node,
    /// e.g. `get("dram/reads")` on a run node.
    pub fn get(&self, path: &str) -> Option<&StatValue> {
        let (node, key) = match path.rsplit_once('/') {
            Some((dir, key)) => (self.descend(dir)?, key),
            None => (self, path),
        };
        node.values.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The child subtree at slash-separated `path` (`""` is this node).
    pub fn descend(&self, path: &str) -> Option<&StatsNode> {
        let mut node = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            node = node.children.iter().find(|c| c.name == seg)?;
        }
        Some(node)
    }

    /// Counter value at `path`, if present and a counter.
    pub fn counter_at(&self, path: &str) -> Option<u64> {
        match self.get(path)? {
            StatValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value at `path`, if present and a gauge.
    pub fn gauge_at(&self, path: &str) -> Option<f64> {
        match self.get(path)? {
            StatValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Text value at `path`, if present and text.
    pub fn text_at(&self, path: &str) -> Option<&str> {
        match self.get(path)? {
            StatValue::Text(v) => Some(v),
            _ => None,
        }
    }

    // ---------------------------------------------------------------
    // Human-readable rendering
    // ---------------------------------------------------------------

    /// An indented human-readable rendering of the tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}:", self.name);
        let vpad = "  ".repeat(depth + 1);
        for (k, v) in &self.values {
            match v {
                StatValue::Counter(c) => {
                    let _ = writeln!(out, "{vpad}{k:<24} {c}");
                }
                StatValue::Gauge(g) => {
                    let _ = writeln!(out, "{vpad}{k:<24} {g:.6}");
                }
                StatValue::Text(t) => {
                    let _ = writeln!(out, "{vpad}{k:<24} {t}");
                }
            }
        }
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    // ---------------------------------------------------------------
    // JSON
    // ---------------------------------------------------------------

    /// Compact single-line JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s, None, 0);
        s
    }

    /// Pretty-printed JSON (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s, Some(2), 0);
        s
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad2, sp) = match indent {
            Some(w) => (
                "\n".to_string(),
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                " ",
            ),
            None => (String::new(), String::new(), String::new(), ""),
        };
        let _ = write!(out, "{{{nl}{pad}\"name\":{sp}");
        write_json_string(out, &self.name);
        let _ = write!(out, ",{nl}{pad}\"values\":{sp}{{");
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{nl}{pad}{}", if indent.is_some() { "  " } else { "" });
            write_json_string(out, k);
            let _ = write!(out, ":{sp}");
            match v {
                StatValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                StatValue::Gauge(g) => write_json_gauge(out, *g),
                StatValue::Text(t) => write_json_string(out, t),
            }
        }
        if !self.values.is_empty() {
            let _ = write!(out, "{nl}{pad}");
        }
        let _ = write!(out, "}},{nl}{pad}\"children\":{sp}[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{nl}{pad}{}", if indent.is_some() { "  " } else { "" });
            c.write_json(out, indent, depth + 2);
        }
        if !self.children.is_empty() {
            let _ = write!(out, "{nl}{pad}");
        }
        let _ = write!(out, "]{nl}{pad2}}}");
    }

    /// Parses a tree serialized by [`StatsNode::to_json`] (or the pretty
    /// variant). Numbers with a fractional part, exponent, or the
    /// special texts `"NaN"`/`"inf"`/`"-inf"` parse as gauges; plain
    /// non-negative integers parse as counters.
    pub fn from_json(text: &str) -> Result<StatsNode, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let node = p.parse_node()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the tree"));
        }
        Ok(node)
    }
}

/// Types that expose their measurements as a [`StatsNode`] subtree.
///
/// The node name is chosen by the *caller* (`stats_node("l1")`), so one
/// struct can appear at several places in a tree (per-core caches,
/// per-channel controllers).
pub trait ReportStats {
    /// This component's statistics as a named subtree.
    fn stats_node(&self, name: &str) -> StatsNode;
}

fn write_json_string(out: &mut String, s: &str) {
    // One escaper for every JSON the workspace emits: the generic
    // value writer in `json` owns the escape table.
    crate::json::write_escaped(out, s);
}

/// Gauges always carry a `.`/`e` (or serialize as the special strings
/// below) so the parser can tell them apart from counters; Rust's `f64`
/// formatting is shortest-round-trip, so value identity is preserved.
fn write_json_gauge(out: &mut String, g: f64) {
    if g.is_nan() {
        out.push_str("\"NaN\"");
    } else if g == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if g == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        let s = format!("{g}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let chunk =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<StatValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                let s = self.parse_string()?;
                Ok(match s.as_str() {
                    "NaN" => StatValue::Gauge(f64::NAN),
                    "inf" => StatValue::Gauge(f64::INFINITY),
                    "-inf" => StatValue::Gauge(f64::NEG_INFINITY),
                    _ => StatValue::Text(s),
                })
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                let mut fractional = false;
                while let Some(b) = self.peek() {
                    match b {
                        b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                        b'.' | b'e' | b'E' => {
                            fractional = true;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid number"))?;
                if fractional || text.starts_with('-') {
                    text.parse::<f64>()
                        .map(StatValue::Gauge)
                        .map_err(|_| self.err("invalid number"))
                } else {
                    text.parse::<u64>()
                        .map(StatValue::Counter)
                        .map_err(|_| self.err("invalid counter"))
                }
            }
            _ => Err(self.err("expected a string or number value")),
        }
    }

    fn parse_node(&mut self) -> Result<StatsNode, JsonError> {
        self.skip_ws();
        self.expect_byte(b'{')?;
        let mut node = StatsNode::default();
        let mut first = true;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(node);
            }
            if !first {
                self.expect_byte(b',')?;
                self.skip_ws();
            }
            first = false;
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            match key.as_str() {
                "name" => node.name = self.parse_string()?,
                "values" => {
                    self.expect_byte(b'{')?;
                    let mut vfirst = true;
                    loop {
                        self.skip_ws();
                        if self.peek() == Some(b'}') {
                            self.pos += 1;
                            break;
                        }
                        if !vfirst {
                            self.expect_byte(b',')?;
                            self.skip_ws();
                        }
                        vfirst = false;
                        let k = self.parse_string()?;
                        self.skip_ws();
                        self.expect_byte(b':')?;
                        let v = self.parse_value()?;
                        node.values.push((k, v));
                    }
                }
                "children" => {
                    self.expect_byte(b'[')?;
                    let mut cfirst = true;
                    loop {
                        self.skip_ws();
                        if self.peek() == Some(b']') {
                            self.pos += 1;
                            break;
                        }
                        if !cfirst {
                            self.expect_byte(b',')?;
                        }
                        cfirst = false;
                        node.children.push(self.parse_node()?);
                    }
                }
                _ => return Err(self.err("unknown node field")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsNode {
        StatsNode::new("run")
            .counter("cycles", 123_456)
            .gauge("seconds", 0.25)
            .text("label", "GS-DRAM \"gather\"\npath")
            .child(
                StatsNode::new("dram")
                    .counter("reads", 8)
                    .counter("writes", 0)
                    .gauge("row_hit_rate", 0.875),
            )
            .child(StatsNode::new("l1").counter("hits", 7).counter("misses", 1))
    }

    #[test]
    fn builder_and_lookup() {
        let n = sample();
        assert_eq!(n.counter_at("cycles"), Some(123_456));
        assert_eq!(n.counter_at("dram/reads"), Some(8));
        assert_eq!(n.gauge_at("dram/row_hit_rate"), Some(0.875));
        assert_eq!(n.counter_at("l1/hits"), Some(7));
        assert!(n.get("nope/xyz").is_none());
        assert_eq!(n.descend("dram").unwrap().name(), "dram");
    }

    #[test]
    fn overwrite_keeps_one_entry() {
        let n = StatsNode::new("x").counter("a", 1).counter("a", 2);
        assert_eq!(n.values().len(), 1);
        assert_eq!(n.counter_at("a"), Some(2));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let n = sample();
        for text in [n.to_json(), n.to_json_pretty()] {
            let back = StatsNode::from_json(&text).expect("parses");
            assert_eq!(back, n);
        }
    }

    #[test]
    fn json_round_trips_awkward_gauges() {
        let n = StatsNode::new("g")
            .gauge("whole", 2.0)
            .gauge("tiny", 1.25e-17)
            .gauge("neg", -0.5)
            .gauge("nan", f64::NAN)
            .gauge("inf", f64::INFINITY);
        let back = StatsNode::from_json(&n.to_json()).expect("parses");
        assert_eq!(back.gauge_at("whole"), Some(2.0));
        assert_eq!(back.gauge_at("tiny"), Some(1.25e-17));
        assert_eq!(back.gauge_at("neg"), Some(-0.5));
        assert!(back.gauge_at("nan").unwrap().is_nan());
        assert_eq!(back.gauge_at("inf"), Some(f64::INFINITY));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(StatsNode::from_json("").is_err());
        assert!(StatsNode::from_json("{\"name\":\"x\"} trailing").is_err());
        assert!(StatsNode::from_json("{\"bogus\":1}").is_err());
    }

    #[test]
    fn render_mentions_all_values() {
        let text = sample().render();
        for needle in ["run:", "cycles", "dram:", "row_hit_rate", "l1:", "hits"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
