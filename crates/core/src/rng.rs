//! A tiny deterministic pseudo-random generator (SplitMix64).
//!
//! The workspace builds without external crates, so workloads and the
//! deterministic property tests share this generator instead of `rand`.
//! Identical seeds produce identical streams on every platform, which
//! is what makes whole-machine runs — and therefore parallel sweeps —
//! bit-reproducible.

/// A splittable xorshift-style generator (SplitMix64). The public field
/// is the current state; construct with a seed: `SplitMix(42)`.
#[derive(Debug, Clone)]
pub struct SplitMix(pub u64);

impl SplitMix {
    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` of zero yields zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// A value in `lo..hi` (empty ranges yield `lo`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo))
    }

    /// A signed value in `lo..hi` (empty ranges yield `lo`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo).max(0) as u64) as i64
    }

    /// A pseudo-random boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `n` pseudo-random words.
    pub fn words(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = SplitMix(42);
        let mut b = SplitMix(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix(1);
        for _ in 0..100 {
            assert!(c.below(10) < 10);
            let r = c.range(5, 9);
            assert!((5..9).contains(&r));
            let s = c.range_i64(-4, 4);
            assert!((-4..4).contains(&s));
        }
        assert_eq!(SplitMix(7).words(5).len(), 5);
    }
}
