//! Analysis utilities: chip-conflict counting (the Challenge-1 metric of
//! §3.1) and the Figure 7 pattern table.

use crate::{gathered_elements, ColumnId, GsDramConfig, PatternId};

/// How a data structure's words are distributed across chips — the
/// mapping schemes §3.2 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingScheme {
    /// The baseline of §2: word `i` of every cache line goes to chip `i`.
    Naive,
    /// The column-ID-based shuffle of §3.2 (with the configured shuffle
    /// function).
    Shuffled,
}

/// Counts chip conflicts when gathering `want` logical elements of a row:
/// the number of extra READ commands needed beyond the first, i.e.
/// `(max elements mapped to one chip) − 1` (§3.1: each chip supplies one
/// word per READ).
///
/// ```
/// use gsdram_core::{analysis::{chip_conflicts, MappingScheme}, GsDramConfig};
/// let cfg = GsDramConfig::gs_dram_4_2_2();
/// // First field of four tuples: elements 0,4,8,12.
/// let want = [0, 4, 8, 12];
/// // Naive mapping puts all four on chip 0 → 3 extra READs (Figure 3).
/// assert_eq!(chip_conflicts(&cfg, MappingScheme::Naive, &want), 3);
/// // The §3.2 shuffle spreads them across chips → zero conflicts.
/// assert_eq!(chip_conflicts(&cfg, MappingScheme::Shuffled, &want), 0);
/// ```
pub fn chip_conflicts(cfg: &GsDramConfig, scheme: MappingScheme, elements: &[usize]) -> usize {
    let mut per_chip = vec![0usize; cfg.chips()];
    for &e in elements {
        let col = ColumnId((e / cfg.chips()) as u32);
        let word = e % cfg.chips();
        let chip = match scheme {
            MappingScheme::Naive => word,
            MappingScheme::Shuffled => {
                word ^ cfg.shuffle_fn().control(col, cfg.shuffle_stages()) as usize
            }
        };
        per_chip[chip] += 1;
    }
    per_chip
        .iter()
        .max()
        .copied()
        .unwrap_or(0)
        .saturating_sub(1)
}

/// Number of READ commands required to gather one cache line's worth of a
/// power-of-two stride from a row: `1 + chip_conflicts`.
pub fn reads_for_stride(cfg: &GsDramConfig, scheme: MappingScheme, stride: usize) -> usize {
    let elements: Vec<usize> = (0..cfg.chips()).map(|i| i * stride).collect();
    1 + chip_conflicts(cfg, scheme, &elements)
}

/// One row of the Figure 7 table: the elements gathered by `(pattern,
/// col)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternTableEntry {
    /// The pattern ID of this row.
    pub pattern: PatternId,
    /// The issued column ID.
    pub col: ColumnId,
    /// Elements retrieved, in assembly order.
    pub elements: Vec<usize>,
}

/// Reproduces Figure 7: for every pattern and the first `cols` column
/// IDs, the gathered element indices.
pub fn pattern_table(cfg: &GsDramConfig, cols: u32) -> Vec<PatternTableEntry> {
    let mut out = Vec::new();
    for pattern in cfg.patterns() {
        for col in 0..cols {
            out.push(PatternTableEntry {
                pattern,
                col: ColumnId(col),
                elements: gathered_elements(cfg, pattern, ColumnId(col), true),
            });
        }
    }
    out
}

/// Human-readable stride description for a pattern (the "Stride = …"
/// labels of Figure 7): uniform `2^k` strides for patterns `2^k − 1`,
/// otherwise the observed sequence of gaps.
pub fn stride_label(cfg: &GsDramConfig, pattern: PatternId) -> String {
    if let Some(s) = pattern.stride() {
        return format!("stride {s}");
    }
    let e = gathered_elements(cfg, pattern, ColumnId(0), true);
    let mut gaps: Vec<usize> = Vec::new();
    for w in e.windows(2) {
        let g = w[1] - w[0];
        if !gaps.contains(&g) {
            gaps.push(g);
        }
    }
    let strs: Vec<String> = gaps.iter().map(|g| g.to_string()).collect();
    format!("stride {}", strs.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_mapping_conflicts_grow_with_stride() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        // Stride 1: no conflicts even naively.
        assert_eq!(reads_for_stride(&cfg, MappingScheme::Naive, 1), 1);
        // Stride 2 naive: elements 0,2,..,14 hit 4 distinct words twice each.
        assert_eq!(reads_for_stride(&cfg, MappingScheme::Naive, 2), 2);
        assert_eq!(reads_for_stride(&cfg, MappingScheme::Naive, 4), 4);
        // Stride 8 naive: all eight elements on chip 0 (Figure 3).
        assert_eq!(reads_for_stride(&cfg, MappingScheme::Naive, 8), 8);
    }

    #[test]
    fn shuffled_mapping_has_zero_conflicts_for_all_pow2_strides() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        for stride in [1, 2, 4, 8] {
            assert_eq!(
                reads_for_stride(&cfg, MappingScheme::Shuffled, stride),
                1,
                "stride {stride}"
            );
        }
    }

    #[test]
    fn shuffled_mapping_zero_conflicts_at_any_offset() {
        // Not just from element 0: any aligned strided group within the
        // row gathers conflict-free.
        let cfg = GsDramConfig::gs_dram_8_3_3();
        for stride in [2usize, 4, 8] {
            for start in 0..stride {
                let elements: Vec<usize> = (0..8).map(|i| start + i * stride).collect();
                assert_eq!(
                    chip_conflicts(&cfg, MappingScheme::Shuffled, &elements),
                    0,
                    "stride {stride} start {start}"
                );
            }
        }
    }

    #[test]
    fn pattern_table_matches_figure7_family() {
        // Figure 7 lists, per pattern, four disjoint 4-element sets
        // covering 0..16. Verify the family property for GS-DRAM(4,2,2).
        let cfg = GsDramConfig::gs_dram_4_2_2();
        for pattern in cfg.patterns() {
            let mut all: Vec<usize> = (0..4)
                .flat_map(|c| gathered_elements(&cfg, pattern, ColumnId(c), true))
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..16).collect::<Vec<_>>(), "{pattern}");
        }
    }

    #[test]
    fn stride_labels() {
        let cfg = GsDramConfig::gs_dram_4_2_2();
        assert_eq!(stride_label(&cfg, PatternId(0)), "stride 1");
        assert_eq!(stride_label(&cfg, PatternId(1)), "stride 2");
        assert_eq!(stride_label(&cfg, PatternId(3)), "stride 4");
        // Figure 7: "Pattern 2 has a dual stride of (1,7)".
        assert_eq!(stride_label(&cfg, PatternId(2)), "stride 1,7");
    }

    #[test]
    fn pair_patterns_fetch_field_pairs() {
        // §3.5 use cases beyond uniform strides. GS-DRAM(4,2,2),
        // pattern 1 on 16-byte key-value pairs: col 0 gathers the first
        // four keys, col 1 the first four values.
        let cfg = GsDramConfig::gs_dram_4_2_2();
        assert_eq!(
            gathered_elements(&cfg, PatternId(1), ColumnId(0), true),
            vec![0, 2, 4, 6],
            "keys (even elements)"
        );
        assert_eq!(
            gathered_elements(&cfg, PatternId(1), ColumnId(1), true),
            vec![1, 3, 5, 7],
            "values (odd elements)"
        );
        // Pattern 2: odd-even *pairs* of fields from 8-field objects
        // (each object = 2 lines of 4 words): fields {0,1} of objects
        // 0 and 1.
        assert_eq!(
            gathered_elements(&cfg, PatternId(2), ColumnId(0), true),
            vec![0, 1, 8, 9]
        );
        // The 8-chip analogues: pattern 2 pairs at stride 4; pattern 6
        // pairs at stride 8 (fields {0,1} of every other 8-field object).
        let cfg = GsDramConfig::gs_dram_8_3_3();
        assert_eq!(
            gathered_elements(&cfg, PatternId(2), ColumnId(0), true),
            vec![0, 1, 4, 5, 16, 17, 20, 21]
        );
        assert_eq!(
            gathered_elements(&cfg, PatternId(6), ColumnId(0), true),
            vec![0, 1, 16, 17, 32, 33, 48, 49]
        );
    }

    #[test]
    fn table_has_one_entry_per_pattern_column_pair() {
        let cfg = GsDramConfig::gs_dram_4_2_2();
        let t = pattern_table(&cfg, 4);
        assert_eq!(t.len(), 16);
        assert_eq!(t[0].elements, vec![0, 1, 2, 3]);
    }
}
