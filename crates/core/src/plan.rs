//! Access planning: choosing the cheapest sequence of `(pattern,
//! column)` commands for an arbitrary strided access.
//!
//! GS-DRAM natively gathers power-of-two strides (§3.5). The paper
//! notes that non-power-of-two strides "pose some additional challenges
//! (e.g., alignment)" but that "a similar approach can be used to
//! support non-power-of-2 strides as well" (§3.1) — concretely, the
//! memory controller (or a software library above `pattload`) can cover
//! an odd-stride access with a mix of patterns, each command returning
//! some useful and some dead words.
//!
//! [`plan_stride`] implements that as a greedy set-cover over one row's
//! elements: at each uncovered target element it picks the pattern
//! whose gathered line covers the most remaining targets. For
//! power-of-two strides within the pattern reach it degenerates to the
//! native single-pattern plan (100 % useful words); for other strides
//! it provably never does worse than the pattern-0 (cache-line)
//! baseline.

use crate::{gathered_elements, ColumnId, GsDramConfig, PatternId};

/// One planned column command and the useful words it returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedAccess {
    /// Pattern ID to issue.
    pub pattern: PatternId,
    /// Column ID to issue.
    pub col: ColumnId,
    /// Indices *within the gathered line* (0..chips) holding wanted
    /// elements, paired with the element they deliver.
    pub useful: Vec<(usize, usize)>,
}

/// Summary of a plan's efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStats {
    /// Column commands issued.
    pub commands: usize,
    /// Wanted elements delivered.
    pub useful_words: usize,
    /// Total words transferred (`commands × chips`).
    pub total_words: usize,
}

impl PlanStats {
    /// Fraction of transferred words that were wanted.
    // gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
    pub fn efficiency(&self) -> f64 {
        if self.total_words == 0 {
            0.0
        } else {
            self.useful_words as f64 / self.total_words as f64
        }
    }
}

/// Plans the commands to gather row elements `start, start + stride,
/// …` (`count` of them) from a single DRAM row.
///
/// ```
/// use gsdram_core::{plan::{plan_stride, plan_stats}, GsDramConfig};
/// let cfg = GsDramConfig::gs_dram_8_3_3();
/// // A native power-of-two stride plans to one command per 8 elements.
/// let p = plan_stride(&cfg, 128, 0, 8, 32);
/// assert_eq!(plan_stats(&cfg, &p).commands, 4);
/// // An odd stride still covers everything, mixing patterns.
/// let p = plan_stride(&cfg, 128, 0, 3, 32);
/// let covered: usize = p.iter().map(|a| a.useful.len()).sum();
/// assert_eq!(covered, 32);
/// ```
///
/// # Panics
///
/// Panics if any target element falls outside the row
/// (`cols_per_row × chips` elements).
pub fn plan_stride(
    cfg: &GsDramConfig,
    cols_per_row: usize,
    start: usize,
    stride: usize,
    count: usize,
) -> Vec<PlannedAccess> {
    let row_elements = cols_per_row * cfg.chips();
    let targets: Vec<usize> = (0..count).map(|i| start + i * stride).collect();
    assert!(
        targets.iter().all(|&e| e < row_elements),
        "targets must stay within one row"
    );
    let mut wanted = vec![false; row_elements];
    for &t in &targets {
        wanted[t] = true;
    }
    let mut remaining = targets.len();
    let mut plan = Vec::new();
    let mut cursor = 0usize;
    while remaining > 0 {
        // Next uncovered target.
        while !wanted[cursor] {
            cursor += 1;
        }
        // Pick the pattern covering the most remaining targets through
        // the line containing `cursor`.
        let mut best: Option<(usize, PlannedAccess)> = None;
        for pattern in cfg.patterns() {
            let col = crate::column_containing(cfg, pattern, cursor, true);
            let elements = gathered_elements(cfg, pattern, col, true);
            let useful: Vec<(usize, usize)> = elements
                .iter()
                .enumerate()
                .filter(|(_, e)| wanted[**e])
                .map(|(w, e)| (w, *e))
                .collect();
            let score = useful.len();
            let candidate = PlannedAccess {
                pattern,
                col,
                useful,
            };
            match &best {
                Some((s, _)) if *s >= score => {}
                _ => best = Some((score, candidate)),
            }
        }
        // gsdram-lint: allow(D4) pattern 0 (unit stride) always produces a candidate line
        let (_, access) = best.expect("at least pattern 0 exists");
        debug_assert!(
            !access.useful.is_empty(),
            "chosen line must cover the cursor"
        );
        for &(_, e) in &access.useful {
            wanted[e] = false;
            remaining -= 1;
        }
        plan.push(access);
    }
    plan
}

/// Statistics for a plan under the given configuration.
pub fn plan_stats(cfg: &GsDramConfig, plan: &[PlannedAccess]) -> PlanStats {
    PlanStats {
        commands: plan.len(),
        useful_words: plan.iter().map(|p| p.useful.len()).sum(),
        total_words: plan.len() * cfg.chips(),
    }
}

/// The pattern-0 baseline: commands needed to touch the same elements
/// with ordinary cache-line reads.
pub fn baseline_commands(cfg: &GsDramConfig, start: usize, stride: usize, count: usize) -> usize {
    let chips = cfg.chips();
    let mut lines: Vec<usize> = (0..count).map(|i| (start + i * stride) / chips).collect();
    lines.dedup();
    lines.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GsDramConfig {
        GsDramConfig::gs_dram_8_3_3()
    }

    fn covered(plan: &[PlannedAccess]) -> Vec<usize> {
        let mut e: Vec<usize> = plan
            .iter()
            .flat_map(|p| p.useful.iter().map(|u| u.1))
            .collect();
        e.sort_unstable();
        e
    }

    #[test]
    fn pow2_strides_use_one_command_per_line() {
        let cfg = cfg();
        for stride in [1usize, 2, 4, 8] {
            let plan = plan_stride(&cfg, 128, 0, stride, 64);
            let stats = plan_stats(&cfg, &plan);
            assert_eq!(stats.commands, 64 / 8, "stride {stride}");
            assert!((stats.efficiency() - 1.0).abs() < 1e-12, "stride {stride}");
            assert_eq!(
                covered(&plan),
                (0..64).map(|i| i * stride).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn plan_covers_exactly_the_targets() {
        let cfg = cfg();
        for (start, stride, count) in [(0, 3, 40), (5, 7, 30), (2, 12, 20), (1, 5, 50)] {
            let plan = plan_stride(&cfg, 128, start, stride, count);
            let want: Vec<usize> = (0..count).map(|i| start + i * stride).collect();
            assert_eq!(covered(&plan), want, "({start},{stride},{count})");
        }
    }

    #[test]
    fn odd_strides_beat_the_cache_line_baseline() {
        let cfg = cfg();
        for stride in [3usize, 5, 6, 7, 12] {
            let count = 64;
            let plan = plan_stride(&cfg, 128, 0, stride, count);
            let stats = plan_stats(&cfg, &plan);
            let base = baseline_commands(&cfg, 0, stride, count);
            assert!(
                stats.commands <= base,
                "stride {stride}: {} planned vs {} baseline",
                stats.commands,
                base
            );
        }
    }

    #[test]
    fn stride_3_mixes_patterns_profitably() {
        let cfg = cfg();
        let plan = plan_stride(&cfg, 128, 0, 3, 64);
        let stats = plan_stats(&cfg, &plan);
        let base = baseline_commands(&cfg, 0, 3, 64);
        assert!(stats.commands < base, "{} !< {base}", stats.commands);
        // Multiple distinct patterns appear in the plan.
        let mut pats: Vec<u8> = plan.iter().map(|p| p.pattern.0).collect();
        pats.sort_unstable();
        pats.dedup();
        assert!(pats.len() > 1, "plan uses {pats:?}");
    }

    #[test]
    fn misaligned_pow2_strides_still_plan_fully() {
        let cfg = cfg();
        // Start offset 3 with stride 8: the §3.1 alignment challenge.
        let plan = plan_stride(&cfg, 128, 3, 8, 32);
        let want: Vec<usize> = (0..32).map(|i| 3 + i * 8).collect();
        assert_eq!(covered(&plan), want);
        let stats = plan_stats(&cfg, &plan);
        assert_eq!(stats.commands, 4, "aligned-in-field stride 8 gathers fully");
        assert!((stats.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_stride_uses_default_lines() {
        let cfg = cfg();
        // Stride 128: one element per 16 lines — nothing gathers better
        // than pattern 0 (for a 3-bit pattern ID) but the plan must
        // still terminate and cover.
        let plan = plan_stride(&cfg, 128, 0, 128, 8);
        assert_eq!(covered(&plan), (0..8).map(|i| i * 128).collect::<Vec<_>>());
        assert_eq!(plan.len(), 8);
    }

    #[test]
    #[should_panic(expected = "within one row")]
    fn out_of_row_targets_rejected() {
        let cfg = cfg();
        plan_stride(&cfg, 128, 0, 64, 100);
    }

    #[test]
    fn stats_arithmetic() {
        let s = PlanStats {
            commands: 4,
            useful_words: 16,
            total_words: 32,
        };
        assert!((s.efficiency() - 0.5).abs() < 1e-12);
        let z = PlanStats {
            commands: 0,
            useful_words: 0,
            total_words: 0,
        };
        assert_eq!(z.efficiency(), 0.0);
    }
}
