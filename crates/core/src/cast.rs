//! Checked integer conversions for address- and cycle-carrying values.
//!
//! The address-translation hot spots (`dram::mapping`, the system
//! bridge, the pattern-tagged caches) move addresses between `u64`
//! byte addresses, `u32` row/column ids, and `usize` indices. A bare
//! `as` cast there silently truncates when a geometry outgrows a
//! field — exactly the kind of bug that only bites on a config nobody
//! diffed. Rule D3 of `gsdram-lint` bans bare `as` casts in those
//! files; these helpers are the sanctioned replacement.
//!
//! Every narrowing helper panics with a named-value message on
//! truncation (an address that does not fit its field is a modelling
//! error, never recoverable data), and every widening helper is a
//! plain lossless conversion that keeps call sites terse. All helpers
//! are `#[inline]` and `#[track_caller]`, so release builds keep the
//! check and panics point at the call site.

/// Narrows a `u64` (address/cycle value) to `u32`, panicking on
/// truncation.
///
/// ```
/// assert_eq!(gsdram_core::cast::to_u32(7), 7u32);
/// ```
#[inline]
#[track_caller]
pub fn to_u32(x: u64) -> u32 {
    match u32::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("value {x:#x} does not fit u32"),
    }
}

/// Narrows a `u64` (address/cycle value) to `usize`, panicking on
/// truncation (a no-op check on 64-bit targets).
#[inline]
#[track_caller]
pub fn to_usize(x: u64) -> usize {
    match usize::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("value {x:#x} does not fit usize"),
    }
}

/// Narrows a `usize` (index/length) to `u32`, panicking on truncation.
#[inline]
#[track_caller]
pub fn len_to_u32(x: usize) -> u32 {
    match u32::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("length {x} does not fit u32"),
    }
}

/// Widens a `usize` (index/length) to `u64`. Lossless on every target
/// this simulator supports (≤ 64-bit).
#[inline]
#[track_caller]
pub fn widen(x: usize) -> u64 {
    match u64::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("usize {x} does not fit u64"),
    }
}

/// Widens a `u32` (row/column id) to `usize`. Lossless on every
/// target this simulator supports (≥ 32-bit).
#[inline]
#[track_caller]
pub fn index(x: u32) -> usize {
    match usize::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("u32 {x} does not fit usize"),
    }
}

/// Reinterprets a `u64` byte address as a signed offset for stride
/// arithmetic, panicking if the address occupies the sign bit (the
/// simulator models memories far below 2^63 bytes).
#[inline]
#[track_caller]
pub fn signed(x: u64) -> i64 {
    match i64::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("address {x:#x} does not fit i64"),
    }
}

/// Converts a non-negative signed offset back to a `u64` address,
/// panicking when negative.
#[inline]
#[track_caller]
pub fn unsigned(x: i64) -> u64 {
    match u64::try_from(x) {
        Ok(v) => v,
        Err(_) => panic!("offset {x} is negative, not an address"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_round_trips() {
        assert_eq!(to_u32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(to_usize(12), 12usize);
        assert_eq!(len_to_u32(4096), 4096);
        assert_eq!(widen(usize::MAX), usize::MAX as u64);
        assert_eq!(index(7), 7usize);
        assert_eq!(signed(u64::from(u32::MAX)), i64::from(u32::MAX));
        assert_eq!(unsigned(42), 42);
    }

    #[test]
    #[should_panic(expected = "does not fit u32")]
    fn narrowing_panics_on_truncation() {
        to_u32(1 << 33);
    }

    #[test]
    #[should_panic(expected = "not an address")]
    fn negative_offsets_are_rejected() {
        unsigned(-1);
    }
}
