//! GS-DRAM module parameters: the `GS-DRAM(c,s,p)` notation of paper §3.5.

use crate::error::ConfigError;
use crate::shuffle::ShuffleFn;

/// Parameters of a GS-DRAM module: `GS-DRAM(c,s,p)` plus the programmable
/// shuffling function `f` of §6.1 (`GS-DRAM(c,s,p,f)`).
///
/// * `chips` — DRAM chips per rank; each contributes one 8-byte word per
///   column access, so the cache line is `8 × chips` bytes.
/// * `shuffle_stages` — stages of the column-ID-based data-shuffling
///   network in the memory controller (§3.2).
/// * `pattern_bits` — width of the pattern ID broadcast with each column
///   command (§3.3).
///
/// The paper's running example is GS-DRAM(4,2,2); its evaluation uses
/// GS-DRAM(8,3,3) (§3.6).
///
/// ```
/// use gsdram_core::GsDramConfig;
/// let cfg = GsDramConfig::gs_dram_8_3_3();
/// assert_eq!(cfg.chips(), 8);
/// assert_eq!(cfg.line_bytes(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GsDramConfig {
    chips: usize,
    shuffle_stages: u8,
    pattern_bits: u8,
    shuffle_fn: ShuffleFn,
}

impl GsDramConfig {
    /// Builds and validates a `GS-DRAM(c,s,p)` configuration with the
    /// default (low-column-bits) shuffle function.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `chips` is not a power of two ≥ 2, if
    /// `shuffle_stages > log2(chips)`, or if `pattern_bits > 8`.
    pub fn new(chips: usize, shuffle_stages: u8, pattern_bits: u8) -> Result<Self, ConfigError> {
        Self::with_shuffle_fn(chips, shuffle_stages, pattern_bits, ShuffleFn::LowBits)
    }

    /// Like [`GsDramConfig::new`] but with an explicit programmable
    /// shuffling function (§6.1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GsDramConfig::new`].
    pub fn with_shuffle_fn(
        chips: usize,
        shuffle_stages: u8,
        pattern_bits: u8,
        shuffle_fn: ShuffleFn,
    ) -> Result<Self, ConfigError> {
        if chips < 2 {
            return Err(ConfigError::TooFewChips(chips));
        }
        if !chips.is_power_of_two() {
            return Err(ConfigError::ChipsNotPowerOfTwo(chips));
        }
        let log_chips = chips.trailing_zeros() as u8;
        if shuffle_stages > log_chips {
            return Err(ConfigError::TooManyShuffleStages {
                stages: shuffle_stages,
                chips,
            });
        }
        if pattern_bits > 8 {
            return Err(ConfigError::PatternBitsTooWide(pattern_bits));
        }
        Ok(GsDramConfig {
            chips,
            shuffle_stages,
            pattern_bits,
            shuffle_fn,
        })
    }

    /// The paper's explanatory configuration: 4 chips, 2 shuffle stages,
    /// 2-bit pattern IDs (32-byte cache lines).
    pub fn gs_dram_4_2_2() -> Self {
        // gsdram-lint: allow(D4) constant parameters; validated by the config tests
        Self::new(4, 2, 2).expect("4,2,2 is a valid configuration")
    }

    /// The paper's evaluated configuration: 8 chips, 3 shuffle stages,
    /// 3-bit pattern IDs (64-byte cache lines) — §3.6, Table 1.
    pub fn gs_dram_8_3_3() -> Self {
        // gsdram-lint: allow(D4) constant parameters; validated by the config tests
        Self::new(8, 3, 3).expect("8,3,3 is a valid configuration")
    }

    /// Number of chips in the rank.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// `log2(chips)`: the number of chip-ID bits.
    pub fn chip_bits(&self) -> u8 {
        self.chips.trailing_zeros() as u8
    }

    /// Number of shuffle stages `s`.
    pub fn shuffle_stages(&self) -> u8 {
        self.shuffle_stages
    }

    /// Width of the pattern ID in bits `p`.
    pub fn pattern_bits(&self) -> u8 {
        self.pattern_bits
    }

    /// The programmable shuffle function `f` (§6.1).
    pub fn shuffle_fn(&self) -> &ShuffleFn {
        &self.shuffle_fn
    }

    /// Cache-line size in bytes: 8 bytes per chip.
    pub fn line_bytes(&self) -> usize {
        self.chips * 8
    }

    /// Largest pattern ID representable: `2^p − 1`.
    pub fn max_pattern(&self) -> u8 {
        ((1u16 << self.pattern_bits) - 1) as u8
    }

    /// All pattern IDs expressible with this configuration, in order.
    pub fn patterns(&self) -> impl Iterator<Item = crate::PatternId> {
        (0..=self.max_pattern()).map(crate::PatternId)
    }
}

impl Default for GsDramConfig {
    /// Defaults to the evaluated GS-DRAM(8,3,3) configuration.
    fn default() -> Self {
        Self::gs_dram_8_3_3()
    }
}

/// Geometry of the portion of a module modelled functionally: how many
/// rows per bank-slice and how many cache-line columns per row.
///
/// A DDR3 x8 chip supplies 1 KB per activated row, so an 8-chip rank row
/// is 8 KB = 128 cache lines; [`Geometry::ddr3_row`] captures that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    rows: usize,
    cols_per_row: usize,
}

impl Geometry {
    /// Builds and validates a geometry for the given configuration.
    ///
    /// # Errors
    ///
    /// `cols_per_row` must be a power of two at least `2^pattern_bits`
    /// (column translation XORs the low pattern bits of the column
    /// address, which must not escape the row); `rows` must be nonzero.
    pub fn new(cfg: &GsDramConfig, rows: usize, cols_per_row: usize) -> Result<Self, ConfigError> {
        let min = 1usize << cfg.pattern_bits();
        if !cols_per_row.is_power_of_two() || cols_per_row < min {
            return Err(ConfigError::BadColumnsPerRow {
                cols: cols_per_row,
                min,
            });
        }
        if rows == 0 {
            return Err(ConfigError::ZeroRows);
        }
        Ok(Geometry { rows, cols_per_row })
    }

    /// Standard DDR3 geometry: 128 cache-line columns per row (8 KB rows
    /// for an 8-chip rank), with the requested number of rows.
    ///
    /// # Errors
    ///
    /// Propagates [`Geometry::new`] validation.
    pub fn ddr3_row(cfg: &GsDramConfig, rows: usize) -> Result<Self, ConfigError> {
        Self::new(cfg, rows, 128)
    }

    /// Number of rows modelled.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cache-line columns per row.
    pub fn cols_per_row(&self) -> usize {
        self.cols_per_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        let c = GsDramConfig::gs_dram_4_2_2();
        assert_eq!((c.chips(), c.shuffle_stages(), c.pattern_bits()), (4, 2, 2));
        assert_eq!(c.line_bytes(), 32);
        assert_eq!(c.max_pattern(), 3);
        let c = GsDramConfig::gs_dram_8_3_3();
        assert_eq!((c.chips(), c.shuffle_stages(), c.pattern_bits()), (8, 3, 3));
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.max_pattern(), 7);
        assert_eq!(c.chip_bits(), 3);
    }

    #[test]
    fn rejects_bad_chip_counts() {
        assert!(matches!(
            GsDramConfig::new(3, 1, 1),
            Err(ConfigError::ChipsNotPowerOfTwo(3))
        ));
        assert!(matches!(
            GsDramConfig::new(1, 0, 0),
            Err(ConfigError::TooFewChips(1))
        ));
        assert!(matches!(
            GsDramConfig::new(0, 0, 0),
            Err(ConfigError::TooFewChips(0))
        ));
    }

    #[test]
    fn rejects_too_many_stages() {
        assert!(matches!(
            GsDramConfig::new(4, 3, 2),
            Err(ConfigError::TooManyShuffleStages {
                stages: 3,
                chips: 4
            })
        ));
        assert!(GsDramConfig::new(4, 2, 2).is_ok());
    }

    #[test]
    fn rejects_wide_pattern_bits() {
        assert!(matches!(
            GsDramConfig::new(8, 3, 9),
            Err(ConfigError::PatternBitsTooWide(9))
        ));
        // Wider-than-chip-bits patterns are allowed (§6.2 wide pattern IDs).
        assert!(GsDramConfig::new(8, 3, 6).is_ok());
    }

    #[test]
    fn geometry_validation() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        assert!(Geometry::new(&cfg, 4, 128).is_ok());
        assert!(matches!(
            Geometry::new(&cfg, 4, 100),
            Err(ConfigError::BadColumnsPerRow { cols: 100, .. })
        ));
        assert!(matches!(
            Geometry::new(&cfg, 4, 4),
            Err(ConfigError::BadColumnsPerRow { cols: 4, min: 8 })
        ));
        assert!(matches!(
            Geometry::new(&cfg, 0, 128),
            Err(ConfigError::ZeroRows)
        ));
        let g = Geometry::ddr3_row(&cfg, 16).unwrap();
        assert_eq!(g.cols_per_row(), 128);
        assert_eq!(g.rows(), 16);
    }

    #[test]
    fn patterns_iterator_is_exhaustive() {
        let cfg = GsDramConfig::gs_dram_4_2_2();
        let pats: Vec<_> = cfg.patterns().map(|p| p.0).collect();
        assert_eq!(pats, vec![0, 1, 2, 3]);
    }
}
