//! Strongly-typed identifiers for the GS-DRAM substrate.
//!
//! The paper manipulates four kinds of small integers — chip IDs, pattern
//! IDs, column addresses and row addresses — whose confusion would produce
//! silently wrong gathers. Each gets a newtype ([C-NEWTYPE]).

use core::fmt;

/// Identifier of a DRAM chip within a rank (0..chips).
///
/// Each chip contributes one 8-byte word to every cache-line access
/// (paper §2). The chip ID feeds the column translation logic (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipId(pub u8);

/// An access-pattern identifier broadcast with each column command (§3.3).
///
/// Pattern `0` is the *default pattern* (an ordinary contiguous cache-line
/// access). Pattern `2^k − 1` gathers elements with stride `2^k`
/// (paper §3.5, Figure 7).
///
/// ```
/// use gsdram_core::PatternId;
/// assert_eq!(PatternId::for_stride(8), Some(PatternId(7)));
/// assert_eq!(PatternId(7).stride(), Some(8));
/// assert_eq!(PatternId::DEFAULT.stride(), Some(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PatternId(pub u8);

impl PatternId {
    /// The default pattern: an ordinary contiguous cache-line access.
    pub const DEFAULT: PatternId = PatternId(0);

    /// Returns the pattern that gathers a power-of-two stride, i.e.
    /// `stride − 1` (paper §3.5: "pattern 2^k − 1 gathers data with a
    /// stride 2^k"). Returns `None` if `stride` is not a power of two.
    pub fn for_stride(stride: usize) -> Option<PatternId> {
        if stride.is_power_of_two() && stride <= 256 {
            Some(PatternId((stride - 1) as u8))
        } else {
            None
        }
    }

    /// The uniform stride this pattern gathers, if it is of the
    /// `2^k − 1` family; `None` for mixed-stride patterns such as
    /// pattern 2 of GS-DRAM(4,2,2), whose stride is (1,7) (Figure 7).
    pub fn stride(self) -> Option<usize> {
        let s = self.0 as usize + 1;
        s.is_power_of_two().then_some(s)
    }

    /// Whether this is the default (contiguous) pattern.
    pub fn is_default(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern {}", self.0)
    }
}

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip {}", self.0)
    }
}

/// A column address within an open DRAM row: selects one cache line
/// (paper §2). One column holds `chips` 8-byte words, one per chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ColumnId(pub u32);

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col {}", self.0)
    }
}

/// A row address within a DRAM bank (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u32);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row {}", self.0)
    }
}

impl From<u8> for ChipId {
    fn from(v: u8) -> Self {
        ChipId(v)
    }
}

impl From<u8> for PatternId {
    fn from(v: u8) -> Self {
        PatternId(v)
    }
}

impl From<u32> for ColumnId {
    fn from(v: u32) -> Self {
        ColumnId(v)
    }
}

impl From<u32> for RowId {
    fn from(v: u32) -> Self {
        RowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_for_stride_covers_powers_of_two() {
        assert_eq!(PatternId::for_stride(1), Some(PatternId(0)));
        assert_eq!(PatternId::for_stride(2), Some(PatternId(1)));
        assert_eq!(PatternId::for_stride(4), Some(PatternId(3)));
        assert_eq!(PatternId::for_stride(8), Some(PatternId(7)));
        assert_eq!(PatternId::for_stride(3), None);
        assert_eq!(PatternId::for_stride(0), None);
        assert_eq!(PatternId::for_stride(12), None);
    }

    #[test]
    fn mixed_stride_patterns_have_no_uniform_stride() {
        // Pattern 2 of GS-DRAM(4,2,2) has the dual stride (1,7) — Figure 7.
        assert_eq!(PatternId(2).stride(), None);
        assert_eq!(PatternId(5).stride(), None);
    }

    #[test]
    fn default_pattern_is_zero() {
        assert!(PatternId::DEFAULT.is_default());
        assert!(!PatternId(3).is_default());
        assert_eq!(PatternId::default(), PatternId::DEFAULT);
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(PatternId(3).to_string(), "pattern 3");
        assert_eq!(ChipId(2).to_string(), "chip 2");
        assert_eq!(ColumnId(9).to_string(), "col 9");
        assert_eq!(RowId(1).to_string(), "row 1");
    }
}
