//! Hardware-cost accounting (paper §4.4).
//!
//! The paper argues GS-DRAM is cheap: per-chip column translation is a
//! few gates, the pattern ID rides on spare address pins, and the
//! processor-side additions are a few tag bits. This module reproduces
//! that arithmetic for any `GS-DRAM(c,s,p)` so the claims are checkable
//! and parameter sweeps can report cost alongside benefit.

use crate::GsDramConfig;

/// DRAM-side costs: the per-module column translation logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramSideCost {
    /// Bitwise gates across all CTLs (AND + XOR + MUX, `p` bits each,
    /// one CTL per chip — Figure 5).
    pub logic_gates: usize,
    /// Chip-ID register bits across the module.
    pub register_bits: usize,
    /// Extra pins needed on the channel to carry the pattern ID, after
    /// reusing the spare column-command address pins (§3.6/§4.4: DDR4
    /// has two spare address pins on column commands).
    pub extra_pins: usize,
}

/// Processor-side costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSideCost {
    /// Pattern-ID bits added to each cache tag entry.
    pub tag_bits_per_line: usize,
    /// Cache-area overhead of the extended tags, as a fraction (the
    /// paper: "less than 0.6% of the cache size" for 3-bit IDs).
    pub cache_area_overhead: f64,
    /// Bits added to each page-table/TLB entry (shuffle flag + alternate
    /// pattern ID — §4.1/§4.4).
    pub pte_bits: usize,
    /// Cache lines to check/invalidate per read-exclusive request
    /// (§4.4: `chips` lines).
    pub invalidations_per_store: usize,
    /// Shuffle/unshuffle latency in cycles (one per stage — §3.6).
    pub shuffle_latency: usize,
}

/// Computes the DRAM-side cost of a configuration.
///
/// Gate counting per CTL (Figure 5): a `p`-bit AND, a `p`-bit XOR and a
/// `p`-bit 2:1 mux = `3p` gate-equivalents; `c` CTLs per module.
///
/// ```
/// use gsdram_core::{cost::dram_side_cost, GsDramConfig};
/// // §4.4: "roughly 72 logic gates and 24 bits of register storage".
/// let d = dram_side_cost(&GsDramConfig::gs_dram_8_3_3(), 2);
/// assert_eq!((d.logic_gates, d.register_bits, d.extra_pins), (72, 24, 1));
/// ```
pub fn dram_side_cost(cfg: &GsDramConfig, spare_addr_pins: usize) -> DramSideCost {
    let p = cfg.pattern_bits() as usize;
    let c = cfg.chips();
    DramSideCost {
        logic_gates: 3 * p * c,
        register_bits: p * c,
        extra_pins: p.saturating_sub(spare_addr_pins),
    }
}

/// Computes the processor-side cost for a cache with `line_bytes` lines
/// and `tag_bits` baseline tag width.
pub fn cpu_side_cost(cfg: &GsDramConfig, line_bytes: usize, tag_bits: usize) -> CpuSideCost {
    let p = cfg.pattern_bits() as usize;
    // Overhead = added tag bits over (data + tag) bits per line.
    let per_line_bits = line_bytes * 8 + tag_bits;
    CpuSideCost {
        tag_bits_per_line: p,
        cache_area_overhead: p as f64 / per_line_bits as f64,
        pte_bits: 1 + p,
        invalidations_per_store: cfg.chips(),
        shuffle_latency: cfg.shuffle_stages() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_for_gs_dram_8_3_3() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        // §4.4: "the overall cost is roughly 72 logic gates and 24 bits
        // of register storage".
        let d = dram_side_cost(&cfg, 2);
        assert_eq!(d.logic_gates, 72);
        assert_eq!(d.register_bits, 24);
        // "a 3-bit pattern ID requires only one additional pin" given
        // DDR4's two spare column-command address pins.
        assert_eq!(d.extra_pins, 1);
    }

    #[test]
    fn cache_overhead_below_paper_bound() {
        // §4.4: "the cost of this addition is less than 0.6% of the
        // cache size" — 3 pattern bits on a 64-byte line with a ~40-bit
        // tag.
        let cfg = GsDramConfig::gs_dram_8_3_3();
        let c = cpu_side_cost(&cfg, 64, 40);
        assert_eq!(c.tag_bits_per_line, 3);
        assert!(c.cache_area_overhead < 0.006, "{}", c.cache_area_overhead);
        assert_eq!(c.pte_bits, 4);
        assert_eq!(c.invalidations_per_store, 8);
        assert_eq!(c.shuffle_latency, 3);
    }

    #[test]
    fn explanatory_config_is_even_cheaper() {
        let cfg = GsDramConfig::gs_dram_4_2_2();
        let d = dram_side_cost(&cfg, 2);
        assert_eq!(d.logic_gates, 3 * 2 * 4);
        assert_eq!(d.register_bits, 8);
        assert_eq!(d.extra_pins, 0, "2-bit IDs fit the spare pins");
    }

    #[test]
    fn wide_patterns_cost_more_pins() {
        let cfg = GsDramConfig::new(8, 3, 6).unwrap();
        let d = dram_side_cost(&cfg, 2);
        assert_eq!(d.extra_pins, 4);
        assert_eq!(d.register_bits, 48);
    }
}
