//! Functional model of a GS-DRAM module: per-chip word arrays plus the
//! gather/scatter datapath (shuffle network + per-chip CTL) of §3.4.
//!
//! The module stores data exactly as the hardware would: chip `i` holds
//! one 8-byte word per (row, column). The memory-controller-side shuffle
//! decides *which* word of a written line lands on which chip; the
//! per-chip CTL decides *which column* each chip touches for a given
//! (pattern, column) command. This model is the ground truth the timing
//! simulator and the end-to-end system build on.

use crate::ctl::{ctl_bank, ColumnTranslationLogic, CommandKind};
use crate::error::AccessError;
use crate::{ColumnId, Geometry, GsDramConfig, PatternId, RowId};

/// Where one word of a gathered cache line comes from, and which logical
/// element of the row it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherSlot {
    /// Chip supplying the word.
    pub chip: u8,
    /// Column that chip accesses (after CTL translation).
    pub chip_col: u32,
    /// Logical element index within the row buffer: element `e` is the
    /// `e mod chips`-th word of the line at column `e / chips`
    /// (the circled indices of Figure 7).
    pub element: usize,
}

/// Computes, for a column command `(pattern, col)`, the slot each chip
/// contributes — sorted by logical element index, which is the order the
/// memory controller assembles the gathered cache line in.
///
/// `shuffled` is the per-data-structure shuffle flag (§4.3): when clear,
/// lines were stored with the trivial word-`i`-to-chip-`i` mapping.
///
/// The returned slots always form a permutation of the chips (each chip
/// is read exactly once — the defining property that makes the gather a
/// single READ).
pub fn gather_slots(
    cfg: &GsDramConfig,
    pattern: PatternId,
    col: ColumnId,
    shuffled: bool,
) -> Vec<GatherSlot> {
    let ctls = ctl_bank(cfg);
    let mut slots: Vec<GatherSlot> = ctls
        .iter()
        .map(|ctl| slot_for_chip(cfg, ctl, pattern, col, shuffled))
        .collect();
    slots.sort_by_key(|s| s.element);
    slots
}

fn slot_for_chip(
    cfg: &GsDramConfig,
    ctl: &ColumnTranslationLogic,
    pattern: PatternId,
    col: ColumnId,
    shuffled: bool,
) -> GatherSlot {
    let chip_col = ctl.translate(CommandKind::Read, pattern, col);
    let chip = ctl.chip().0;
    // Invert the write-time shuffle to learn which logical word of the
    // line at `chip_col` this chip holds: the shuffle routed word w to
    // chip w XOR f(col), so chip i holds word i XOR f(col).
    let word = if shuffled {
        let control = cfg.shuffle_fn().control(chip_col, cfg.shuffle_stages());
        (chip ^ control) as usize
    } else {
        chip as usize
    };
    GatherSlot {
        chip,
        chip_col: chip_col.0,
        element: chip_col.0 as usize * cfg.chips() + word,
    }
}

/// The logical element indices a `(pattern, col)` access gathers, in
/// assembly order — the row of Figure 7 for this pattern/column pair.
///
/// ```
/// use gsdram_core::{gathered_elements, GsDramConfig, ColumnId, PatternId};
/// let cfg = GsDramConfig::gs_dram_4_2_2();
/// // Figure 7, pattern 3 (stride 4), column 0: elements 0 4 8 12.
/// assert_eq!(
///     gathered_elements(&cfg, PatternId(3), ColumnId(0), true),
///     vec![0, 4, 8, 12]
/// );
/// ```
pub fn gathered_elements(
    cfg: &GsDramConfig,
    pattern: PatternId,
    col: ColumnId,
    shuffled: bool,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(cfg.chips());
    gathered_elements_into(cfg, pattern, col, shuffled, &mut out);
    out
}

/// [`gathered_elements`] into a caller-provided buffer (cleared first):
/// the allocation-free form the simulator's per-access line path uses.
pub fn gathered_elements_into(
    cfg: &GsDramConfig,
    pattern: PatternId,
    col: ColumnId,
    shuffled: bool,
    out: &mut Vec<usize>,
) {
    out.clear();
    for i in 0..cfg.chips() as u8 {
        let ctl = crate::ctl::ctl_for(cfg, crate::ChipId(i));
        out.push(slot_for_chip(cfg, &ctl, pattern, col, shuffled).element);
    }
    // Same-pattern gathers partition the row into disjoint element sets,
    // so ascending element order is exactly the assembly order.
    out.sort_unstable();
}

/// The inverse of [`gathered_elements`]: the column ID whose
/// `(pattern, col)` gather includes logical element `element` of a row.
///
/// Same-pattern gathers partition the row, so this column is unique. The
/// cache-coherence machinery of §4.1 uses it to enumerate the lines of
/// the *other* pattern that overlap a modified line.
///
/// ```
/// use gsdram_core::{column_containing, gathered_elements, GsDramConfig, ColumnId, PatternId};
/// let cfg = GsDramConfig::gs_dram_8_3_3();
/// for e in 0..64 {
///     let col = column_containing(&cfg, PatternId(7), e, true);
///     assert!(gathered_elements(&cfg, PatternId(7), col, true).contains(&e));
/// }
/// ```
pub fn column_containing(
    cfg: &GsDramConfig,
    pattern: PatternId,
    element: usize,
    shuffled: bool,
) -> ColumnId {
    let chips = cfg.chips();
    let col = ColumnId((element / chips) as u32);
    let word = element % chips;
    // The chip holding this element.
    let chip = if shuffled {
        word ^ cfg.shuffle_fn().control(col, cfg.shuffle_stages()) as usize
    } else {
        word
    };
    // CTL: chip_col = (chip_id_reg & pattern) ^ issued_col, so
    // issued_col = (chip_id_reg & pattern) ^ chip_col.
    let ctls = ctl_bank(cfg);
    ctls[chip].translate(CommandKind::Read, pattern, col)
}

/// A functional GS-DRAM module: `chips` arrays of 8-byte words addressed
/// by (row, column).
///
/// All accesses go through the same shuffle + CTL datapath the paper
/// specifies, so reads with non-zero patterns return exactly what the
/// proposed hardware would.
///
/// ```
/// use gsdram_core::{GsModule, GsDramConfig, Geometry, RowId, ColumnId, PatternId};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = GsDramConfig::gs_dram_4_2_2();
/// let geom = Geometry::new(&cfg, 1, 16)?;
/// let mut m = GsModule::new(cfg, geom);
/// // Store four 4-field tuples (Figure 1), one per cache line.
/// for t in 0..4u64 {
///     let tuple: Vec<u64> = (0..4).map(|f| t * 10 + f).collect();
///     m.write_line(RowId(0), ColumnId(t as u32), PatternId(0), true, &tuple)?;
/// }
/// // One READ with pattern 3 gathers the first field of all four tuples.
/// let field0 = m.read_line(RowId(0), ColumnId(0), PatternId(3), true)?;
/// assert_eq!(field0, vec![0, 10, 20, 30]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GsModule {
    cfg: GsDramConfig,
    geom: Geometry,
    /// `chips[i][row * cols_per_row + col]` = the 8-byte word chip `i`
    /// holds at that location.
    chips: Vec<Vec<u64>>,
}

impl GsModule {
    /// Creates a zero-filled module with the given configuration and
    /// geometry.
    pub fn new(cfg: GsDramConfig, geom: Geometry) -> Self {
        let words = geom.rows() * geom.cols_per_row();
        let chips = vec![vec![0u64; words]; cfg.chips()];
        GsModule { cfg, geom, chips }
    }

    /// The module's configuration.
    pub fn config(&self) -> &GsDramConfig {
        &self.cfg
    }

    /// The module's geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.cfg.chips() * 8 * self.geom.rows() * self.geom.cols_per_row()
    }

    fn check(&self, row: RowId, col: ColumnId, pattern: PatternId) -> Result<(), AccessError> {
        if row.0 as usize >= self.geom.rows() {
            return Err(AccessError::RowOutOfRange {
                row: row.0,
                rows: self.geom.rows(),
            });
        }
        if col.0 as usize >= self.geom.cols_per_row() {
            return Err(AccessError::ColumnOutOfRange {
                col: col.0,
                cols: self.geom.cols_per_row(),
            });
        }
        if pattern.0 > self.cfg.max_pattern() {
            return Err(AccessError::PatternTooWide {
                pattern: pattern.0,
                bits: self.cfg.pattern_bits(),
            });
        }
        Ok(())
    }

    fn idx(&self, row: RowId, chip_col: u32) -> usize {
        row.0 as usize * self.geom.cols_per_row() + chip_col as usize
    }

    /// Reads a (possibly gathered) cache line with one column command.
    ///
    /// Returns the `chips` words in logical element order — the order
    /// the memory controller's reassembly network produces (Figure 7's
    /// ascending circles).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for out-of-range row/column or a pattern
    /// wider than the configured pattern-ID width.
    pub fn read_line(
        &self,
        row: RowId,
        col: ColumnId,
        pattern: PatternId,
        shuffled: bool,
    ) -> Result<Vec<u64>, AccessError> {
        self.check(row, col, pattern)?;
        let slots = gather_slots(&self.cfg, pattern, col, shuffled);
        Ok(slots
            .iter()
            .map(|s| self.chips[s.chip as usize][self.idx(row, s.chip_col)])
            .collect())
    }

    /// Writes (possibly scattering) a cache line with one column command.
    ///
    /// `line` is in logical element order; the controller routes word `k`
    /// to the chip/column that holds the `k`-th gathered element, so a
    /// subsequent [`read_line`](Self::read_line) with the same pattern
    /// returns exactly `line`.
    ///
    /// # Errors
    ///
    /// As [`read_line`](Self::read_line), plus
    /// [`AccessError::WrongLineLength`] if `line.len() != chips`.
    pub fn write_line(
        &mut self,
        row: RowId,
        col: ColumnId,
        pattern: PatternId,
        shuffled: bool,
        line: &[u64],
    ) -> Result<(), AccessError> {
        self.check(row, col, pattern)?;
        if line.len() != self.cfg.chips() {
            return Err(AccessError::WrongLineLength {
                got: line.len(),
                expected: self.cfg.chips(),
            });
        }
        let slots = gather_slots(&self.cfg, pattern, col, shuffled);
        for (word, slot) in line.iter().zip(&slots) {
            let i = self.idx(row, slot.chip_col);
            self.chips[slot.chip as usize][i] = *word;
        }
        Ok(())
    }

    /// Reads one logical element of a row directly (test/initialisation
    /// convenience; the hardware path is [`read_line`](Self::read_line)).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for out-of-range row/element.
    pub fn read_element(
        &self,
        row: RowId,
        element: usize,
        shuffled: bool,
    ) -> Result<u64, AccessError> {
        let (col, word) = self.split_element(row, element)?;
        let chip = self.chip_of(col, word, shuffled);
        Ok(self.chips[chip][self.idx(row, col.0)])
    }

    /// Writes one logical element of a row directly.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] for out-of-range row/element.
    pub fn write_element(
        &mut self,
        row: RowId,
        element: usize,
        shuffled: bool,
        value: u64,
    ) -> Result<(), AccessError> {
        let (col, word) = self.split_element(row, element)?;
        let chip = self.chip_of(col, word, shuffled);
        let i = self.idx(row, col.0);
        self.chips[chip][i] = value;
        Ok(())
    }

    fn split_element(&self, row: RowId, element: usize) -> Result<(ColumnId, usize), AccessError> {
        let col = element / self.cfg.chips();
        let word = element % self.cfg.chips();
        let c = ColumnId(col as u32);
        self.check(row, c, PatternId::DEFAULT)?;
        Ok((c, word))
    }

    fn chip_of(&self, col: ColumnId, word: usize, shuffled: bool) -> usize {
        if shuffled {
            let control = self
                .cfg
                .shuffle_fn()
                .control(col, self.cfg.shuffle_stages());
            word ^ control as usize
        } else {
            word
        }
    }

    /// Raw view of one chip's storage (for tests and chip-conflict
    /// inspection).
    pub fn chip_words(&self, chip: u8) -> &[u64] {
        &self.chips[chip as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_4_2_2() -> GsModule {
        let cfg = GsDramConfig::gs_dram_4_2_2();
        let geom = Geometry::new(&cfg, 2, 16).unwrap();
        GsModule::new(cfg, geom)
    }

    /// Fills row 0 with elements 0..cols*chips (the logical row buffer of
    /// Figure 7) via ordinary pattern-0 writes.
    fn fill_row(m: &mut GsModule, row: RowId) {
        let c = m.config().chips();
        for col in 0..m.geometry().cols_per_row() as u32 {
            let line: Vec<u64> = (0..c as u64).map(|w| col as u64 * c as u64 + w).collect();
            m.write_line(row, ColumnId(col), PatternId(0), true, &line)
                .unwrap();
        }
    }

    #[test]
    fn figure7_all_sixteen_gathers() {
        // The full Figure 7 table for GS-DRAM(4,2,2), columns 0..3.
        let expected: [[[u64; 4]; 4]; 4] = [
            // Pattern 0 (stride 1)
            [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]],
            // Pattern 1 (stride 2)
            [[0, 2, 4, 6], [1, 3, 5, 7], [8, 10, 12, 14], [9, 11, 13, 15]],
            // Pattern 2 (stride 1,7). Note: the paper's Figure 7 prints
            // the same four sets ordered by leading element (its col-1 and
            // col-2 rows swapped); the CTL equation (chip & 2) ^ col makes
            // column 1 read chip-columns {1,3}, which hold elements
            // {4..7, 12..15} — so this ordering is the mechanically
            // consistent one. See EXPERIMENTS.md.
            [[0, 1, 8, 9], [4, 5, 12, 13], [2, 3, 10, 11], [6, 7, 14, 15]],
            // Pattern 3 (stride 4)
            [[0, 4, 8, 12], [1, 5, 9, 13], [2, 6, 10, 14], [3, 7, 11, 15]],
        ];
        let mut m = module_4_2_2();
        fill_row(&mut m, RowId(0));
        for (p, cols) in expected.iter().enumerate() {
            for (c, want) in cols.iter().enumerate() {
                let got = m
                    .read_line(RowId(0), ColumnId(c as u32), PatternId(p as u8), true)
                    .unwrap();
                assert_eq!(got, want.to_vec(), "pattern {p} col {c}");
            }
        }
    }

    #[test]
    fn default_pattern_round_trip() {
        let mut m = module_4_2_2();
        let line = vec![11, 22, 33, 44];
        m.write_line(RowId(1), ColumnId(5), PatternId(0), true, &line)
            .unwrap();
        let back = m
            .read_line(RowId(1), ColumnId(5), PatternId(0), true)
            .unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn scatter_with_pattern_then_gather() {
        // Scatter four values with pattern 3 (stride 4), then confirm the
        // elements landed at strided positions readable via pattern 0.
        let mut m = module_4_2_2();
        fill_row(&mut m, RowId(0));
        m.write_line(
            RowId(0),
            ColumnId(0),
            PatternId(3),
            true,
            &[100, 104, 108, 112],
        )
        .unwrap();
        assert_eq!(
            m.read_line(RowId(0), ColumnId(0), PatternId(3), true)
                .unwrap(),
            vec![100, 104, 108, 112]
        );
        // Elements 0,4,8,12 were rewritten; their neighbours untouched.
        for (e, want) in [
            (0usize, 100u64),
            (4, 104),
            (8, 108),
            (12, 112),
            (1, 1),
            (5, 5),
        ] {
            assert_eq!(
                m.read_element(RowId(0), e, true).unwrap(),
                want,
                "element {e}"
            );
        }
    }

    #[test]
    fn element_access_agrees_with_line_access() {
        let mut m = module_4_2_2();
        for e in 0..16 {
            m.write_element(RowId(0), e, true, 1000 + e as u64).unwrap();
        }
        for col in 0..4u32 {
            let line = m
                .read_line(RowId(0), ColumnId(col), PatternId(0), true)
                .unwrap();
            let want: Vec<u64> = (0..4).map(|w| 1000 + col as u64 * 4 + w).collect();
            assert_eq!(line, want);
        }
    }

    #[test]
    fn unshuffled_structures_still_round_trip_pattern_zero() {
        let mut m = module_4_2_2();
        let line = vec![7, 8, 9, 10];
        m.write_line(RowId(0), ColumnId(3), PatternId(0), false, &line)
            .unwrap();
        assert_eq!(
            m.read_line(RowId(0), ColumnId(3), PatternId(0), false)
                .unwrap(),
            line
        );
    }

    #[test]
    fn each_gather_touches_every_chip_exactly_once() {
        let cfg = GsDramConfig::gs_dram_8_3_3();
        for p in 0..8u8 {
            for c in 0..16u32 {
                let slots = gather_slots(&cfg, PatternId(p), ColumnId(c), true);
                let mut chips: Vec<u8> = slots.iter().map(|s| s.chip).collect();
                chips.sort_unstable();
                assert_eq!(chips, (0..8).collect::<Vec<u8>>(), "pattern {p} col {c}");
            }
        }
    }

    #[test]
    fn stride_patterns_gather_strided_elements() {
        // For pattern 2^k − 1, the gathered elements of GS-DRAM(8,3,3)
        // form an arithmetic sequence with stride 2^k.
        let cfg = GsDramConfig::gs_dram_8_3_3();
        for k in 0..=3u32 {
            let stride = 1usize << k;
            let p = PatternId((stride - 1) as u8);
            let e = gathered_elements(&cfg, p, ColumnId(0), true);
            let want: Vec<usize> = (0..8).map(|i| i * stride).collect();
            assert_eq!(e, want, "stride {stride}");
        }
    }

    #[test]
    fn access_validation() {
        let m = module_4_2_2();
        assert!(matches!(
            m.read_line(RowId(9), ColumnId(0), PatternId(0), true),
            Err(AccessError::RowOutOfRange { row: 9, rows: 2 })
        ));
        assert!(matches!(
            m.read_line(RowId(0), ColumnId(99), PatternId(0), true),
            Err(AccessError::ColumnOutOfRange { col: 99, cols: 16 })
        ));
        assert!(matches!(
            m.read_line(RowId(0), ColumnId(0), PatternId(4), true),
            Err(AccessError::PatternTooWide {
                pattern: 4,
                bits: 2
            })
        ));
        let mut m = module_4_2_2();
        assert!(matches!(
            m.write_line(RowId(0), ColumnId(0), PatternId(0), true, &[1, 2]),
            Err(AccessError::WrongLineLength {
                got: 2,
                expected: 4
            })
        ));
    }

    #[test]
    fn capacity_accounts_all_chips() {
        let m = module_4_2_2();
        assert_eq!(m.capacity_bytes(), 4 * 8 * 2 * 16);
        assert_eq!(m.chip_words(0).len(), 32);
    }
}
