//! Port-level message types and the simulation observer contract.
//!
//! The end-to-end simulator (the `gsdram-system` crate) is built from
//! composable components — core scheduler, cache hierarchy, coherence
//! engine, DRAM bridge — that exchange typed messages across *ports*
//! (Gem5-style): a core presents a [`MemReq`] to the hierarchy and
//! eventually receives a [`MemResp`]; everything in between is a
//! component concern.
//!
//! Alongside the request/response types, this module defines the
//! [`SimEvent`] observer contract: every component announces its
//! externally meaningful actions (cache fills and evictions, coherence
//! overlap flushes, DRAM enqueues, commands, request service and
//! completions) through an
//! [`EventHub`]. Tracers and profilers attach at the hub instead of
//! being threaded through component code, and when nothing is attached
//! the hub is a single branch on `None` — events are constructed lazily,
//! so an unobserved simulation pays no allocation or formatting cost.

use crate::PatternId;

/// What a [`MemReq`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// 8-byte load (`pattload` into a 64-bit register).
    Load,
    /// 16-byte SIMD load (`pattload` into an xmm register).
    LoadWide,
    /// 8-byte store of the carried value (`pattstore`).
    Store(u64),
}

/// A typed request a core presents to the memory hierarchy's port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Static instruction address (stride-prefetcher training key).
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// Access pattern the line is gathered with.
    pub pattern: PatternId,
    /// Load / wide load / store.
    pub kind: ReqKind,
}

impl MemReq {
    /// The stored value, for store requests.
    pub fn store_value(&self) -> Option<u64> {
        match self.kind {
            ReqKind::Store(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is a 16-byte SIMD load.
    pub fn is_wide(&self) -> bool {
        matches!(self.kind, ReqKind::LoadWide)
    }

    /// The 8-byte word this request touches within its line.
    pub fn word_index(&self, line_bytes: u64) -> usize {
        ((self.addr % line_bytes) / 8) as usize
    }
}

/// The completion a port eventually returns for a [`MemReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResp {
    /// The value loaded (for stores, the value written).
    pub value: u64,
    /// CPU cycle the requesting core may consume the value.
    pub ready_at: u64,
}

/// Which cache level a [`SimEvent`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// A private per-core L1.
    L1,
    /// The shared L2.
    L2,
}

/// The kind of a DRAM command, as seen by observers.
///
/// This is the telemetry-facing mirror of the controller's internal
/// command type: enough to classify bus activity without exposing the
/// timing machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramCmdKind {
    /// ACTIVATE: open a row into the bank's row buffer.
    Activate,
    /// PRECHARGE: close the bank's open row.
    Precharge,
    /// READ column command (a GS-DRAM gather is one of these).
    Read,
    /// WRITE column command.
    Write,
    /// All-bank REFRESH.
    Refresh,
}

/// Which back-end engine decision a [`SimEvent::SchedDecision`]
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedDecisionKind {
    /// A younger row hit was serviced while an older request waited.
    RowHitBypass,
    /// A starvation cap forced the oldest request to be serviced.
    StarvationPromotion,
    /// A batch scheduler's bank cursor rotated onward.
    BatchRotation,
    /// The write queue hit the high watermark: drain mode started.
    DrainEnter,
    /// The write queue shrank to the low watermark: drain mode ended.
    DrainExit,
}

/// How a column command found the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The needed row was already open.
    Hit,
    /// The bank was precharged; one ACTIVATE sufficed.
    Closed,
    /// Another row was open; PRECHARGE + ACTIVATE were needed.
    Conflict,
}

/// One externally meaningful action of a simulator component.
///
/// Addresses are line-aligned byte addresses; `pattern` is the pattern
/// the line was gathered with; times are in the clock domain of the
/// emitting component (CPU cycles at the caches, memory-controller
/// cycles at the DRAM bridge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A line was installed into a cache.
    CacheFill {
        /// Which level was filled.
        level: CacheLevel,
        /// The owning core for L1 fills; `None` for the shared L2.
        core: Option<usize>,
        /// Line-aligned byte address.
        addr: u64,
        /// Pattern the line was gathered with.
        pattern: PatternId,
    },
    /// A fill pushed a victim line out of a cache.
    CacheEvict {
        /// Which level evicted.
        level: CacheLevel,
        /// The owning core for L1 evictions; `None` for the shared L2.
        core: Option<usize>,
        /// Line-aligned byte address of the victim.
        addr: u64,
        /// Pattern of the victim.
        pattern: PatternId,
        /// Whether the victim held modified data.
        dirty: bool,
    },
    /// The §4.1 coherence engine forced an overlapping line of the
    /// other pattern out of a cache: a dirty line flushed ahead of a
    /// fetch, or any resident copy invalidated by a store. A dirty
    /// casualty's writeback shows up as a following [`DramEnqueue`].
    ///
    /// [`DramEnqueue`]: SimEvent::DramEnqueue
    OverlapFlush {
        /// Line-aligned byte address of the flushed line.
        addr: u64,
        /// Pattern of the flushed line.
        pattern: PatternId,
        /// `true` when triggered by a store's overlap invalidation,
        /// `false` for a flush ahead of a fetch.
        store: bool,
    },
    /// A sub-request entered a memory controller's queues.
    DramEnqueue {
        /// The controller-level request id.
        id: u64,
        /// Channel the request was routed to.
        channel: usize,
        /// Channel-local byte address of the line.
        addr: u64,
        /// Pattern rode on the column command.
        pattern: PatternId,
        /// `true` for writebacks, `false` for fetches.
        write: bool,
        /// Arrival time in memory-controller cycles.
        at_mem: u64,
    },
    /// A memory controller finished a sub-request's data burst.
    DramComplete {
        /// The controller-level request id.
        id: u64,
        /// Completion time in memory-controller cycles.
        at_mem: u64,
    },
    /// A memory controller put one command on the command bus.
    DramCommand {
        /// Channel whose controller issued the command.
        channel: usize,
        /// Rank the command targets.
        rank: usize,
        /// Target bank; `None` for the all-bank REFRESH.
        bank: Option<usize>,
        /// What was issued.
        kind: DramCmdKind,
        /// Issue time in memory-controller cycles.
        at_mem: u64,
    },
    /// A column command retired a queued request: the one event that
    /// carries a request's whole service story (row-buffer outcome,
    /// queue pressure at issue, end-to-end latency).
    DramService {
        /// The controller-level request id.
        id: u64,
        /// Channel that served the request.
        channel: usize,
        /// Bank the column command targeted.
        bank: usize,
        /// Pattern carried on the column command.
        pattern: PatternId,
        /// `true` for writebacks, `false` for reads.
        write: bool,
        /// How the request found the row buffer.
        outcome: RowOutcome,
        /// Controller queue occupancy (reads + writes) when the column
        /// command issued, this request included.
        queue_depth: u32,
        /// Arrival time at the controller, memory cycles.
        arrived_at_mem: u64,
        /// Data-burst completion time, memory cycles.
        done_at_mem: u64,
    },
    /// A memory controller's scheduling or write-drain engine took a
    /// fairness/mode decision: a row hit bypassed an older request, a
    /// starvation cap promoted the oldest request, a batch cursor
    /// rotated, or write-drain mode flipped. The default FR-FCFS
    /// configuration takes none of these, so traces of baseline runs
    /// are unchanged.
    SchedDecision {
        /// Channel whose controller took the decision.
        channel: usize,
        /// Which decision was taken.
        kind: SchedDecisionKind,
        /// Decision time in memory-controller cycles.
        at_mem: u64,
    },
    /// A logical gather could not be served by one column command and
    /// was split into multiple per-line sub-requests — the Impulse
    /// baseline's chip conflicts (paper §3). Each sub-request beyond
    /// the first is one conflict.
    GatherSplit {
        /// Line-aligned byte address of the logical access.
        addr: u64,
        /// Pattern of the logical access.
        pattern: PatternId,
        /// Number of sub-requests the access expanded into (≥ 2).
        subs: u32,
        /// Expansion time in memory-controller cycles.
        at_mem: u64,
    },
}

/// An observer of [`SimEvent`]s.
///
/// Implementations are attached to a machine through its [`EventHub`];
/// they see every event in program order, single-threaded.
pub trait EventSink {
    /// Called once per emitted event.
    fn on_event(&mut self, ev: &SimEvent);
}

impl<F: FnMut(&SimEvent)> EventSink for F {
    fn on_event(&mut self, ev: &SimEvent) {
        self(ev)
    }
}

/// The per-machine event distribution point.
///
/// Components hold no observer state of their own; they are handed a
/// `&mut EventHub` and call [`EventHub::emit`] with a closure that
/// builds the event. With no sink attached the closure is never run, so
/// the cost of an unobserved simulation is one `Option` branch per
/// emission site.
#[derive(Default)]
pub struct EventHub {
    sink: Option<Box<dyn EventSink>>,
}

impl std::fmt::Debug for EventHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventHub")
            .field("attached", &self.sink.is_some())
            .finish()
    }
}

impl EventHub {
    /// A hub with nothing attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches `sink`, replacing (and returning) any previous one.
    pub fn attach(&mut self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        self.sink.replace(sink)
    }

    /// Detaches and returns the current sink, if any.
    pub fn detach(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Whether a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event built by `make` to the attached sink, if any.
    /// `make` is only invoked when a sink is attached.
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce() -> SimEvent) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.on_event(&make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn unattached_hub_never_builds_events() {
        let mut hub = EventHub::new();
        assert!(!hub.is_attached());
        hub.emit(|| panic!("event must not be constructed without a sink"));
    }

    #[test]
    fn attached_sink_sees_events_in_order() {
        let seen: Rc<RefCell<Vec<SimEvent>>> = Rc::default();
        let log = Rc::clone(&seen);
        let mut hub = EventHub::new();
        hub.attach(Box::new(move |ev: &SimEvent| log.borrow_mut().push(*ev)));
        assert!(hub.is_attached());
        hub.emit(|| SimEvent::DramComplete { id: 1, at_mem: 10 });
        hub.emit(|| SimEvent::DramComplete { id: 2, at_mem: 20 });
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], SimEvent::DramComplete { id: 1, at_mem: 10 });
        assert_eq!(seen[1], SimEvent::DramComplete { id: 2, at_mem: 20 });
    }

    #[test]
    fn detach_stops_delivery() {
        let seen: Rc<RefCell<Vec<SimEvent>>> = Rc::default();
        let log = Rc::clone(&seen);
        let mut hub = EventHub::new();
        hub.attach(Box::new(move |ev: &SimEvent| log.borrow_mut().push(*ev)));
        hub.emit(|| SimEvent::DramComplete { id: 1, at_mem: 1 });
        assert!(hub.detach().is_some());
        hub.emit(|| SimEvent::DramComplete { id: 2, at_mem: 2 });
        assert_eq!(seen.borrow().len(), 1);
    }

    #[test]
    fn mem_req_accessors() {
        let req = MemReq {
            pc: 1,
            addr: 0x1018,
            pattern: PatternId(7),
            kind: ReqKind::Store(99),
        };
        assert_eq!(req.store_value(), Some(99));
        assert!(!req.is_wide());
        assert_eq!(req.word_index(64), 3);
        let load = MemReq {
            kind: ReqKind::LoadWide,
            ..req
        };
        assert_eq!(load.store_value(), None);
        assert!(load.is_wide());
    }
}
