//! The in-memory database workload (paper §5.1).
//!
//! One table of `tuples` tuples, each with eight 8-byte fields, exactly
//! one cache line per tuple. Three storage mechanisms are compared:
//!
//! * **Row Store** — tuple-major; transactions touch one line, analytics
//!   touch every line;
//! * **Column Store** — field-major arrays; analytics stream one array,
//!   transactions touch one line per field;
//! * **GS-DRAM** — physically a row store allocated with
//!   `pattmalloc(…, SHUFFLE, 7)`; transactions use pattern 0, analytics
//!   use `pattload` with pattern 7 (stride 8) to gather one field of
//!   eight tuples per cache line (the Figure 8 loop structure).

use gsdram_core::PatternId;
use gsdram_system::ops::Op;
use gsdram_system::Machine;

use crate::common::{IterProgram, SplitMix};

/// Fields per tuple (the paper's 64-byte tuples).
pub const FIELDS: usize = 8;

/// The three storage mechanisms of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Tuple-major (one tuple per cache line).
    RowStore,
    /// Field-major (one array per field).
    ColumnStore,
    /// Tuple-major over GS-DRAM with the stride-8 alternate pattern.
    GsDram,
}

impl Layout {
    /// All three mechanisms, in the paper's presentation order.
    pub const ALL: [Layout; 3] = [Layout::RowStore, Layout::ColumnStore, Layout::GsDram];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Layout::RowStore => "Row Store",
            Layout::ColumnStore => "Column Store",
            Layout::GsDram => "GS-DRAM",
        }
    }
}

/// A table resident in the simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct Table {
    /// Storage mechanism.
    pub layout: Layout,
    /// Number of tuples.
    pub tuples: u64,
    /// Base physical address.
    pub base: u64,
}

impl Table {
    /// Allocates and initialises a table. Field `f` of tuple `t` holds
    /// `t * 8 + f`, so column sums are analytically checkable.
    pub fn create(m: &mut Machine, layout: Layout, tuples: u64) -> Table {
        let bytes = tuples * 64;
        let base = match layout {
            Layout::RowStore | Layout::ColumnStore => m.malloc(bytes),
            Layout::GsDram => m.pattmalloc(bytes, true, PatternId(7)),
        };
        let table = Table {
            layout,
            tuples,
            base,
        };
        for t in 0..tuples {
            for f in 0..FIELDS as u64 {
                m.poke(table.field_addr(t, f as usize), t * 8 + f);
            }
        }
        table
    }

    /// Physical address of field `f` of tuple `t`.
    pub fn field_addr(&self, t: u64, f: usize) -> u64 {
        match self.layout {
            Layout::RowStore | Layout::GsDram => self.base + t * 64 + f as u64 * 8,
            Layout::ColumnStore => self.base + f as u64 * (self.tuples * 8) + t * 8,
        }
    }

    /// The expected sum of field `f` over all tuples (for verification):
    /// `Σ_t (t*8 + f)`.
    pub fn expected_column_sum(&self, f: usize) -> u64 {
        let n = self.tuples;
        (n * (n - 1) / 2).wrapping_mul(8).wrapping_add(n * f as u64)
    }
}

/// A transaction mix: how many fields are read-only, write-only and
/// read-write per transaction (the x-axis labels of Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnSpec {
    /// Fields read.
    pub read_only: usize,
    /// Fields written.
    pub write_only: usize,
    /// Fields read then written.
    pub read_write: usize,
}

impl TxnSpec {
    /// The eight workloads of Figure 9, sorted by total fields accessed.
    pub const FIGURE9: [TxnSpec; 8] = [
        TxnSpec {
            read_only: 1,
            write_only: 0,
            read_write: 1,
        },
        TxnSpec {
            read_only: 2,
            write_only: 1,
            read_write: 0,
        },
        TxnSpec {
            read_only: 0,
            write_only: 2,
            read_write: 2,
        },
        TxnSpec {
            read_only: 2,
            write_only: 4,
            read_write: 0,
        },
        TxnSpec {
            read_only: 5,
            write_only: 0,
            read_write: 1,
        },
        TxnSpec {
            read_only: 2,
            write_only: 0,
            read_write: 4,
        },
        TxnSpec {
            read_only: 6,
            write_only: 1,
            read_write: 0,
        },
        TxnSpec {
            read_only: 4,
            write_only: 2,
            read_write: 2,
        },
    ];

    /// Label like "1-0-1" used on the Figure 9 x-axis.
    pub fn label(&self) -> String {
        format!("{}-{}-{}", self.read_only, self.write_only, self.read_write)
    }

    /// Total fields touched.
    pub fn fields(&self) -> usize {
        self.read_only + self.write_only + self.read_write
    }
}

/// Builds the transaction program: `count` transactions, each on a
/// uniformly random tuple, touching distinct random fields per the spec
/// (§5.1 "each transaction operates on a randomly-chosen tuple").
/// Transactions use the default pattern on every layout. Pass
/// `u64::MAX` for an endless HTAP thread.
pub fn transactions(table: Table, spec: TxnSpec, count: u64, seed: u64) -> IterProgram {
    let mut rng = SplitMix(seed);
    let per_txn = spec.fields();
    assert!(per_txn <= FIELDS, "at most 8 fields per transaction");
    let ops = (0..count).flat_map(move |_| {
        let t = rng.below(table.tuples);
        // Choose `per_txn` distinct fields.
        let mut fields = [0usize; FIELDS];
        let mut available: Vec<usize> = (0..FIELDS).collect();
        for slot in fields.iter_mut().take(per_txn) {
            let i = rng.below(available.len() as u64) as usize;
            *slot = available.swap_remove(i);
        }
        let mut ops: Vec<Op> = Vec::with_capacity(per_txn * 2 + 1);
        let mut idx = 0;
        for _ in 0..spec.read_only {
            let addr = table.field_addr(t, fields[idx]);
            ops.push(Op::Load {
                pc: 0x100 + idx as u64,
                addr,
                pattern: PatternId(0),
            });
            ops.push(Op::Compute(10)); // per-field predicate/marshalling work
            idx += 1;
        }
        for _ in 0..spec.write_only {
            let addr = table.field_addr(t, fields[idx]);
            ops.push(Op::Store {
                pc: 0x200 + idx as u64,
                addr,
                pattern: PatternId(0),
                value: rng.next_u64(),
            });
            ops.push(Op::Compute(10));
            idx += 1;
        }
        for _ in 0..spec.read_write {
            let addr = table.field_addr(t, fields[idx]);
            ops.push(Op::Load {
                pc: 0x300 + idx as u64,
                addr,
                pattern: PatternId(0),
            });
            ops.push(Op::Store {
                pc: 0x400 + idx as u64,
                addr,
                pattern: PatternId(0),
                value: rng.next_u64(),
            });
            ops.push(Op::Compute(10));
            idx += 1;
        }
        // Transaction prologue/epilogue: index lookup, locking, commit
        // bookkeeping (calibrates the memory share of a transaction to
        // the paper's Figure 9 ratios).
        ops.push(Op::Compute(150));
        ops
    });
    IterProgram::with_unit_marker(Box::new(ops), |op| matches!(op, Op::Compute(150)))
}

/// Builds the analytics program: the sum of `columns` fields over the
/// whole table (§5.1). Loop structure per layout:
///
/// * Row Store: tuple-major — one line per tuple covers all requested
///   fields;
/// * Column Store: field-major streaming over each column array;
/// * GS-DRAM: the Figure 8 structure — for each group of 8 tuples, one
///   `pattload` line per field gathered with pattern 7.
pub fn analytics(table: Table, columns: &[usize]) -> IterProgram {
    let columns = columns.to_vec();
    let ops: Box<dyn Iterator<Item = Op>> = match table.layout {
        Layout::RowStore => {
            let cols = columns.clone();
            Box::new((0..table.tuples).flat_map(move |t| {
                let table = table;
                let per: Vec<Op> = cols
                    .iter()
                    .map(|&f| Op::Load {
                        pc: 0x500 + f as u64,
                        addr: table.field_addr(t, f),
                        pattern: PatternId(0),
                    })
                    .chain(std::iter::once(Op::Compute(1)))
                    .collect();
                per
            }))
        }
        Layout::ColumnStore => Box::new(columns.clone().into_iter().flat_map(move |f| {
            (0..table.tuples).flat_map(move |t| {
                [
                    Op::Load {
                        pc: 0x600 + f as u64,
                        addr: table.field_addr(t, f),
                        pattern: PatternId(0),
                    },
                    Op::Compute(1),
                ]
            })
        })),
        Layout::GsDram => Box::new(columns.clone().into_iter().flat_map(move |f| {
            let groups = table.tuples / 8;
            (0..groups).flat_map(move |g| {
                // pattload arr[8g + f] + 8k, pattern 7 → field f of tuple
                // 8g + k (Figure 8 / §4.3).
                (0..8u64).flat_map(move |k| {
                    [
                        Op::Load {
                            pc: 0x700 + f as u64,
                            addr: table.base + (8 * g + f as u64) * 64 + 8 * k,
                            pattern: PatternId(7),
                        },
                        Op::Compute(1),
                    ]
                })
            })
        })),
    };
    IterProgram::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::config::SystemConfig;
    use gsdram_system::machine::StopWhen;
    use gsdram_system::ops::Program;

    fn machine() -> Machine {
        Machine::new(SystemConfig::table1(1, 16 << 20))
    }

    #[test]
    fn field_addresses_by_layout() {
        let row = Table {
            layout: Layout::RowStore,
            tuples: 100,
            base: 0,
        };
        assert_eq!(row.field_addr(3, 2), 3 * 64 + 16);
        let col = Table {
            layout: Layout::ColumnStore,
            tuples: 100,
            base: 0,
        };
        assert_eq!(col.field_addr(3, 2), 2 * 800 + 24);
        let gs = Table {
            layout: Layout::GsDram,
            tuples: 100,
            base: 4096,
        };
        assert_eq!(gs.field_addr(3, 2), 4096 + 3 * 64 + 16);
    }

    #[test]
    fn analytics_sums_are_correct_on_all_layouts() {
        for layout in Layout::ALL {
            let mut m = machine();
            let table = Table::create(&mut m, layout, 256);
            let mut p = analytics(table, &[2]);
            let r = {
                let mut programs: Vec<&mut dyn Program> = vec![&mut p];
                m.run(&mut programs, StopWhen::AllDone)
            };
            assert_eq!(
                r.results[0],
                table.expected_column_sum(2),
                "{} column sum",
                layout.label()
            );
        }
    }

    #[test]
    fn gsdram_analytics_fetches_fewer_lines_than_row_store() {
        let run = |layout| {
            let mut m = machine();
            let table = Table::create(&mut m, layout, 1024);
            let mut p = analytics(table, &[0]);
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        let row = run(Layout::RowStore);
        let gs = run(Layout::GsDram);
        // 8× fewer cache lines (one gathered line covers 8 tuples).
        assert_eq!(row.dram.reads, 1024);
        assert_eq!(gs.dram.reads, 128);
        assert!(gs.cpu_cycles < row.cpu_cycles);
    }

    #[test]
    fn transactions_complete_and_count() {
        let mut m = machine();
        let table = Table::create(&mut m, Layout::RowStore, 1024);
        let spec = TxnSpec {
            read_only: 1,
            write_only: 1,
            read_write: 1,
        };
        let mut p = transactions(table, spec, 50, 7);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        assert_eq!(r.progress[0], 50);
        assert!(r.mem_ops >= 50 * 4); // 1 RO + 1 WO + (1+1) RW per txn
    }

    #[test]
    fn column_store_transactions_touch_more_lines() {
        let run = |layout| {
            let mut m = machine();
            let table = Table::create(&mut m, layout, 4096);
            let spec = TxnSpec {
                read_only: 4,
                write_only: 2,
                read_write: 2,
            };
            let mut p = transactions(table, spec, 200, 11);
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        let row = run(Layout::RowStore);
        let col = run(Layout::ColumnStore);
        assert!(
            col.dram.reads > row.dram.reads * 3,
            "col {} !>> row {}",
            col.dram.reads,
            row.dram.reads
        );
        assert!(col.cpu_cycles > row.cpu_cycles);
    }

    #[test]
    fn gsdram_transactions_match_row_store_line_counts() {
        let run = |layout| {
            let mut m = machine();
            let table = Table::create(&mut m, layout, 4096);
            let spec = TxnSpec {
                read_only: 2,
                write_only: 1,
                read_write: 0,
            };
            let mut p = transactions(table, spec, 200, 13);
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        let row = run(Layout::RowStore);
        let gs = run(Layout::GsDram);
        // Same tuple-major accesses; DRAM read counts match exactly.
        assert_eq!(row.dram.reads, gs.dram.reads);
    }

    #[test]
    fn figure9_specs_are_sorted_by_total_fields() {
        let totals: Vec<usize> = TxnSpec::FIGURE9.iter().map(|s| s.fields()).collect();
        let mut sorted = totals.clone();
        sorted.sort_unstable();
        assert_eq!(totals, sorted);
        assert_eq!(TxnSpec::FIGURE9[0].label(), "1-0-1");
        assert_eq!(TxnSpec::FIGURE9[7].label(), "4-2-2");
    }

    #[test]
    fn expected_column_sum_formula() {
        let t = Table {
            layout: Layout::RowStore,
            tuples: 4,
            base: 0,
        };
        // Σ_t (8t + f) for t in 0..4, f = 1: 1 + 9 + 17 + 25 = 52.
        assert_eq!(t.expected_column_sum(1), 52);
    }
}
