//! Graph-processing workload (paper §5.3).
//!
//! Nodes are 64-byte objects with eight 8-byte fields (rank, degree,
//! flags, …). Two phases with different access patterns share the same
//! structure:
//!
//! * **update** — operations on individual nodes read/write several
//!   fields of one node (pattern 0, one line);
//! * **scan** — traversal passes read *one* field of many nodes; on
//!   GS-DRAM the rank field of eight nodes arrives in one pattern-7
//!   gathered line.

use gsdram_core::PatternId;
use gsdram_system::ops::Op;
use gsdram_system::Machine;

use crate::common::{IterProgram, SplitMix};

/// Node-array storage mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphLayout {
    /// Array of 64-byte node structs.
    NodeMajor,
    /// Same array on GS-DRAM with the stride-8 alternate pattern.
    GsDram,
}

impl GraphLayout {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            GraphLayout::NodeMajor => "Node-major",
            GraphLayout::GsDram => "GS-DRAM (patt 7)",
        }
    }
}

/// An allocated node array.
#[derive(Debug, Clone, Copy)]
pub struct Graph {
    /// Mechanism.
    pub layout: GraphLayout,
    /// Node count.
    pub nodes: u64,
    /// Base address.
    pub base: u64,
}

impl Graph {
    /// Allocates `nodes` nodes; field `f` of node `v` is initialised to
    /// `v * 8 + f`.
    pub fn create(m: &mut Machine, layout: GraphLayout, nodes: u64) -> Graph {
        let bytes = nodes * 64;
        let base = match layout {
            GraphLayout::NodeMajor => m.malloc(bytes),
            GraphLayout::GsDram => m.pattmalloc(bytes, true, PatternId(7)),
        };
        let g = Graph {
            layout,
            nodes,
            base,
        };
        for v in 0..nodes {
            for f in 0..8u64 {
                m.poke(g.field_addr(v, f as usize), v * 8 + f);
            }
        }
        g
    }

    /// Address of field `f` of node `v`.
    pub fn field_addr(&self, v: u64, f: usize) -> u64 {
        self.base + v * 64 + f as u64 * 8
    }
}

/// A traversal pass summing field `field` of every node (e.g. a
/// PageRank accumulation over ranks).
pub fn scan(g: Graph, field: usize) -> IterProgram {
    let ops: Box<dyn Iterator<Item = Op>> = match g.layout {
        GraphLayout::NodeMajor => Box::new((0..g.nodes).flat_map(move |v| {
            [
                Op::Load {
                    pc: 0xD00,
                    addr: g.field_addr(v, field),
                    pattern: PatternId(0),
                },
                Op::Compute(1),
            ]
        })),
        GraphLayout::GsDram => Box::new((0..g.nodes / 8).flat_map(move |grp| {
            (0..8u64).flat_map(move |k| {
                [
                    Op::Load {
                        pc: 0xD10,
                        addr: g.base + (8 * grp + field as u64) * 64 + 8 * k,
                        pattern: PatternId(7),
                    },
                    Op::Compute(1),
                ]
            })
        })),
    };
    IterProgram::new(ops)
}

/// `count` node updates: each reads three fields of a random node and
/// writes two (pattern 0 on both layouts — one cache line per node).
pub fn updates(g: Graph, count: u64, seed: u64) -> IterProgram {
    let mut rng = SplitMix(seed);
    let ops = (0..count).flat_map(move |_| {
        let v = rng.below(g.nodes);
        [
            Op::Load {
                pc: 0xD20,
                addr: g.field_addr(v, 0),
                pattern: PatternId(0),
            },
            Op::Load {
                pc: 0xD21,
                addr: g.field_addr(v, 1),
                pattern: PatternId(0),
            },
            Op::Load {
                pc: 0xD22,
                addr: g.field_addr(v, 2),
                pattern: PatternId(0),
            },
            Op::Store {
                pc: 0xD23,
                addr: g.field_addr(v, 0),
                pattern: PatternId(0),
                value: rng.next_u64(),
            },
            Op::Store {
                pc: 0xD24,
                addr: g.field_addr(v, 3),
                pattern: PatternId(0),
                value: rng.next_u64(),
            },
            Op::Compute(8),
        ]
    });
    IterProgram::with_unit_marker(Box::new(ops), |op| matches!(op, Op::Compute(8)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::config::SystemConfig;
    use gsdram_system::machine::StopWhen;
    use gsdram_system::ops::Program;

    fn run(layout: GraphLayout, f: impl Fn(Graph) -> IterProgram) -> gsdram_system::RunReport {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20));
        let g = Graph::create(&mut m, layout, 4096);
        let mut p = f(g);
        let mut programs: Vec<&mut dyn Program> = vec![&mut p];
        m.run(&mut programs, StopWhen::AllDone)
    }

    #[test]
    fn scan_sums_match_across_layouts() {
        let a = run(GraphLayout::NodeMajor, |g| scan(g, 2));
        let b = run(GraphLayout::GsDram, |g| scan(g, 2));
        assert_eq!(a.results[0], b.results[0]);
        // Σ_v (8v + 2) over 4096 nodes.
        let n = 4096u64;
        assert_eq!(a.results[0], 8 * (n * (n - 1) / 2) + 2 * n);
    }

    #[test]
    fn gs_scan_is_faster_and_lighter() {
        let a = run(GraphLayout::NodeMajor, |g| scan(g, 0));
        let b = run(GraphLayout::GsDram, |g| scan(g, 0));
        assert_eq!(a.dram.reads, 4096);
        assert_eq!(b.dram.reads, 512);
        assert!(b.cpu_cycles < a.cpu_cycles);
    }

    #[test]
    fn updates_are_layout_neutral() {
        let a = run(GraphLayout::NodeMajor, |g| updates(g, 256, 9));
        let b = run(GraphLayout::GsDram, |g| updates(g, 256, 9));
        assert_eq!(a.progress[0], 256);
        assert_eq!(b.progress[0], 256);
        let ratio = b.cpu_cycles as f64 / a.cpu_cycles as f64;
        assert!(ratio < 1.15, "update overhead ratio {ratio}");
    }
}
