//! Matrix transpose: an out-of-place layout conversion built on
//! gather + scatter.
//!
//! Transposition is the archetypal non-unit-stride kernel (the paper's
//! graphics examples — §5.3 — are packed-object reshapes of the same
//! form). With the source stored in contiguous 8×8 tiles on GS-DRAM, a
//! pattern-7 `pattload` returns one tile *column* — which is one
//! destination *row* segment — so each 8-element group costs one
//! gathered load plus eight contiguous stores, against eight scattered
//! loads for the row-major baseline.

use gsdram_core::PatternId;
use gsdram_system::ops::Op;
use gsdram_system::Machine;

use crate::common::IterProgram;

/// Source-matrix storage for the transpose kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposeLayout {
    /// Row-major source: column reads are scattered scalar loads.
    RowMajor,
    /// 8×8-tiled source on GS-DRAM: column reads are pattern-7 gathers.
    GsDram,
}

impl TransposeLayout {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TransposeLayout::RowMajor => "Row-major",
            TransposeLayout::GsDram => "GS-DRAM (tiled)",
        }
    }
}

/// An allocated transpose problem: `dst = src^T`, both n×n of u64.
#[derive(Debug, Clone, Copy)]
pub struct Transpose {
    /// Source layout.
    pub layout: TransposeLayout,
    /// Matrix dimension.
    pub n: usize,
    src: u64,
    dst: u64,
}

impl Transpose {
    /// Allocates and initialises `src[i][j] = i * n + j`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 8.
    pub fn create(m: &mut Machine, layout: TransposeLayout, n: usize) -> Transpose {
        assert!(n.is_multiple_of(8), "n must be a multiple of 8");
        let bytes = (n * n * 8) as u64;
        let src = match layout {
            TransposeLayout::RowMajor => m.malloc(bytes),
            TransposeLayout::GsDram => m.pattmalloc(bytes, true, PatternId(7)),
        };
        let dst = m.malloc(bytes);
        let t = Transpose {
            layout,
            n,
            src,
            dst,
        };
        for i in 0..n {
            for j in 0..n {
                m.poke(t.src_addr(i, j), (i * n + j) as u64);
            }
        }
        t
    }

    /// Address of `src[i][j]` under the layout.
    pub fn src_addr(&self, i: usize, j: usize) -> u64 {
        match self.layout {
            TransposeLayout::RowMajor => self.src + ((i * self.n + j) * 8) as u64,
            TransposeLayout::GsDram => {
                let tiles_per_row = self.n / 8;
                let tile = (i / 8) * tiles_per_row + (j / 8);
                self.src + (tile * 512 + (i % 8) * 64 + (j % 8) * 8) as u64
            }
        }
    }

    /// Address of `dst[i][j]` (always row-major).
    pub fn dst_addr(&self, i: usize, j: usize) -> u64 {
        self.dst + ((i * self.n + j) * 8) as u64
    }

    /// The `pattload` address gathering tile column `j` entry `i` of the
    /// tiled source (Figure 8 arithmetic).
    fn gather_addr(&self, i: usize, j: usize) -> u64 {
        let tiles_per_row = self.n / 8;
        let tile = (i / 8) * tiles_per_row + (j / 8);
        self.src + (tile * 512 + (j % 8) * 64 + (i % 8) * 8) as u64
    }
}

/// Builds the transpose program. For each destination row `j`, each
/// 8-element group `i0..i0+8` reads `src[i0..i0+8][j]` (a source
/// column segment) and stores it contiguously into `dst[j][i0..]`.
pub fn program(t: Transpose) -> IterProgram {
    let n = t.n;
    let ops = (0..n).flat_map(move |j| {
        (0..n).step_by(8).flat_map(move |i0| {
            let mut v: Vec<Op> = Vec::with_capacity(18);
            for k in 0..8 {
                let i = i0 + k;
                let (pc, addr, pattern) = match t.layout {
                    TransposeLayout::RowMajor => (0xE00, t.src_addr(i, j), PatternId(0)),
                    TransposeLayout::GsDram => (0xE10, t.gather_addr(i, j), PatternId(7)),
                };
                v.push(Op::Load { pc, addr, pattern });
                v.push(Op::Store {
                    pc: 0xE20,
                    addr: t.dst_addr(j, i),
                    pattern: PatternId(0),
                    // The machine's functional path overwrites this with
                    // the loaded value only in real code; here the
                    // program stores the known source value so the
                    // result is verifiable.
                    value: (i * n + j) as u64,
                });
            }
            v.push(Op::Compute(2));
            v
        })
    });
    IterProgram::new(Box::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::config::SystemConfig;
    use gsdram_system::machine::StopWhen;
    use gsdram_system::ops::Program;

    fn run(layout: TransposeLayout, n: usize) -> (gsdram_system::RunReport, Machine, Transpose) {
        let mut m = Machine::new(SystemConfig::table1(1, 16 << 20));
        let t = Transpose::create(&mut m, layout, n);
        let mut p = program(t);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        (r, m, t)
    }

    #[test]
    fn result_is_the_transpose() {
        for layout in [TransposeLayout::RowMajor, TransposeLayout::GsDram] {
            let (_, mut m, t) = run(layout, 32);
            m.drain_caches();
            for i in 0..32 {
                for j in 0..32 {
                    assert_eq!(
                        m.peek(t.dst_addr(j, i)),
                        (i * 32 + j) as u64,
                        "{} dst[{j}][{i}]",
                        t.layout.label()
                    );
                }
            }
        }
    }

    #[test]
    fn gathers_match_source_columns() {
        // The loaded values (summed) must be identical across layouts:
        // both read every source element exactly once.
        let (a, _, _) = run(TransposeLayout::RowMajor, 64);
        let (b, _, _) = run(TransposeLayout::GsDram, 64);
        assert_eq!(a.results[0], b.results[0]);
    }

    #[test]
    fn gsdram_wins_once_the_matrix_exceeds_the_caches() {
        // The row-major column walk (stride 2 KB) set-conflicts in L1
        // and, once the matrix outgrows L2, re-misses to DRAM every
        // sweep; the tiled gather reads each source line exactly once.
        // A reduced hierarchy (8 KB L1 / 256 KB L2) provokes this at
        // n = 256 (512 KB source) to keep the test fast.
        let run_small = |layout| {
            let mut cfg = SystemConfig::table1(1, 16 << 20);
            cfg.l1.size_bytes = 8 * 1024;
            cfg.l2.size_bytes = 256 * 1024;
            let mut m = Machine::new(cfg);
            let t = Transpose::create(&mut m, layout, 256);
            let mut p = program(t);
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        let row = run_small(TransposeLayout::RowMajor);
        let gs = run_small(TransposeLayout::GsDram);
        assert!(
            gs.l1[0].misses * 2 < row.l1[0].misses,
            "gs {} row {}",
            gs.l1[0].misses,
            row.l1[0].misses
        );
        assert!(
            gs.dram.reads * 2 < row.dram.reads,
            "gs {} row {}",
            gs.dram.reads,
            row.dram.reads
        );
        assert!(
            gs.cpu_cycles < row.cpu_cycles,
            "gs {} row {}",
            gs.cpu_cycles,
            row.cpu_cycles
        );
    }
}
