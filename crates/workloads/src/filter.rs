//! Selective projection: `SELECT * FROM t WHERE field[c] < threshold`.
//!
//! A data-dependent query the paper's HTAP motivation implies but does
//! not evaluate: scan one column, and fetch the *full tuple* only for
//! matching rows. GS-DRAM accelerates the scan phase (gathered column
//! lines) while the row-store layout keeps the fetch phase one line per
//! match — so, unlike pure analytics, the benefit shrinks as
//! selectivity grows and the tuple fetches dominate. The
//! `extension_filter` harness sweeps that crossover.
//!
//! Unlike the other workloads, the op stream here is *data dependent*:
//! the program decides whether to fetch a tuple based on the value each
//! scan load returns (via [`Program::on_load_value`]).

use gsdram_core::PatternId;
use gsdram_system::ops::{Op, Program};

use crate::imdb::{Layout, Table};

/// State machine for the filter query.
#[derive(Debug)]
pub struct FilterQuery {
    table: Table,
    field: usize,
    threshold: u64,
    /// Tuple index the scan will read next.
    scan_next: u64,
    /// Pending tuple fetches (indices that matched).
    fetch_queue: Vec<u64>,
    /// Which field of the pending fetch is next (0..8).
    fetch_field: usize,
    /// Value of the last scan load, set by `on_load_value`.
    awaiting_value: bool,
    matches: u64,
    sum_of_matches: u64,
}

impl FilterQuery {
    /// A query over `table` selecting tuples whose `field` value is
    /// below `threshold`. With the table's `t*8 + f` initialisation,
    /// `threshold = s * 8` yields selectivity `s / tuples`.
    pub fn new(table: Table, field: usize, threshold: u64) -> Self {
        FilterQuery {
            table,
            field,
            threshold,
            scan_next: 0,
            fetch_queue: Vec::new(),
            fetch_field: 0,
            awaiting_value: false,
            matches: 0,
            sum_of_matches: 0,
        }
    }

    /// Number of matching tuples found.
    pub fn matches(&self) -> u64 {
        self.matches
    }

    fn scan_op(&mut self) -> Op {
        let t = self.scan_next;
        self.scan_next += 1;
        self.awaiting_value = true;
        match self.table.layout {
            Layout::GsDram => {
                // Figure 8 addressing: gathered line of field `field`
                // covering tuple group t & !7, word t % 8.
                let group = t & !7;
                Op::Load {
                    pc: 0x800 + self.field as u64,
                    addr: self.table.base + (group + self.field as u64) * 64 + (t % 8) * 8,
                    pattern: PatternId(7),
                }
            }
            _ => Op::Load {
                pc: 0x800 + self.field as u64,
                addr: self.table.field_addr(t, self.field),
                pattern: PatternId(0),
            },
        }
    }
}

impl Program for FilterQuery {
    fn next_op(&mut self) -> Option<Op> {
        // Drain pending tuple fetches first (projection of matches).
        if let Some(&t) = self.fetch_queue.first() {
            let f = self.fetch_field;
            self.fetch_field += 1;
            if self.fetch_field == 8 {
                self.fetch_field = 0;
                self.fetch_queue.remove(0);
            }
            return Some(Op::Load {
                pc: 0x900 + f as u64,
                addr: self.table.field_addr(t, f),
                pattern: PatternId(0),
            });
        }
        if self.scan_next < self.table.tuples {
            return Some(self.scan_op());
        }
        None
    }

    fn on_load_value(&mut self, value: u64) {
        if self.awaiting_value {
            self.awaiting_value = false;
            let scanned = self.scan_next - 1;
            if value < self.threshold {
                self.matches += 1;
                self.fetch_queue.push(scanned);
            }
        } else {
            // A projection load of a matching tuple.
            self.sum_of_matches = self.sum_of_matches.wrapping_add(value);
        }
    }

    fn progress(&self) -> u64 {
        self.matches
    }

    fn result(&self) -> u64 {
        self.sum_of_matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::config::SystemConfig;
    use gsdram_system::machine::{Machine, StopWhen};

    fn run(layout: Layout, tuples: u64, threshold: u64) -> (gsdram_system::RunReport, u64) {
        let mut m = Machine::new(SystemConfig::table1(1, 16 << 20));
        let table = Table::create(&mut m, layout, tuples);
        let mut q = FilterQuery::new(table, 0, threshold);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut q];
            m.run(&mut programs, StopWhen::AllDone)
        };
        let matches = q.matches();
        (r, matches)
    }

    #[test]
    fn finds_exactly_the_matching_tuples() {
        // field 0 of tuple t is 8t; threshold 8s matches tuples 0..s.
        for layout in Layout::ALL {
            let (r, matches) = run(layout, 512, 8 * 100);
            assert_eq!(matches, 100, "{}", layout.label());
            // Σ over matching tuples of Σ_f (8t + f) = Σ_t (64t + 28).
            let want: u64 = (0..100u64).map(|t| 64 * t + 28).sum();
            assert_eq!(r.results[0], want, "{}", layout.label());
        }
    }

    #[test]
    fn zero_selectivity_is_a_pure_scan() {
        let (row, m0) = run(Layout::RowStore, 1024, 0);
        let (gs, m1) = run(Layout::GsDram, 1024, 0);
        assert_eq!(m0, 0);
        assert_eq!(m1, 0);
        // Scan-only: GS touches 8x fewer lines.
        assert_eq!(row.dram.reads, 1024);
        assert_eq!(gs.dram.reads, 128);
        assert!(gs.cpu_cycles < row.cpu_cycles);
    }

    #[test]
    fn full_selectivity_converges_to_row_store() {
        // When every tuple matches, the projection fetches dominate and
        // the layouts converge (GS still pays its scan lines).
        let (row, _) = run(Layout::RowStore, 512, u64::MAX);
        let (gs, _) = run(Layout::GsDram, 512, u64::MAX);
        let ratio = gs.cpu_cycles as f64 / row.cpu_cycles as f64;
        assert!(ratio < 1.30, "ratio {ratio}");
    }

    #[test]
    fn benefit_shrinks_with_selectivity() {
        let speedup = |threshold| {
            let (row, _) = run(Layout::RowStore, 1024, threshold);
            let (gs, _) = run(Layout::GsDram, 1024, threshold);
            row.cpu_cycles as f64 / gs.cpu_cycles as f64
        };
        let low = speedup(8 * 16); // ~1.6% selectivity
        let high = speedup(8 * 768); // 75% selectivity
        assert!(low > high, "low-selectivity speedup {low} !> {high}");
        assert!(low > 1.5);
    }
}
