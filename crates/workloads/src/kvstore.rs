//! Key-value store workload (paper §5.3).
//!
//! An array of 16-byte pairs (8-byte key, 8-byte value). Inserts benefit
//! from key and value sharing a cache line (pattern 0); lookups that
//! scan keys benefit from cache lines containing *only keys* — exactly
//! what pattern 1 (stride 2) gathers: "the cache line (Patt 1, Col 0)
//! corresponds to the first four keys" (Figure 7 discussion).

use gsdram_core::PatternId;
use gsdram_system::ops::Op;
use gsdram_system::Machine;

use crate::common::{IterProgram, SplitMix};

/// Storage mechanism for the pair array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvLayout {
    /// Plain interleaved pairs; scans read keys and values.
    Interleaved,
    /// Interleaved pairs on GS-DRAM; scans gather keys with pattern 1.
    GsDram,
}

impl KvLayout {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            KvLayout::Interleaved => "Interleaved",
            KvLayout::GsDram => "GS-DRAM (patt 1)",
        }
    }
}

/// An allocated key-value store.
#[derive(Debug, Clone, Copy)]
pub struct KvStore {
    /// Mechanism.
    pub layout: KvLayout,
    /// Number of pairs.
    pub pairs: u64,
    /// Base address.
    pub base: u64,
}

impl KvStore {
    /// Allocates and fills the store; key of pair `i` is `i * 2 + 1`,
    /// value is `i * 2 + 2`.
    pub fn create(m: &mut Machine, layout: KvLayout, pairs: u64) -> KvStore {
        let bytes = pairs * 16;
        let base = match layout {
            KvLayout::Interleaved => m.malloc(bytes),
            KvLayout::GsDram => m.pattmalloc(bytes, true, PatternId(1)),
        };
        let kv = KvStore {
            layout,
            pairs,
            base,
        };
        for i in 0..pairs {
            m.poke(kv.key_addr(i), i * 2 + 1);
            m.poke(kv.value_addr(i), i * 2 + 2);
        }
        kv
    }

    /// Address of pair `i`'s key.
    pub fn key_addr(&self, i: u64) -> u64 {
        self.base + i * 16
    }

    /// Address of pair `i`'s value.
    pub fn value_addr(&self, i: u64) -> u64 {
        self.base + i * 16 + 8
    }

    /// The `pattload` address gathering the key of pair `i` (pattern 1):
    /// key `i` is element `2i` of its row; the stride-2 gathered line of
    /// `chips` keys starts at the aligned group of `chips` pairs.
    fn key_gather_addr(&self, i: u64) -> u64 {
        // Element 2i lives at column (2i)/8, word (2i)%8. The pattern-1
        // line containing it: group of 8 keys = pairs (i & !7) .. +8,
        // spread over two adjacent columns. Address = line of column
        // group + word offset; Figure-8 arithmetic:
        let group = i / 8; // 8 keys per gathered line (8 chips)
        let word = i % 8;
        // Column pair (2*group*16/..): the gathered line's issued column
        // is the one whose low bits select the key sub-pattern: for
        // stride 2, issued col c with c&1 == 0 gathers even elements
        // (keys). Two consecutive columns hold 8 pairs = 1 group.
        self.base + group * 128 + word * 8
    }
}

/// Scans the first `scan_len` keys looking for `needle_idx`'s key,
/// then reads the matching value — repeated `lookups` times at random
/// targets within `scan_len`.
pub fn lookups(kv: KvStore, scan_len: u64, lookups: u64, seed: u64) -> IterProgram {
    let mut rng = SplitMix(seed);
    let ops = (0..lookups).flat_map(move |_| {
        let target = rng.below(scan_len);
        let mut v: Vec<Op> = Vec::new();
        match kv.layout {
            KvLayout::Interleaved => {
                for i in 0..=target {
                    v.push(Op::Load {
                        pc: 0xC00,
                        addr: kv.key_addr(i),
                        pattern: PatternId(0),
                    });
                    v.push(Op::Compute(1)); // compare + branch
                }
            }
            KvLayout::GsDram => {
                for i in 0..=target {
                    v.push(Op::Load {
                        pc: 0xC10,
                        addr: kv.key_gather_addr(i),
                        pattern: PatternId(1),
                    });
                    v.push(Op::Compute(1));
                }
            }
        }
        v.push(Op::Load {
            pc: 0xC20,
            addr: kv.value_addr(target),
            pattern: PatternId(0),
        });
        v.push(Op::Compute(5));
        v
    });
    IterProgram::with_unit_marker(Box::new(ops), |op| matches!(op, Op::Compute(5)))
}

/// Inserts `count` pairs at random slots (key + value writes — one line
/// on either layout).
pub fn inserts(kv: KvStore, count: u64, seed: u64) -> IterProgram {
    let mut rng = SplitMix(seed);
    let ops = (0..count).flat_map(move |_| {
        let i = rng.below(kv.pairs);
        [
            Op::Store {
                pc: 0xC30,
                addr: kv.key_addr(i),
                pattern: PatternId(0),
                value: rng.next_u64() | 1,
            },
            Op::Store {
                pc: 0xC40,
                addr: kv.value_addr(i),
                pattern: PatternId(0),
                value: rng.next_u64(),
            },
            Op::Compute(5),
        ]
    });
    IterProgram::with_unit_marker(Box::new(ops), |op| matches!(op, Op::Compute(5)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::config::SystemConfig;
    use gsdram_system::machine::StopWhen;
    use gsdram_system::ops::Program;

    fn run(layout: KvLayout, f: impl Fn(KvStore) -> IterProgram) -> gsdram_system::RunReport {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20));
        let kv = KvStore::create(&mut m, layout, 4096);
        let mut p = f(kv);
        let mut programs: Vec<&mut dyn Program> = vec![&mut p];
        m.run(&mut programs, StopWhen::AllDone)
    }

    #[test]
    fn gather_addr_returns_keys() {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20));
        let kv = KvStore::create(&mut m, KvLayout::GsDram, 256);
        let ops: Vec<Op> = (0..32)
            .map(|i| Op::Load {
                pc: 1,
                addr: kv.key_gather_addr(i),
                pattern: PatternId(1),
            })
            .collect();
        let mut p = gsdram_system::ops::ScriptedProgram::new(ops);
        {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone);
        }
        let want: Vec<u64> = (0..32).map(|i| i * 2 + 1).collect();
        assert_eq!(p.loaded_values(), &want[..]);
    }

    #[test]
    fn gs_lookups_fetch_fewer_lines() {
        let plain = run(KvLayout::Interleaved, |kv| lookups(kv, 2048, 16, 3));
        let gs = run(KvLayout::GsDram, |kv| lookups(kv, 2048, 16, 3));
        assert!(
            gs.dram.reads * 3 < plain.dram.reads * 2,
            "gs {} vs plain {}",
            gs.dram.reads,
            plain.dram.reads
        );
        assert!(gs.cpu_cycles < plain.cpu_cycles);
    }

    #[test]
    fn inserts_cost_the_same_on_both_layouts() {
        let plain = run(KvLayout::Interleaved, |kv| inserts(kv, 300, 5));
        let gs = run(KvLayout::GsDram, |kv| inserts(kv, 300, 5));
        assert_eq!(plain.progress[0], 300);
        assert_eq!(gs.progress[0], 300);
        let ratio = gs.cpu_cycles as f64 / plain.cpu_cycles as f64;
        assert!(ratio < 1.15, "insert overhead ratio {ratio}");
    }
}
