//! # gsdram-workloads
//!
//! The applications the GS-DRAM paper evaluates (§5), implemented as lazy
//! op-stream programs over the [`gsdram_system`] machine:
//!
//! * [`imdb`] — the in-memory database: transactions, analytics and HTAP
//!   over Row Store / Column Store / GS-DRAM layouts (§5.1);
//! * [`gemm`] — matrix-matrix multiplication: naive, tiled, tiled+SIMD
//!   with software gather, and GS-DRAM pattern loads (§5.2);
//! * [`kvstore`] — key-value store lookups via pattern-1 key gathers
//!   (§5.3);
//! * [`graph`] — graph traversal/update phases via pattern-7 field
//!   gathers (§5.3);
//! * [`filter`] — a data-dependent selective-projection query (an
//!   extension experiment: scan benefit vs selectivity crossover);
//! * [`transpose`] — matrix transpose via gathered tile columns;
//! * [`common`] — lazy program plumbing and a deterministic RNG.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod filter;
pub mod gemm;
pub mod graph;
pub mod imdb;
pub mod kvstore;
pub mod transpose;
