//! Shared workload plumbing: lazy op streams as programs.

use gsdram_system::ops::{Op, Program};

/// A [`Program`] driven by a boxed lazy iterator of ops, folding loaded
/// values into a checksum and counting completed work units.
pub struct IterProgram {
    ops: Box<dyn Iterator<Item = Op>>,
    sum: u64,
    values_seen: u64,
    units: u64,
    unit_marker: Option<fn(&Op) -> bool>,
}

impl std::fmt::Debug for IterProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterProgram")
            .field("sum", &self.sum)
            .field("values_seen", &self.values_seen)
            .field("units", &self.units)
            .finish_non_exhaustive()
    }
}

impl IterProgram {
    /// Wraps a lazy op stream.
    pub fn new(ops: Box<dyn Iterator<Item = Op>>) -> Self {
        IterProgram {
            ops,
            sum: 0,
            values_seen: 0,
            units: 0,
            unit_marker: None,
        }
    }

    /// Wraps a lazy op stream, counting one unit of progress whenever
    /// `marker` matches an emitted op (e.g. the last op of each
    /// transaction).
    pub fn with_unit_marker(ops: Box<dyn Iterator<Item = Op>>, marker: fn(&Op) -> bool) -> Self {
        IterProgram {
            ops,
            sum: 0,
            values_seen: 0,
            units: 0,
            unit_marker: Some(marker),
        }
    }

    /// Number of load values observed.
    pub fn values_seen(&self) -> u64 {
        self.values_seen
    }
}

impl Program for IterProgram {
    fn next_op(&mut self) -> Option<Op> {
        let op = self.ops.next()?;
        if let Some(m) = self.unit_marker {
            if m(&op) {
                self.units += 1;
            }
        }
        Some(op)
    }

    fn on_load_value(&mut self, value: u64) {
        self.sum = self.sum.wrapping_add(value);
        self.values_seen += 1;
    }

    fn progress(&self) -> u64 {
        self.units
    }

    fn result(&self) -> u64 {
        self.sum
    }
}

/// The deterministic generator workloads use, re-exported from
/// [`gsdram_core::rng`] so every crate shares one implementation.
pub use gsdram_core::rng::SplitMix;

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_core::PatternId;

    #[test]
    fn iter_program_streams_and_sums() {
        let ops = vec![
            Op::Compute(1),
            Op::Load {
                pc: 0,
                addr: 0,
                pattern: PatternId(0),
            },
        ];
        let mut p = IterProgram::new(Box::new(ops.into_iter()));
        assert!(p.next_op().is_some());
        p.on_load_value(5);
        p.on_load_value(7);
        assert_eq!(p.result(), 12);
        assert_eq!(p.values_seen(), 2);
    }

    #[test]
    fn unit_marker_counts_progress() {
        let ops: Vec<Op> = (0..10).map(|_| Op::Compute(1)).collect();
        let mut p = IterProgram::with_unit_marker(Box::new(ops.into_iter()), |op| {
            matches!(op, Op::Compute(_))
        });
        while p.next_op().is_some() {}
        assert_eq!(p.progress(), 10);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix(42);
        let mut b = SplitMix(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix(1);
        for _ in 0..100 {
            assert!(c.below(10) < 10);
        }
    }
}
