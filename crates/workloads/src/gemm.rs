//! General matrix-matrix multiplication (paper §5.2, Figure 13).
//!
//! `C = A × B` with the dot-product loop vectorized over `k`: SIMD
//! needs `B[k..k+2][j]` — a *column* pair — in one register. The paper's
//! mechanisms:
//!
//! * **Naive** — untiled scalar ijk (the normalisation baseline of
//!   Figure 13);
//! * **Tiled** — cache-blocked scalar;
//! * **Tiled + SIMD** — cache-blocked with a *software gather*: packing a
//!   B column segment into xmm registers costs scalar loads + pack ops
//!   ("the software must gather the values of a column into a SIMD
//!   register");
//! * **GS-DRAM** — B stored in contiguous 8×8 tiles; `pattload` with
//!   pattern 7 reads a tile column directly into xmm registers,
//!   eliminating the software gather.
//!
//! The micro-kernel is register-blocked over 8 rows of `A` (an 8×8×
//! 8-MAC block): the B-column gather is amortised over those 8 rows,
//! which is what bounds GS-DRAM's benefit to the ~10% the paper reports
//! against a baseline that "spends most of its time in the L1 cache".

use gsdram_core::PatternId;
use gsdram_system::ops::Op;
use gsdram_system::Machine;

use crate::common::IterProgram;

/// The GEMM mechanisms compared in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// Untiled scalar ijk (normalisation baseline).
    Naive,
    /// Cache-blocked scalar with the given square tile.
    Tiled {
        /// Cache-block edge (elements).
        tile: usize,
    },
    /// Cache-blocked SIMD with software gather of B columns.
    TiledSimd {
        /// Cache-block edge (elements).
        tile: usize,
    },
    /// GS-DRAM: 8×8-tiled B + pattern-7 SIMD column loads.
    GsDram {
        /// Cache-block edge (elements).
        tile: usize,
    },
}

impl GemmVariant {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            GemmVariant::Naive => "Naive".to_string(),
            GemmVariant::Tiled { tile } => format!("Tiled({tile})"),
            GemmVariant::TiledSimd { tile } => format!("Tiled+SIMD({tile})"),
            GemmVariant::GsDram { tile } => format!("GS-DRAM({tile})"),
        }
    }
}

/// An allocated GEMM problem instance.
#[derive(Debug, Clone, Copy)]
pub struct Gemm {
    /// Matrix dimension (n×n).
    pub n: usize,
    /// Mechanism.
    pub variant: GemmVariant,
    a: u64,
    b: u64,
    c: u64,
}

impl Gemm {
    /// Allocates A, B and C for `variant`. For [`GemmVariant::GsDram`],
    /// B is allocated with `pattmalloc(…, SHUFFLE, 7)` and stored in
    /// contiguous 8×8 tiles; otherwise all matrices are row-major.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a multiple of 8 (and of the tile size for
    /// tiled variants).
    pub fn create(m: &mut Machine, n: usize, variant: GemmVariant) -> Gemm {
        assert!(n.is_multiple_of(8), "n must be a multiple of 8");
        if let GemmVariant::Tiled { tile }
        | GemmVariant::TiledSimd { tile }
        | GemmVariant::GsDram { tile } = variant
        {
            assert!(
                tile % 8 == 0 && n.is_multiple_of(tile),
                "tile must divide n and be a multiple of 8"
            );
        }
        let bytes = (n * n * 8) as u64;
        let a = m.malloc(bytes);
        let b = match variant {
            GemmVariant::GsDram { .. } => m.pattmalloc(bytes, true, PatternId(7)),
            _ => m.malloc(bytes),
        };
        let c = m.malloc(bytes);
        Gemm {
            n,
            variant,
            a,
            b,
            c,
        }
    }

    /// Address of `A[i][k]` (row-major).
    pub fn a_addr(&self, i: usize, k: usize) -> u64 {
        self.a + ((i * self.n + k) * 8) as u64
    }

    /// Address of `C[i][j]` (row-major).
    pub fn c_addr(&self, i: usize, j: usize) -> u64 {
        self.c + ((i * self.n + j) * 8) as u64
    }

    /// Address of `B[k][j]` under the variant's layout.
    pub fn b_addr(&self, k: usize, j: usize) -> u64 {
        match self.variant {
            GemmVariant::GsDram { .. } => {
                // 8×8 tiles, tile-row-major; each tile is 512 B (8 lines).
                let tiles_per_row = self.n / 8;
                let tile = (k / 8) * tiles_per_row + (j / 8);
                self.b + (tile * 512 + (k % 8) * 64 + (j % 8) * 8) as u64
            }
            _ => self.b + ((k * self.n + j) * 8) as u64,
        }
    }

    /// The `pattload` address that gathers tile-column `j` words
    /// `k..k+2` of B's 8×8 tile containing `(k, j)` (Figure 8 address
    /// arithmetic: line of "tuple" `j`, offset `8k` within the gathered
    /// line).
    pub fn b_gather_addr(&self, k: usize, j: usize) -> u64 {
        let tiles_per_row = self.n / 8;
        let tile = (k / 8) * tiles_per_row + (j / 8);
        self.b + (tile * 512 + (j % 8) * 64 + (k % 8) * 8) as u64
    }

    /// Populates A and B with deterministic values (`i*n+k` style).
    pub fn init(&self, m: &mut Machine) {
        for i in 0..self.n {
            for k in 0..self.n {
                m.poke(self.a_addr(i, k), (i * self.n + k) as u64);
                m.poke(self.b_addr(i, k), (i * self.n + k + 1) as u64);
            }
        }
    }
}

/// Builds the op stream for one GEMM run.
///
/// `sample_outer` limits the outermost loop (i rows for naive, row-tile
/// stripes otherwise) to the given count; the returned factor scales the
/// measured cycles back to the full problem (used by the Figure 13
/// harness for n ≥ 256). `None` simulates everything (factor 1).
// gsdram-lint: allow(D5) sampling scale factor scales reported cycles, not simulated state
pub fn program(g: Gemm, sample_outer: Option<usize>) -> (IterProgram, f64) {
    match g.variant {
        GemmVariant::Naive => naive(g, sample_outer),
        GemmVariant::Tiled { tile } => tiled_scalar(g, tile, sample_outer),
        GemmVariant::TiledSimd { tile } => tiled_simd(g, tile, sample_outer, false),
        GemmVariant::GsDram { tile } => tiled_simd(g, tile, sample_outer, true),
    }
}

// gsdram-lint: allow(D5) sampling scale factor scales reported cycles, not simulated state
fn naive(g: Gemm, sample: Option<usize>) -> (IterProgram, f64) {
    let n = g.n;
    let rows = sample.map_or(n, |s| s.min(n));
    // gsdram-lint: allow(D5) sampling scale factor scales reported cycles, not simulated state
    let scale = n as f64 / rows as f64;
    // for i { for j { acc = 0; for k { acc += A[i][k] * B[k][j] } } }
    let ops = (0..rows).flat_map(move |i| {
        (0..n).flat_map(move |j| {
            (0..n).step_by(8).flat_map(move |k| {
                // One A line per 8 k; 8 B loads (column walk); 8 fma + idx.
                let mut v: Vec<Op> = Vec::with_capacity(10);
                v.push(Op::Load {
                    pc: 0xA00,
                    addr: g.a_addr(i, k),
                    pattern: PatternId(0),
                });
                for kk in 0..8 {
                    v.push(Op::Load {
                        pc: 0xB00,
                        addr: g.b_addr(k + kk, j),
                        pattern: PatternId(0),
                    });
                }
                v.push(Op::Compute(11)); // 8 fma + 3 loop/address ops
                v
            })
        })
    });
    (IterProgram::new(Box::new(ops)), scale)
}

// gsdram-lint: allow(D5) sampling scale factor scales reported cycles, not simulated state
fn tiled_scalar(g: Gemm, t: usize, sample: Option<usize>) -> (IterProgram, f64) {
    let n = g.n;
    let stripes = n / t;
    let run = sample.map_or(stripes, |s| s.min(stripes));
    // gsdram-lint: allow(D5) sampling scale factor scales reported cycles, not simulated state
    let scale = stripes as f64 / run as f64;
    let ops = (0..run).flat_map(move |ti| {
        (0..n / t).flat_map(move |tj| {
            (0..n / t).flat_map(move |tk| {
                (0..t).flat_map(move |jj| {
                    let j = tj * t + jj;
                    (0..t).step_by(8).flat_map(move |ks| {
                        let k = tk * t + ks;
                        (0..t).step_by(8).flat_map(move |is| {
                            let i0 = ti * t + is;
                            // 8 scalar B loads, then per row: A line +
                            // 8 scalar fma.
                            let mut v: Vec<Op> = Vec::with_capacity(18);
                            for kk in 0..8 {
                                v.push(Op::Load {
                                    pc: 0xB10,
                                    addr: g.b_addr(k + kk, j),
                                    pattern: PatternId(0),
                                });
                            }
                            for r in 0..8 {
                                v.push(Op::Load {
                                    pc: 0xA10 + r as u64,
                                    addr: g.a_addr(i0 + r, k),
                                    pattern: PatternId(0),
                                });
                                v.push(Op::Compute(11));
                            }
                            v.push(Op::Compute(2));
                            v
                        })
                    })
                })
            })
        })
    });
    (IterProgram::new(Box::new(ops)), scale)
}

/// The shared tiled-SIMD structure; `gs` selects the B-column access:
/// software gather (8 scalar loads + 4 packs) vs 4 pattern-7 `pattload`s
/// into xmm registers.
// gsdram-lint: allow(D5) sampling scale factor scales reported cycles, not simulated state
fn tiled_simd(g: Gemm, t: usize, sample: Option<usize>, gs: bool) -> (IterProgram, f64) {
    let n = g.n;
    let stripes = n / t;
    let run = sample.map_or(stripes, |s| s.min(stripes));
    // gsdram-lint: allow(D5) sampling scale factor scales reported cycles, not simulated state
    let scale = stripes as f64 / run as f64;
    let ops = (0..run).flat_map(move |ti| {
        (0..n / t).flat_map(move |tj| {
            (0..n / t).flat_map(move |tk| {
                (0..t).flat_map(move |jj| {
                    let j = tj * t + jj;
                    (0..t).step_by(8).flat_map(move |ks| {
                        let k = tk * t + ks;
                        (0..t).step_by(8).flat_map(move |is| {
                            let i0 = ti * t + is;
                            let mut v: Vec<Op> = Vec::with_capacity(16);
                            if gs {
                                // 4 × pattload xmm: B[k..k+8][j], two
                                // column values per load, one gathered
                                // line for all four.
                                for kk in (0..8).step_by(2) {
                                    v.push(Op::Load16 {
                                        pc: 0xB20,
                                        addr: g.b_gather_addr(k + kk, j),
                                        pattern: PatternId(7),
                                    });
                                }
                            } else {
                                // Software gather: 8 scalar loads + 4
                                // packs (unpcklpd).
                                for kk in 0..8 {
                                    v.push(Op::Load {
                                        pc: 0xB30,
                                        addr: g.b_addr(k + kk, j),
                                        pattern: PatternId(0),
                                    });
                                }
                                v.push(Op::Compute(4));
                            }
                            // 8 A rows × (one A line as 4 xmm loads → 1
                            // line access + 3 issue slots, 4 SIMD fma).
                            for r in 0..8 {
                                v.push(Op::Load16 {
                                    pc: 0xA20 + r as u64,
                                    addr: g.a_addr(i0 + r, k),
                                    pattern: PatternId(0),
                                });
                                v.push(Op::Compute(7));
                            }
                            v.push(Op::Compute(2));
                            v
                        })
                    })
                })
            })
        })
    });
    (IterProgram::new(Box::new(ops)), scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::config::SystemConfig;
    use gsdram_system::machine::StopWhen;
    use gsdram_system::ops::Program;

    fn run(n: usize, variant: GemmVariant) -> (u64, gsdram_system::RunReport) {
        let mut m = Machine::new(SystemConfig::table1(1, 32 << 20));
        let g = Gemm::create(&mut m, n, variant);
        g.init(&mut m);
        let (mut p, scale) = program(g, None);
        let r = {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone)
        };
        assert_eq!(scale, 1.0);
        ((r.cpu_cycles as f64 * scale) as u64, r)
    }

    #[test]
    fn b_layouts_are_bijective() {
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20));
        let g = Gemm::create(&mut m, 32, GemmVariant::GsDram { tile: 32 });
        let mut seen = std::collections::HashSet::new();
        for k in 0..32 {
            for j in 0..32 {
                assert!(
                    seen.insert(g.b_addr(k, j)),
                    "duplicate address for ({k},{j})"
                );
            }
        }
    }

    #[test]
    fn gather_addr_reads_tile_columns() {
        // Functional check: pattern-7 loads at b_gather_addr return
        // B[k][j] for the tiled layout.
        let mut m = Machine::new(SystemConfig::table1(1, 8 << 20));
        let g = Gemm::create(&mut m, 16, GemmVariant::GsDram { tile: 16 });
        g.init(&mut m);
        let mut ops = Vec::new();
        for (k, j) in [(0, 0), (3, 5), (9, 2), (15, 15), (8, 8)] {
            ops.push(Op::Load {
                pc: 1,
                addr: g.b_gather_addr(k, j),
                pattern: PatternId(7),
            });
        }
        let mut p = gsdram_system::ops::ScriptedProgram::new(ops);
        {
            let mut programs: Vec<&mut dyn Program> = vec![&mut p];
            m.run(&mut programs, StopWhen::AllDone);
        }
        let want: Vec<u64> = [(0usize, 0usize), (3, 5), (9, 2), (15, 15), (8, 8)]
            .iter()
            .map(|&(k, j)| (k * 16 + j + 1) as u64)
            .collect();
        assert_eq!(p.loaded_values(), &want[..]);
    }

    #[test]
    fn tiling_beats_naive_at_scale() {
        let (naive, _) = run(64, GemmVariant::Naive);
        let (tiled, _) = run(64, GemmVariant::TiledSimd { tile: 32 });
        assert!(tiled < naive, "tiled {tiled} !< naive {naive}");
    }

    #[test]
    fn gsdram_beats_tiled_simd() {
        let (simd, r_simd) = run(64, GemmVariant::TiledSimd { tile: 32 });
        let (gs, r_gs) = run(64, GemmVariant::GsDram { tile: 32 });
        assert!(gs < simd, "gs {gs} !< simd {simd}");
        // The win comes from fewer instructions (no software gather).
        assert!(r_gs.ops < r_simd.ops);
        // Improvement should be in the single-digit-to-teens percent
        // range, not a blowout (the baseline is L1-resident).
        let gain = 1.0 - gs as f64 / simd as f64;
        assert!(gain > 0.02 && gain < 0.30, "gain {gain}");
    }

    #[test]
    fn simd_beats_scalar_tiled() {
        let (scalar, _) = run(64, GemmVariant::Tiled { tile: 32 });
        let (simd, _) = run(64, GemmVariant::TiledSimd { tile: 32 });
        assert!(simd < scalar);
    }

    #[test]
    fn sampling_scales_consistently() {
        let mut m = Machine::new(SystemConfig::table1(1, 32 << 20));
        let g = Gemm::create(&mut m, 64, GemmVariant::TiledSimd { tile: 16 });
        g.init(&mut m);
        let (_p, scale) = program(g, Some(2));
        assert_eq!(scale, 2.0); // 4 stripes, 2 simulated
    }

    #[test]
    fn variant_labels() {
        assert_eq!(GemmVariant::Naive.label(), "Naive");
        assert_eq!(GemmVariant::GsDram { tile: 32 }.label(), "GS-DRAM(32)");
        assert_eq!(
            GemmVariant::TiledSimd { tile: 16 }.label(),
            "Tiled+SIMD(16)"
        );
    }
}
