//! `gsdram-trace-check` — validates a Chrome trace-event JSON file
//! produced by `gsdram-sim trace` (or any `chrome_trace` export).
//!
//! Checks, exiting non-zero on the first failure:
//!
//! * the file parses as JSON and has a non-empty `traceEvents` array;
//! * every event is an object with `ph`, `pid`, `tid` and a numeric
//!   `ts`;
//! * timestamps are monotone non-decreasing in array order;
//! * `dur` (when present) is non-negative and only on `"X"` slices;
//! * at least one `"X"` slice exists (a trace with no DRAM service at
//!   all is almost certainly a wiring bug).
//!
//! ```text
//! gsdram-trace-check trace.json
//! ```

// Binary target: printing the verdict is the job.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

use gsdram_core::json::Json;

fn check(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing 'traceEvents' member")?
        .as_array()
        .ok_or("'traceEvents' is not an array")?;
    if events.is_empty() {
        return Err("'traceEvents' is empty".into());
    }
    let mut last_ts = f64::NEG_INFINITY;
    let mut slices = 0u64;
    let mut counters = 0u64;
    let mut instants = 0u64;
    for (i, e) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        if e.as_object().is_none() {
            return fail("not an object");
        }
        let Some(ph) = e.get("ph").and_then(Json::as_str) else {
            return fail("missing string 'ph'");
        };
        if e.get("pid").and_then(Json::as_f64).is_none() {
            return fail("missing numeric 'pid'");
        }
        if e.get("tid").and_then(Json::as_f64).is_none() {
            return fail("missing numeric 'tid'");
        }
        let Some(ts) = e.get("ts").and_then(Json::as_f64) else {
            return fail("missing numeric 'ts'");
        };
        if ts < last_ts {
            return fail(&format!("ts {ts} goes backwards (previous {last_ts})"));
        }
        last_ts = ts;
        match e.get("dur").map(|d| d.as_f64()) {
            None => {}
            Some(Some(d)) if d >= 0.0 && ph == "X" => {}
            Some(Some(_)) if ph != "X" => return fail("'dur' on a non-X event"),
            _ => return fail("bad 'dur'"),
        }
        match ph {
            "X" => slices += 1,
            "C" => counters += 1,
            "i" => instants += 1,
            _ => {}
        }
    }
    if slices == 0 {
        return Err("no complete ('X') slices — no DRAM request was traced".into());
    }
    Ok(format!(
        "ok: {} events ({slices} slices, {counters} counter samples, {instants} instants), ts 0..{last_ts}",
        events.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: gsdram-trace-check <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(summary) => {
            println!("{path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_minimal_valid_trace() {
        let text = r#"{"traceEvents":[
            {"name":"read","ph":"X","pid":0,"tid":0,"ts":5,"dur":30},
            {"name":"q","ph":"C","pid":0,"tid":0,"ts":6,"args":{"depth":1}}
        ]}"#;
        assert!(check(text).is_ok());
    }

    #[test]
    fn rejects_backwards_timestamps_and_missing_fields() {
        let backwards = r#"{"traceEvents":[
            {"ph":"X","pid":0,"tid":0,"ts":10,"dur":1},
            {"ph":"X","pid":0,"tid":0,"ts":9,"dur":1}
        ]}"#;
        assert!(check(backwards).unwrap_err().contains("backwards"));
        assert!(check("{}").is_err());
        assert!(check(r#"{"traceEvents":[]}"#).is_err());
        assert!(check(r#"{"traceEvents":[{"pid":0,"tid":0,"ts":1}]}"#).is_err());
    }
}
