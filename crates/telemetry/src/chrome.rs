//! Chrome trace-event JSON export.
//!
//! [`chrome_trace`] turns one or more [`Telemetry`] captures into the
//! Chrome trace-event format (the `{"traceEvents":[...]}` object
//! flavour), loadable in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`:
//!
//! * every retained [`SimEvent::DramService`] becomes a complete
//!   (`"ph":"X"`) slice on the channel's track, spanning arrival to
//!   data-burst completion;
//! * every retained [`SimEvent::DramCommand`] and
//!   [`SimEvent::GatherSplit`] becomes an instant (`"ph":"i"`) event;
//! * the queue occupancy timeline becomes counter (`"ph":"C"`) events.
//!
//! Timestamps: one trace microsecond per memory-controller cycle, so
//! displayed durations are DDR3-1600 cycle counts read as µs. Cache
//! events carry no timestamp and are omitted here (their counts appear
//! in the stats tree instead). Events are emitted sorted by timestamp
//! (stable on ties), so the output's `ts` sequence is monotone
//! non-decreasing — a property `gsdram-trace-check` verifies.
//!
//! The writer is hand-rolled in the same dep-free style as the
//! `gsdram-core::stats` codec; output is deterministic for identical
//! captures.
//!
//! [`SimEvent::DramService`]: gsdram_core::port::SimEvent::DramService
//! [`SimEvent::DramCommand`]: gsdram_core::port::SimEvent::DramCommand
//! [`SimEvent::GatherSplit`]: gsdram_core::port::SimEvent::GatherSplit

use std::fmt::Write as _;

use gsdram_core::port::{DramCmdKind, RowOutcome, SimEvent};

use crate::collector::Telemetry;

/// One pre-rendered trace event, sortable by timestamp.
struct Entry {
    ts: u64,
    seq: usize,
    json: String,
}

fn escape(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn cmd_name(kind: DramCmdKind) -> &'static str {
    match kind {
        DramCmdKind::Activate => "ACT",
        DramCmdKind::Precharge => "PRE",
        DramCmdKind::Read => "READ",
        DramCmdKind::Write => "WRITE",
        DramCmdKind::Refresh => "REF",
    }
}

fn outcome_name(outcome: RowOutcome) -> &'static str {
    match outcome {
        RowOutcome::Hit => "hit",
        RowOutcome::Closed => "closed",
        RowOutcome::Conflict => "conflict",
    }
}

/// Renders `runs` — `(run id, telemetry)` pairs — as one Chrome
/// trace-event JSON document. Each run becomes one process (`pid` =
/// run index); each DRAM channel one thread within it.
pub fn chrome_trace(runs: &[(String, &Telemetry)]) -> String {
    let mut entries: Vec<Entry> = Vec::new();
    let mut seq = 0usize;
    let mut push = |entries: &mut Vec<Entry>, ts: u64, json: String| {
        entries.push(Entry { ts, seq, json });
        seq += 1;
    };

    for (pid, (run_id, t)) in runs.iter().enumerate() {
        // Process/thread naming metadata (ts 0, sorts first).
        let mut meta = String::new();
        let _ = write!(
            meta,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"ts\":0,\"args\":{{\"name\":"
        );
        escape(&mut meta, run_id);
        meta.push_str("}}");
        push(&mut entries, 0, meta);
        for ch in 0..t.channels().max(1) {
            let mut meta = String::new();
            let _ = write!(
                meta,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{ch},\"ts\":0,\"args\":{{\"name\":\"dram ch{ch}\"}}}}"
            );
            push(&mut entries, 0, meta);
        }

        for ev in t.events() {
            match *ev {
                SimEvent::DramService {
                    id,
                    channel,
                    bank,
                    pattern,
                    write,
                    outcome,
                    queue_depth,
                    arrived_at_mem,
                    done_at_mem,
                } => {
                    let dur = done_at_mem.saturating_sub(arrived_at_mem);
                    let name = if write { "write" } else { "read" };
                    let mut j = String::new();
                    let _ = write!(
                        j,
                        "{{\"name\":\"{name}\",\"cat\":\"dram\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{channel},\"ts\":{arrived_at_mem},\"dur\":{dur},\"args\":{{\"id\":{id},\"bank\":{bank},\"pattern\":{},\"row\":\"{}\",\"queue_depth\":{queue_depth}}}}}",
                        pattern.0,
                        outcome_name(outcome)
                    );
                    push(&mut entries, arrived_at_mem, j);
                }
                SimEvent::DramCommand {
                    channel,
                    rank,
                    bank,
                    kind,
                    at_mem,
                } => {
                    let mut j = String::new();
                    let _ = write!(
                        j,
                        "{{\"name\":\"{}\",\"cat\":\"cmd\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{channel},\"ts\":{at_mem},\"args\":{{\"rank\":{rank},\"bank\":{}}}}}",
                        cmd_name(kind),
                        bank.map_or(-1i64, |b| b as i64)
                    );
                    push(&mut entries, at_mem, j);
                }
                SimEvent::GatherSplit {
                    addr,
                    pattern,
                    subs,
                    at_mem,
                } => {
                    let mut j = String::new();
                    let _ = write!(
                        j,
                        "{{\"name\":\"gather split\",\"cat\":\"dram\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{pid},\"tid\":0,\"ts\":{at_mem},\"args\":{{\"addr\":{addr},\"pattern\":{},\"subs\":{subs}}}}}",
                        pattern.0
                    );
                    push(&mut entries, at_mem, j);
                }
                // Queue depth comes from the occupancy timeline below;
                // cache events carry no timestamp and are counted in
                // the stats tree instead.
                _ => {}
            }
        }

        for ch in 0..t.channels() {
            for (at, depth) in t.occupancy(ch) {
                let mut j = String::new();
                let _ = write!(
                    j,
                    "{{\"name\":\"queue ch{ch}\",\"cat\":\"dram\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{ch},\"ts\":{at},\"args\":{{\"depth\":{depth}}}}}"
                );
                push(&mut entries, at, j);
            }
        }
    }

    entries.sort_by_key(|e| (e.ts, e.seq));

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&e.json);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_core::json::Json;
    use gsdram_core::PatternId;

    fn capture() -> Telemetry {
        let mut t = Telemetry::with_capacity(64);
        t.on_event(&SimEvent::DramEnqueue {
            id: 1,
            channel: 0,
            addr: 64,
            pattern: PatternId(7),
            write: false,
            at_mem: 10,
        });
        t.on_event(&SimEvent::DramCommand {
            channel: 0,
            rank: 0,
            bank: Some(3),
            kind: DramCmdKind::Activate,
            at_mem: 11,
        });
        t.on_event(&SimEvent::DramService {
            id: 1,
            channel: 0,
            bank: 3,
            pattern: PatternId(7),
            write: false,
            outcome: RowOutcome::Closed,
            queue_depth: 1,
            arrived_at_mem: 10,
            done_at_mem: 40,
        });
        t.on_event(&SimEvent::DramComplete { id: 1, at_mem: 40 });
        t
    }

    #[test]
    fn trace_parses_and_timestamps_are_monotone() {
        let t = capture();
        let text = chrome_trace(&[("demo".to_string(), &t)]);
        let doc = Json::parse(&text).expect("well-formed JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(events.len() >= 4);
        let mut last = 0.0f64;
        for e in events {
            let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
            assert!(ts >= last, "timestamps must be monotone non-decreasing");
            last = ts;
            assert!(e.get("ph").and_then(Json::as_str).is_some());
            assert!(e.get("pid").and_then(Json::as_f64).is_some());
        }
        // The service slice is present with its duration.
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one X slice");
        assert_eq!(slice.get("dur").and_then(Json::as_f64), Some(30.0));
        assert_eq!(
            slice
                .get("args")
                .and_then(|a| a.get("row"))
                .and_then(Json::as_str),
            Some("closed")
        );
    }

    #[test]
    fn identical_captures_render_identically() {
        let a = chrome_trace(&[("x".to_string(), &capture())]);
        let b = chrome_trace(&[("x".to_string(), &capture())]);
        assert_eq!(a, b);
    }
}
