//! Log-bucketed (HDR-style) histograms with exact merge.
//!
//! A [`Histogram`] buckets `u64` samples log-linearly: values below
//! 2³ get one exact bucket each; above that, each power-of-two octave
//! is split into 2³ equal sub-buckets, so relative bucket error is
//! bounded by 1/8 everywhere while the whole `u64` range needs at most
//! 496 buckets. Bucket placement is a pure function of the value, so
//! merging two histograms (element-wise bucket addition plus
//! min/max/sum/count combination) is *exact*: the merge of two
//! recorded streams equals the histogram of their concatenation,
//! bit-for-bit. That property is what lets per-channel histograms be
//! folded into whole-machine totals without losing determinism.

use gsdram_core::stats::{ReportStats, StatsNode};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: usize = 3;
/// Buckets per octave.
const SUB_COUNT: usize = 1 << SUB_BITS;

/// A log-linear histogram of `u64` samples. See the [module
/// docs](self) for the bucketing scheme.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    /// Saturating sum of all samples.
    sum: u64,
    min: u64,
    max: u64,
    /// Bucket counts, grown on demand to the highest touched index —
    /// identical streams always produce identical vectors.
    buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < (1 << SUB_BITS) {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros() as usize;
            let octave = msb - SUB_BITS + 1;
            let sub = ((value >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
            octave * SUB_COUNT + sub
        }
    }

    /// The inclusive `(low, high)` value range of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < SUB_COUNT {
            (index as u64, index as u64)
        } else {
            let octave = index / SUB_COUNT;
            let sub = (index % SUB_COUNT) as u64;
            let msb = octave + SUB_BITS - 1;
            let width = 1u64 << (msb - SUB_BITS);
            let lo = (1u64 << msb) + sub * width;
            // `lo + (width - 1)` never overflows (the top bucket ends
            // exactly at `u64::MAX`), but `lo + width` would.
            (lo, lo + (width - 1))
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
    }

    /// Folds `other` into this histogram. Exact: the result equals the
    /// histogram of the two underlying sample streams concatenated.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as an upper bound: the inclusive
    /// high bound of the bucket holding the sample of that rank,
    /// clamped to the recorded maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets in ascending value order as
    /// `(low, high, count)` with inclusive bounds.
    pub fn nonempty(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

impl ReportStats for Histogram {
    /// Summary counters (`count`/`sum`/`min`/`max`), derived gauges
    /// (`mean`/`p50`/`p95`/`p99`) and one `le_<high>` counter per
    /// non-empty bucket under a `buckets` child, ascending.
    fn stats_node(&self, name: &str) -> StatsNode {
        let mut buckets = StatsNode::new("buckets");
        for (_, hi, c) in self.nonempty() {
            buckets = buckets.counter(format!("le_{hi}"), c);
        }
        StatsNode::new(name)
            .counter("count", self.count)
            .counter("sum", self.sum)
            .counter("min", self.min)
            .counter("max", self.max)
            .gauge("mean", self.mean())
            .gauge("p50", self.quantile(0.50) as f64)
            .gauge("p95", self.quantile(0.95) as f64)
            .gauge("p99", self.quantile(0.99) as f64)
            .child(buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_below_eight_get_exact_buckets() {
        for v in 0..8u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn first_octave_is_still_exact() {
        // msb = 3 buckets have width 1: 8..=15 map to indices 8..=15.
        for v in 8..16u64 {
            let i = Histogram::bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(Histogram::bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        // Every power of two starts its bucket; neighbours share or
        // split buckets exactly as the bounds say.
        let probes = [
            0u64,
            1,
            7,
            8,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            4096,
            1 << 20,
            (1 << 20) + 1,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let i = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo},{hi}]");
        }
        // 16 and 17 share one width-2 bucket; 15 and 16 do not.
        assert_eq!(Histogram::bucket_index(16), Histogram::bucket_index(17));
        assert_ne!(Histogram::bucket_index(15), Histogram::bucket_index(16));
        // Powers of two open their bucket.
        for k in 3..=63u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_bounds(Histogram::bucket_index(v)).0, v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous() {
        // Consecutive buckets tile the value space with no gap/overlap.
        let mut prev_hi = None;
        for i in 0..Histogram::bucket_index(1 << 12) {
            let (lo, hi) = Histogram::bucket_bounds(i);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            assert!(lo <= hi);
            prev_hi = Some(hi);
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.min(), h.max(), h.mean() as u64), (0, 0, 0));
        for v in [5u64, 100, 9, 3000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 3114);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 3000);
        assert!((h.mean() - 778.5).abs() < 1e-9);
    }

    #[test]
    fn merge_is_exact() {
        // merge(a, b) must equal recording the concatenated stream.
        let xs: Vec<u64> = (0..200).map(|i| (i * i * 37) % 5000).collect();
        let (left, right) = xs.split_at(77);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for &v in left {
            a.record(v);
        }
        for &v in right {
            b.record(v);
        }
        for &v in &xs {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is the identity, either way round.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut empty = Histogram::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to the 1st sample
        let p50 = h.quantile(0.5);
        assert!((450..=575).contains(&p50), "p50 {p50} out of range");
        assert!(h.quantile(0.99) >= p50);
    }

    #[test]
    fn stats_node_lists_nonempty_buckets_ascending() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(20);
        let node = h.stats_node("lat");
        assert_eq!(node.counter_at("count"), Some(3));
        assert_eq!(node.counter_at("buckets/le_3"), Some(2));
        let buckets = node.descend("buckets").unwrap();
        assert_eq!(buckets.values().len(), 2);
        let keys: Vec<&str> = buckets.values().iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted_by_value: Vec<u64> = keys
            .iter()
            .map(|k| k.strip_prefix("le_").unwrap().parse().unwrap())
            .collect();
        let orig = sorted_by_value.clone();
        sorted_by_value.sort_unstable();
        assert_eq!(orig, sorted_by_value);
    }
}
