//! # gsdram-telemetry
//!
//! Telemetry for the GS-DRAM simulator: the first-class consumer of the
//! [`SimEvent`] observer contract defined in `gsdram-core::port`.
//!
//! The paper's evaluation (§5) turns on *where* a gather's latency goes
//! — chip conflicts, row-buffer hits vs. misses, bank queueing — and an
//! aggregate mean cannot show that. This crate provides:
//!
//! * [`hist`] — log-bucketed (HDR-style) [`Histogram`]s with exact
//!   merge: element-wise bucket addition, so merging per-channel
//!   histograms is bit-identical to having recorded one stream;
//! * [`collector`] — a bounded ring-buffer [`Collector`] that attaches
//!   to a machine via `Machine::attach_observer` and folds the event
//!   stream into histograms, per-pattern and per-bank breakdowns
//!   (row-hit streaks, chip-conflict counts) and a DRAM queue
//!   occupancy timeline;
//! * [`chrome`] — an exporter to Chrome trace-event JSON, loadable in
//!   Perfetto (`ui.perfetto.dev`) or `chrome://tracing`;
//!
//! Generic JSON parsing lives in `gsdram_core::json` (promoted out of
//! this crate so downstream crates don't reach into telemetry for a
//! codec); the `gsdram-trace-check` binary and the trace tests use it.
//!
//! Everything here is observation-only: attaching a collector never
//! changes simulated timing, and the figure JSON of an observed run is
//! byte-identical to an unobserved one (a property the system and
//! bench test suites pin).
//!
//! ```
//! use gsdram_core::port::{EventHub, SimEvent, DramCmdKind, RowOutcome};
//! use gsdram_core::PatternId;
//! use gsdram_telemetry::Collector;
//!
//! let collector = Collector::with_capacity(1024);
//! let mut hub = EventHub::new();
//! hub.attach(collector.sink());
//! hub.emit(|| SimEvent::DramService {
//!     id: 1, channel: 0, bank: 3, pattern: PatternId(7), write: false,
//!     outcome: RowOutcome::Hit, queue_depth: 2,
//!     arrived_at_mem: 100, done_at_mem: 130,
//! });
//! let t = collector.snapshot();
//! assert_eq!(t.read_latency(0).unwrap().count(), 1);
//! ```
//!
//! [`SimEvent`]: gsdram_core::port::SimEvent
//! [`Histogram`]: hist::Histogram
//! [`Collector`]: collector::Collector

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod collector;
pub mod hist;

pub use chrome::chrome_trace;
pub use collector::{Collector, DecisionStats, Telemetry, DEFAULT_CAPACITY};
pub use hist::Histogram;
