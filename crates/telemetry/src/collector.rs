//! The telemetry collector: an [`EventSink`] that folds the
//! [`SimEvent`] stream into bounded traces and histograms.
//!
//! A [`Collector`] is a cheap shared handle (the machine owns one clone
//! inside its event hub, the caller keeps another to read results). It
//! feeds a [`Telemetry`], which keeps:
//!
//! * a bounded ring buffer of raw events (oldest dropped first, with a
//!   drop counter — telemetry never grows without bound);
//! * per-channel read-latency and queue-depth [`Histogram`]s;
//! * per-pattern breakdowns (reads/writes, row outcomes, chip-conflict
//!   counts from gather splits, a latency histogram);
//! * per-bank breakdowns (row outcomes, current/longest row-hit
//!   streaks, activates/precharges);
//! * a bounded per-channel DRAM queue occupancy timeline.
//!
//! Collection is observation-only: the collector sees events *after*
//! all timing decisions are made, so an observed run simulates exactly
//! like an unobserved one.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use gsdram_core::port::{DramCmdKind, EventSink, RowOutcome, SchedDecisionKind, SimEvent};
use gsdram_core::stats::{ReportStats, StatsNode};

use crate::hist::Histogram;

/// Default ring-buffer capacity (raw events and, per channel,
/// occupancy samples).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Per-pattern service breakdown.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatternStats {
    /// Reads served with this pattern.
    pub reads: u64,
    /// Writes served with this pattern.
    pub writes: u64,
    /// Column commands that hit the open row.
    pub row_hits: u64,
    /// Accesses to a precharged bank.
    pub row_closed: u64,
    /// Accesses that closed another row first.
    pub row_conflicts: u64,
    /// Extra per-line sub-requests gathers of this pattern expanded
    /// into (the Impulse baseline's chip conflicts, paper §3).
    pub chip_conflicts: u64,
    /// Read latencies, memory cycles.
    pub read_latency: Histogram,
}

/// Back-end engine decisions observed, folded from
/// [`SimEvent::SchedDecision`] events (all channels merged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Row hits serviced ahead of an older pending request.
    pub row_hit_bypasses: u64,
    /// Starvation-cap promotions of the oldest request.
    pub starvation_promotions: u64,
    /// Batch-scheduler bank-cursor rotations.
    pub batch_rotations: u64,
    /// Write-drain mode entries.
    pub drain_entries: u64,
    /// Write-drain mode exits.
    pub drain_exits: u64,
}

/// Per-bank service breakdown, keyed by `(channel, bank)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BankStats {
    /// Column commands that hit the open row.
    pub row_hits: u64,
    /// Accesses to a precharged bank.
    pub row_closed: u64,
    /// Accesses that closed another row first.
    pub row_conflicts: u64,
    /// ACTIVATE commands issued to this bank.
    pub activates: u64,
    /// PRECHARGE commands issued to this bank.
    pub precharges: u64,
    /// Row hits served since the last non-hit (in progress).
    pub current_streak: u64,
    /// Longest run of consecutive row hits observed.
    pub longest_streak: u64,
}

impl BankStats {
    fn note_outcome(&mut self, outcome: RowOutcome) {
        match outcome {
            RowOutcome::Hit => {
                self.row_hits += 1;
                self.current_streak += 1;
                self.longest_streak = self.longest_streak.max(self.current_streak);
            }
            RowOutcome::Closed => {
                self.row_closed += 1;
                self.current_streak = 0;
            }
            RowOutcome::Conflict => {
                self.row_conflicts += 1;
                self.current_streak = 0;
            }
        }
    }
}

/// Everything one collector gathered. Plain data: `Clone + Send`, so
/// sweep workers can ship snapshots back to the parent thread.
#[derive(Debug, Clone)]
pub struct Telemetry {
    capacity: usize,
    /// Most recent raw events, oldest first.
    events: VecDeque<SimEvent>,
    /// Events pushed out of the ring.
    dropped: u64,
    /// Every event ever seen (kept + dropped).
    total_events: u64,
    /// Per-channel read latency (arrival → data burst end), mem cycles.
    read_latency: Vec<Histogram>,
    /// Per-channel controller queue depth sampled at column issue.
    queue_depth: Vec<Histogram>,
    /// Per-channel `(at_mem, depth)` occupancy samples, oldest dropped
    /// first past `capacity`.
    occupancy: Vec<VecDeque<(u64, u32)>>,
    /// Occupancy samples pushed out of their timelines.
    occupancy_dropped: u64,
    /// Running queue depth per channel (from enqueue/complete events).
    depth_now: Vec<u32>,
    /// Channel of each in-flight request id (completions do not carry
    /// the channel).
    inflight: BTreeMap<u64, usize>,
    /// Per-pattern breakdowns, keyed by pattern id.
    patterns: BTreeMap<u8, PatternStats>,
    /// Per-bank breakdowns, keyed by `(channel, bank)`.
    banks: BTreeMap<(usize, usize), BankStats>,
    /// REFRESH commands observed (all banks, per channel merged).
    refreshes: u64,
    /// Gather-split events observed.
    gather_splits: u64,
    /// Cache fill events observed.
    cache_fills: u64,
    /// Cache eviction events observed.
    cache_evicts: u64,
    /// Coherence overlap flushes observed.
    overlap_flushes: u64,
    /// Scheduler/write-drain engine decisions observed.
    decisions: DecisionStats,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Telemetry {
    /// An empty telemetry store whose ring buffers keep at most
    /// `capacity` entries (0 keeps histograms/breakdowns only).
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
            total_events: 0,
            read_latency: Vec::new(),
            queue_depth: Vec::new(),
            occupancy: Vec::new(),
            occupancy_dropped: 0,
            depth_now: Vec::new(),
            inflight: BTreeMap::new(),
            patterns: BTreeMap::new(),
            banks: BTreeMap::new(),
            refreshes: 0,
            gather_splits: 0,
            cache_fills: 0,
            cache_evicts: 0,
            overlap_flushes: 0,
            decisions: DecisionStats::default(),
        }
    }

    fn grow_channel(&mut self, ch: usize) {
        if ch >= self.read_latency.len() {
            self.read_latency.resize_with(ch + 1, Histogram::new);
            self.queue_depth.resize_with(ch + 1, Histogram::new);
            self.occupancy.resize_with(ch + 1, VecDeque::new);
            self.depth_now.resize(ch + 1, 0);
        }
    }

    fn sample_occupancy(&mut self, ch: usize, at: u64) {
        let depth = self.depth_now[ch];
        let lane = &mut self.occupancy[ch];
        if self.capacity == 0 {
            return;
        }
        if lane.len() == self.capacity {
            lane.pop_front();
            self.occupancy_dropped += 1;
        }
        lane.push_back((at, depth));
    }

    /// Folds one event into the store.
    pub fn on_event(&mut self, ev: &SimEvent) {
        self.total_events += 1;
        if self.capacity > 0 {
            if self.events.len() == self.capacity {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(*ev);
        } else {
            self.dropped += 1;
        }
        match *ev {
            SimEvent::DramEnqueue {
                id,
                channel,
                at_mem,
                ..
            } => {
                self.grow_channel(channel);
                self.depth_now[channel] += 1;
                self.inflight.insert(id, channel);
                self.sample_occupancy(channel, at_mem);
            }
            SimEvent::DramComplete { id, at_mem } => {
                if let Some(ch) = self.inflight.remove(&id) {
                    self.depth_now[ch] = self.depth_now[ch].saturating_sub(1);
                    self.sample_occupancy(ch, at_mem);
                }
            }
            SimEvent::DramCommand {
                channel,
                bank,
                kind,
                ..
            } => match kind {
                DramCmdKind::Activate => {
                    if let Some(b) = bank {
                        self.banks.entry((channel, b)).or_default().activates += 1;
                    }
                }
                DramCmdKind::Precharge => {
                    if let Some(b) = bank {
                        self.banks.entry((channel, b)).or_default().precharges += 1;
                    }
                }
                DramCmdKind::Refresh => self.refreshes += 1,
                DramCmdKind::Read | DramCmdKind::Write => {}
            },
            SimEvent::DramService {
                channel,
                bank,
                pattern,
                write,
                outcome,
                queue_depth,
                arrived_at_mem,
                done_at_mem,
                ..
            } => {
                self.grow_channel(channel);
                let latency = done_at_mem.saturating_sub(arrived_at_mem);
                self.queue_depth[channel].record(queue_depth as u64);
                let p = self.patterns.entry(pattern.0).or_default();
                match outcome {
                    RowOutcome::Hit => p.row_hits += 1,
                    RowOutcome::Closed => p.row_closed += 1,
                    RowOutcome::Conflict => p.row_conflicts += 1,
                }
                if write {
                    p.writes += 1;
                } else {
                    p.reads += 1;
                    p.read_latency.record(latency);
                    self.read_latency[channel].record(latency);
                }
                self.banks
                    .entry((channel, bank))
                    .or_default()
                    .note_outcome(outcome);
            }
            SimEvent::GatherSplit { pattern, subs, .. } => {
                self.gather_splits += 1;
                self.patterns.entry(pattern.0).or_default().chip_conflicts +=
                    u64::from(subs.saturating_sub(1));
            }
            SimEvent::SchedDecision { kind, .. } => match kind {
                SchedDecisionKind::RowHitBypass => self.decisions.row_hit_bypasses += 1,
                SchedDecisionKind::StarvationPromotion => self.decisions.starvation_promotions += 1,
                SchedDecisionKind::BatchRotation => self.decisions.batch_rotations += 1,
                SchedDecisionKind::DrainEnter => self.decisions.drain_entries += 1,
                SchedDecisionKind::DrainExit => self.decisions.drain_exits += 1,
            },
            SimEvent::CacheFill { .. } => self.cache_fills += 1,
            SimEvent::CacheEvict { .. } => self.cache_evicts += 1,
            SimEvent::OverlapFlush { .. } => self.overlap_flushes += 1,
        }
    }

    /// Scheduler/write-drain engine decisions observed so far.
    pub fn decisions(&self) -> DecisionStats {
        self.decisions
    }

    /// The retained raw events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.events.iter()
    }

    /// Events pushed out of the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Every event ever seen (retained + dropped).
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Channels any DRAM event has touched.
    pub fn channels(&self) -> usize {
        self.read_latency.len()
    }

    /// Read-latency histogram of channel `ch`, if it saw traffic.
    pub fn read_latency(&self, ch: usize) -> Option<&Histogram> {
        self.read_latency.get(ch)
    }

    /// Queue-depth-at-issue histogram of channel `ch`.
    pub fn queue_depth(&self, ch: usize) -> Option<&Histogram> {
        self.queue_depth.get(ch)
    }

    /// `(at_mem, depth)` occupancy samples of channel `ch`, oldest
    /// first (a bounded window of the most recent samples).
    pub fn occupancy(&self, ch: usize) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.occupancy.get(ch).into_iter().flatten().copied()
    }

    /// Per-pattern breakdowns, ascending by pattern id.
    pub fn patterns(&self) -> impl Iterator<Item = (u8, &PatternStats)> {
        self.patterns.iter().map(|(&p, s)| (p, s))
    }

    /// Per-bank breakdowns, ascending by `(channel, bank)`.
    pub fn banks(&self) -> impl Iterator<Item = ((usize, usize), &BankStats)> {
        self.banks.iter().map(|(&k, s)| (k, s))
    }
}

impl ReportStats for Telemetry {
    /// The whole collection as one subtree: event totals, per-channel
    /// histograms, per-pattern and per-bank breakdowns.
    fn stats_node(&self, name: &str) -> StatsNode {
        let mut channels = StatsNode::new("channels");
        for ch in 0..self.channels() {
            channels = channels.child(
                StatsNode::new(format!("ch{ch}"))
                    .child(self.read_latency[ch].stats_node("read_latency"))
                    .child(self.queue_depth[ch].stats_node("queue_depth")),
            );
        }
        let mut patterns = StatsNode::new("patterns");
        for (p, s) in self.patterns() {
            patterns = patterns.child(
                StatsNode::new(format!("p{p}"))
                    .counter("reads", s.reads)
                    .counter("writes", s.writes)
                    .counter("row_hits", s.row_hits)
                    .counter("row_closed", s.row_closed)
                    .counter("row_conflicts", s.row_conflicts)
                    .counter("chip_conflicts", s.chip_conflicts)
                    .child(s.read_latency.stats_node("read_latency")),
            );
        }
        let mut banks = StatsNode::new("banks");
        for ((ch, b), s) in self.banks() {
            banks = banks.child(
                StatsNode::new(format!("ch{ch}_bank{b}"))
                    .counter("row_hits", s.row_hits)
                    .counter("row_closed", s.row_closed)
                    .counter("row_conflicts", s.row_conflicts)
                    .counter("activates", s.activates)
                    .counter("precharges", s.precharges)
                    .counter("longest_hit_streak", s.longest_streak),
            );
        }
        StatsNode::new(name)
            .counter("total_events", self.total_events)
            .counter("retained_events", self.events.len() as u64)
            .counter("dropped_events", self.dropped)
            .counter("refreshes", self.refreshes)
            .counter("gather_splits", self.gather_splits)
            .counter("cache_fills", self.cache_fills)
            .counter("cache_evicts", self.cache_evicts)
            .counter("overlap_flushes", self.overlap_flushes)
            .counter("sched_hit_bypasses", self.decisions.row_hit_bypasses)
            .counter("sched_promotions", self.decisions.starvation_promotions)
            .counter("sched_batch_rotations", self.decisions.batch_rotations)
            .counter("drain_entries", self.decisions.drain_entries)
            .counter("drain_exits", self.decisions.drain_exits)
            .child(channels)
            .child(patterns)
            .child(banks)
    }
}

/// A shared handle to a [`Telemetry`] store that can hand out
/// [`EventSink`] boxes for `Machine::attach_observer`.
///
/// `attach_observer` takes ownership of its sink, so the collector
/// clones an inner `Rc` into the sink closure and keeps another clone
/// for the caller to read results from ([`Collector::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Rc<RefCell<Telemetry>>,
}

impl Collector {
    /// A collector with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A collector whose ring buffers keep at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Collector {
            inner: Rc::new(RefCell::new(Telemetry::with_capacity(capacity))),
        }
    }

    /// A boxed sink feeding this collector — pass to
    /// `Machine::attach_observer` (or any `EventHub::attach`).
    pub fn sink(&self) -> Box<dyn EventSink> {
        let inner = Rc::clone(&self.inner);
        Box::new(move |ev: &SimEvent| inner.borrow_mut().on_event(ev))
    }

    /// A copy of everything collected so far.
    pub fn snapshot(&self) -> Telemetry {
        self.inner.borrow().clone()
    }

    /// Consumes the handle, returning the collected telemetry without
    /// copying when this was the last handle (falls back to a clone if
    /// a sink is still alive).
    pub fn into_telemetry(self) -> Telemetry {
        match Rc::try_unwrap(self.inner) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_core::port::EventHub;
    use gsdram_core::PatternId;

    fn service(id: u64, ch: usize, bank: usize, outcome: RowOutcome, lat: u64) -> SimEvent {
        SimEvent::DramService {
            id,
            channel: ch,
            bank,
            pattern: PatternId(7),
            write: false,
            outcome,
            queue_depth: 3,
            arrived_at_mem: 1000,
            done_at_mem: 1000 + lat,
        }
    }

    #[test]
    fn ring_buffer_is_bounded_and_counts_drops() {
        let mut t = Telemetry::with_capacity(4);
        for id in 0..10 {
            t.on_event(&SimEvent::DramComplete { id, at_mem: id });
        }
        assert_eq!(t.events().count(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.total_events(), 10);
        // The retained window is the most recent events.
        let first = t.events().next().unwrap();
        assert_eq!(*first, SimEvent::DramComplete { id: 6, at_mem: 6 });
    }

    #[test]
    fn service_events_feed_histograms_and_breakdowns() {
        let c = Collector::with_capacity(128);
        let mut hub = EventHub::new();
        hub.attach(c.sink());
        hub.emit(|| service(1, 0, 2, RowOutcome::Closed, 30));
        hub.emit(|| service(2, 0, 2, RowOutcome::Hit, 10));
        hub.emit(|| service(3, 0, 2, RowOutcome::Hit, 10));
        hub.emit(|| service(4, 0, 2, RowOutcome::Conflict, 60));
        hub.emit(|| service(5, 1, 0, RowOutcome::Hit, 12));
        let t = c.snapshot();
        assert_eq!(t.channels(), 2);
        assert_eq!(t.read_latency(0).unwrap().count(), 4);
        assert_eq!(t.read_latency(0).unwrap().max(), 60);
        assert_eq!(t.read_latency(1).unwrap().count(), 1);
        assert_eq!(t.queue_depth(0).unwrap().count(), 4);
        let (p, ps) = t.patterns().next().unwrap();
        assert_eq!(p, 7);
        assert_eq!(ps.reads, 5);
        assert_eq!(ps.row_hits, 3);
        let bank = t.banks().find(|(k, _)| *k == (0, 2)).unwrap().1;
        assert_eq!(bank.row_hits, 2);
        assert_eq!(bank.longest_streak, 2);
        assert_eq!(bank.current_streak, 0, "conflict resets the streak");
    }

    #[test]
    fn occupancy_timeline_tracks_enqueue_and_complete() {
        let mut t = Telemetry::with_capacity(16);
        for id in 0..3u64 {
            t.on_event(&SimEvent::DramEnqueue {
                id,
                channel: 0,
                addr: 0,
                pattern: PatternId(0),
                write: false,
                at_mem: 10 + id,
            });
        }
        t.on_event(&SimEvent::DramComplete { id: 0, at_mem: 50 });
        let samples: Vec<(u64, u32)> = t.occupancy(0).collect();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[2], (12, 3));
        assert_eq!(samples[3], (50, 2));
    }

    #[test]
    fn gather_splits_count_chip_conflicts() {
        let mut t = Telemetry::with_capacity(16);
        t.on_event(&SimEvent::GatherSplit {
            addr: 0,
            pattern: PatternId(7),
            subs: 8,
            at_mem: 5,
        });
        let ps = t.patterns().next().unwrap().1;
        assert_eq!(ps.chip_conflicts, 7);
        let node = t.stats_node("telemetry");
        assert_eq!(node.counter_at("gather_splits"), Some(1));
        assert_eq!(node.counter_at("patterns/p7/chip_conflicts"), Some(7));
    }
}
