//! Declarative run specifications.
//!
//! A [`RunSpec`] is pure data: a machine shape ([`MachineSpec`]) plus a
//! workload ([`WorkloadSpec`]). [`RunSpec::execute`] builds the
//! machine, runs the workload to completion, verifies the functional
//! result where one is analytically known, and returns a
//! [`RunOutcome`] whose [`StatsNode`] tree is a pure function of the
//! spec — which is what lets the sweep runner execute specs on worker
//! threads and still produce output bit-identical to a serial run.

use gsdram_core::port::EventSink;
use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_core::PatternId;
use gsdram_dram::controller::{RowPolicy, SchedPolicy};
use gsdram_dram::mapping::MapHash;
use gsdram_dram::timing::TimingPack;
use gsdram_patterns::{Compiled, PatternLayout, PatternSpec};
use gsdram_system::config::SystemConfig;
use gsdram_system::machine::{Machine, RunReport, StopWhen};
use gsdram_system::ops::Program;
use gsdram_telemetry::{Collector, Telemetry};
use gsdram_workloads::filter::FilterQuery;
use gsdram_workloads::gemm::{program as gemm_program, Gemm, GemmVariant};
use gsdram_workloads::graph::{scan as graph_scan, updates as graph_updates, Graph, GraphLayout};
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};
use gsdram_workloads::kvstore::{inserts, lookups, KvLayout, KvStore};
use gsdram_workloads::transpose::{program as transpose_program, Transpose, TransposeLayout};

use crate::args::Args;
use crate::listing::{self, Entry};

/// Channel/rank counts the CLI accepts: powers of two so every
/// XOR-matrix mapping stage stays bijective (and `MAX_INDEX_BITS`
/// bounds them well above any plausible config).
const ACCEPTED_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Validates a `--channels`/`--ranks` count, with a proper CLI error
/// instead of the assert the XOR stages would otherwise hit.
fn validate_count(what: &str, n: usize) -> Result<(), String> {
    if ACCEPTED_COUNTS.contains(&n) {
        return Ok(());
    }
    Err(format!(
        "invalid {what} {n}: accepted values are 1, 2, 4, 8, 16 \
         (power-of-two counts keep the XOR-matrix mapping stages bijective)"
    ))
}

/// The registered scheduling engines as listing entries (for the
/// did-you-mean error on a bad `--sched`).
fn sched_entries() -> Vec<Entry> {
    vec![
        Entry::new("fr-fcfs", "first-ready FCFS (Table 1 default)"),
        Entry::new("fcfs", "strict arrival order per bank"),
        Entry::new("fr-fcfs-cap", "FR-FCFS with starvation cap (`:N` to set)"),
        Entry::new("bank-rr", "bank-round-robin batches (`:N` to set)"),
    ]
}

/// The mapping presets as listing entries.
fn mapping_entries() -> Vec<Entry> {
    MapHash::VARIANTS
        .iter()
        .map(|&(_, name, note)| Entry::new(name, note))
        .collect()
}

/// The timing packs as listing entries.
fn timing_entries() -> Vec<Entry> {
    TimingPack::VARIANTS
        .iter()
        .map(|&(_, name, note)| Entry::new(name, note))
        .collect()
}

/// The machine half of a run spec (everything `SystemConfig` needs).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Core count.
    pub cores: usize,
    /// Simulated memory bytes.
    pub mem_bytes: usize,
    /// Stride prefetcher on?
    pub prefetch: bool,
    /// Impulse-style controller-side gather instead of GS-DRAM?
    pub impulse: bool,
    /// Memory scheduling policy.
    pub sched: SchedPolicy,
    /// XOR-stage preset of the physical-address map.
    pub mapping: MapHash,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// DRAM ranks.
    pub ranks: usize,
    /// DRAM channels.
    pub channels: usize,
    /// DDR timing pack.
    pub timing: TimingPack,
    /// Shard per-channel controller advance across threads (pure
    /// wall-clock optimisation, bit-identical results — deliberately
    /// absent from [`describe`](Self::describe) so sharded and serial
    /// figure JSON diff clean).
    pub shard: bool,
}

impl MachineSpec {
    /// The Table 1 machine (FR-FCFS, open row, 1 rank/channel).
    pub fn table1(cores: usize, mem_bytes: usize) -> MachineSpec {
        MachineSpec {
            cores,
            mem_bytes,
            prefetch: false,
            impulse: false,
            sched: SchedPolicy::FrFcfs,
            mapping: MapHash::Direct,
            row_policy: RowPolicy::Open,
            ranks: 1,
            channels: 1,
            timing: TimingPack::Ddr3_1600,
            shard: false,
        }
    }

    /// Enables the stride prefetcher. Builder-style.
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Switches to the Impulse gather baseline. Builder-style.
    pub fn with_impulse(mut self) -> Self {
        self.impulse = true;
        self
    }

    /// Applies the shared machine flags (`--prefetch`, `--impulse`,
    /// `--fcfs`, `--sched <policy>`, `--mapping <hash>`,
    /// `--timing <pack>`, `--closed-row`, `--ranks`, `--channels`,
    /// `--shard`) on top of this spec — the one definition both
    /// `gsdram-sim` and the experiment binaries use.
    ///
    /// Unknown policy/preset names and out-of-range counts are hard
    /// CLI errors (with a did-you-mean suggestion and the accepted
    /// listing), not warn-and-keep: a silently substituted machine
    /// would produce figures for a config the user never asked for.
    pub fn with_args(mut self, args: &Args) -> Result<Self, String> {
        if args.flag("--prefetch") {
            self.prefetch = true;
        }
        if args.flag("--impulse") {
            self.impulse = true;
        }
        if args.flag("--fcfs") {
            self.sched = SchedPolicy::Fcfs;
        }
        if let Some(s) = args.value("--sched") {
            match SchedPolicy::parse(&s) {
                Some(p) => self.sched = p,
                None => {
                    return Err(listing::unknown(
                        "--sched",
                        &s,
                        "scheduling policies",
                        &sched_entries(),
                    ))
                }
            }
        }
        if let Some(s) = args.value("--mapping") {
            match MapHash::parse(&s) {
                Some(h) => self.mapping = h,
                None => {
                    return Err(listing::unknown(
                        "--mapping",
                        &s,
                        "mapping presets",
                        &mapping_entries(),
                    ))
                }
            }
        }
        if let Some(s) = args.value("--timing") {
            match TimingPack::parse(&s) {
                Some(t) => self.timing = t,
                None => {
                    return Err(listing::unknown(
                        "--timing",
                        &s,
                        "timing packs",
                        &timing_entries(),
                    ))
                }
            }
        }
        if args.flag("--closed-row") {
            self.row_policy = RowPolicy::Closed;
        }
        if args.flag("--shard") {
            self.shard = true;
        }
        self.ranks = args.usize("--ranks", self.ranks);
        self.channels = args.usize("--channels", self.channels);
        validate_count("--ranks", self.ranks)?;
        validate_count("--channels", self.channels)?;
        Ok(self)
    }

    /// The `SystemConfig` this spec describes.
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::table1(self.cores, self.mem_bytes);
        if self.prefetch {
            cfg = cfg.with_prefetch();
        }
        if self.impulse {
            cfg = cfg.with_impulse();
        }
        if self.timing != TimingPack::default() {
            cfg = cfg.with_timing(self.timing);
        }
        if self.shard {
            cfg = cfg.with_shard();
        }
        cfg.controller.policy = self.sched;
        cfg.controller.row_policy = self.row_policy;
        cfg.mapping = self.mapping;
        cfg.with_ranks(self.ranks).with_channels(self.channels)
    }

    /// Builds the machine.
    pub fn build(&self) -> Machine {
        Machine::new(self.config())
    }

    /// One-line description for reports. The non-default axes
    /// (`mapping=`, `timing=`) only appear when set, so descriptions
    /// of Table 1 machines — and hence the frozen figure JSON — are
    /// unchanged by new axes. `shard` is deliberately never shown:
    /// it changes wall-clock only, and sharded vs serial figure JSON
    /// must byte-diff clean.
    pub fn describe(&self) -> String {
        format!(
            "cores={} mem={}MiB{}{} sched={} row={} ranks={} channels={}{}{}",
            self.cores,
            self.mem_bytes >> 20,
            if self.prefetch { " prefetch" } else { "" },
            if self.impulse { " impulse" } else { "" },
            self.sched.label(),
            match self.row_policy {
                RowPolicy::Open => "open",
                RowPolicy::Closed => "closed",
            },
            self.ranks,
            self.channels,
            if self.mapping == MapHash::Direct {
                String::new()
            } else {
                format!(" mapping={}", self.mapping.label())
            },
            if self.timing == TimingPack::default() {
                String::new()
            } else {
                format!(" timing={}", self.timing.label())
            }
        )
    }
}

/// The workload half of a run spec.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// §5.1 transactions: `txns` random transactions of mix `spec`.
    Transactions {
        /// Storage mechanism.
        layout: Layout,
        /// Read/write mix.
        spec: TxnSpec,
        /// Table size.
        tuples: u64,
        /// Transactions to run.
        txns: u64,
        /// Workload RNG seed.
        seed: u64,
    },
    /// §5.1 analytics: sum of `columns` over the table.
    Analytics {
        /// Storage mechanism.
        layout: Layout,
        /// Table size.
        tuples: u64,
        /// Fields to sum.
        columns: Vec<usize>,
    },
    /// §5.1 HTAP: core 0 runs analytics over column 0, core 1 endless
    /// transactions; stops when the analytics query completes.
    Htap {
        /// Storage mechanism.
        layout: Layout,
        /// Table size.
        tuples: u64,
        /// Transaction mix for the endless thread.
        spec: TxnSpec,
        /// Workload RNG seed.
        seed: u64,
    },
    /// §5.2 GEMM.
    Gemm {
        /// Matrix dimension.
        n: usize,
        /// Mechanism.
        variant: GemmVariant,
        /// Outer-loop sampling (`None` = simulate everything).
        sample: Option<usize>,
    },
    /// Extension: selective projection `WHERE field0 < threshold`.
    Filter {
        /// Storage mechanism.
        layout: Layout,
        /// Table size.
        tuples: u64,
        /// Selection threshold on field 0.
        threshold: u64,
        /// Expected match count (verified when `Some`).
        expected_matches: Option<u64>,
    },
    /// Extension: out-of-place matrix transpose.
    Transpose {
        /// Source layout.
        layout: TransposeLayout,
        /// Matrix dimension.
        n: usize,
    },
    /// §5.3 key-value store lookups (scan keys, read value).
    KvLookups {
        /// Pair-array layout.
        layout: KvLayout,
        /// Number of pairs.
        pairs: u64,
        /// Scan window.
        scan_len: u64,
        /// Lookups to run.
        count: u64,
        /// Workload RNG seed.
        seed: u64,
    },
    /// §5.3 key-value store inserts.
    KvInserts {
        /// Pair-array layout.
        layout: KvLayout,
        /// Number of pairs.
        pairs: u64,
        /// Inserts to run.
        count: u64,
        /// Workload RNG seed.
        seed: u64,
    },
    /// §5.3 graph traversal scan (sum one field of every node).
    GraphScan {
        /// Node-array layout.
        layout: GraphLayout,
        /// Node count.
        nodes: u64,
        /// Field to scan.
        field: usize,
    },
    /// Extension: a `gsdram-patterns` spec — an arbitrary declarative
    /// gather/scatter index stream over a word array.
    Pattern {
        /// The parsed pattern spec.
        spec: PatternSpec,
        /// Data-array layout (row vs GS-DRAM gathered addressing).
        layout: PatternLayout,
    },
    /// §5.3 graph node updates.
    GraphUpdates {
        /// Node-array layout.
        layout: GraphLayout,
        /// Node count.
        nodes: u64,
        /// Updates to run.
        count: u64,
        /// Workload RNG seed.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// One-line description for reports.
    pub fn describe(&self) -> String {
        match self {
            WorkloadSpec::Transactions {
                layout,
                spec,
                tuples,
                txns,
                seed,
            } => format!(
                "transactions {} mix={} tuples={tuples} txns={txns} seed={seed}",
                layout.label(),
                spec.label()
            ),
            WorkloadSpec::Analytics {
                layout,
                tuples,
                columns,
            } => {
                format!(
                    "analytics {} tuples={tuples} columns={columns:?}",
                    layout.label()
                )
            }
            WorkloadSpec::Htap {
                layout,
                tuples,
                spec,
                seed,
            } => format!(
                "htap {} tuples={tuples} mix={} seed={seed}",
                layout.label(),
                spec.label()
            ),
            WorkloadSpec::Gemm { n, variant, sample } => {
                format!("gemm {} n={n} sample={sample:?}", variant.label())
            }
            WorkloadSpec::Filter {
                layout,
                tuples,
                threshold,
                ..
            } => format!(
                "filter {} tuples={tuples} threshold={threshold}",
                layout.label()
            ),
            WorkloadSpec::Transpose { layout, n } => {
                format!("transpose {} n={n}", layout.label())
            }
            WorkloadSpec::KvLookups {
                layout,
                pairs,
                scan_len,
                count,
                seed,
            } => format!(
                "kv-lookups {} pairs={pairs} scan={scan_len} count={count} seed={seed}",
                layout.label()
            ),
            WorkloadSpec::KvInserts {
                layout,
                pairs,
                count,
                seed,
            } => {
                format!(
                    "kv-inserts {} pairs={pairs} count={count} seed={seed}",
                    layout.label()
                )
            }
            WorkloadSpec::GraphScan {
                layout,
                nodes,
                field,
            } => {
                format!("graph-scan {} nodes={nodes} field={field}", layout.label())
            }
            WorkloadSpec::Pattern { spec, layout } => {
                format!("pattern {} layout={}", spec.describe(), layout.label())
            }
            WorkloadSpec::GraphUpdates {
                layout,
                nodes,
                count,
                seed,
            } => {
                format!(
                    "graph-updates {} nodes={nodes} count={count} seed={seed}",
                    layout.label()
                )
            }
        }
    }
}

/// One experiment data point: machine × workload, with a stable id.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Stable identifier (used as the stats-node name and in logs),
    /// e.g. `fig10/pref/k1/gs-dram`.
    pub id: String,
    /// Machine shape.
    pub machine: MachineSpec,
    /// Workload.
    pub workload: WorkloadSpec,
}

/// The result of executing one [`RunSpec`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The spec that produced this outcome.
    pub spec: RunSpec,
    /// The raw machine report.
    pub report: RunReport,
    /// Sampling scale factor (1.0 unless the workload sampled).
    pub scale: f64,
    /// Simulated seconds ( `cpu_cycles / f_cpu`, unscaled).
    pub seconds: f64,
    /// Workload-specific extra counters (matches, throughput, …).
    extra: Vec<(String, f64)>,
}

impl RunOutcome {
    /// `cpu_cycles × scale` — the figure-level cycle count (sampled
    /// workloads scale back to the full problem).
    pub fn scaled_cycles(&self) -> f64 {
        self.report.cpu_cycles as f64 * self.scale
    }

    /// A workload-specific extra value by name.
    pub fn extra(&self, key: &str) -> Option<f64> {
        self.extra.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// The outcome as a stats subtree named after the spec id:
    /// spec descriptions + derived gauges + the full machine report.
    pub fn stats(&self) -> StatsNode {
        let mut node = StatsNode::new(self.spec.id.clone())
            .text("machine", self.spec.machine.describe())
            .text("workload", self.spec.workload.describe())
            .gauge("seconds", self.seconds)
            .gauge("scale", self.scale)
            .gauge("scaled_cycles", self.scaled_cycles());
        for (k, v) in &self.extra {
            node = node.gauge(k.clone(), *v);
        }
        node.child(self.report.stats_node("report"))
    }
}

/// Creates and initialises a §5.1 table, honouring the Impulse
/// baseline: Impulse runs on a commodity (unshuffled) module, so the
/// GS-DRAM layout is allocated without the shuffle while keeping the
/// pattern metadata that marks the page gatherable.
fn create_table(m: &mut Machine, layout: Layout, tuples: u64, impulse: bool) -> Table {
    if impulse && layout == Layout::GsDram {
        let base = m.pattmalloc(tuples * 64, false, PatternId(7));
        let t = Table {
            layout,
            tuples,
            base,
        };
        for tu in 0..tuples {
            for f in 0..8u64 {
                m.poke(t.field_addr(tu, f as usize), tu * 8 + f);
            }
        }
        t
    } else {
        Table::create(m, layout, tuples)
    }
}

fn run_all(m: &mut Machine, p: &mut dyn Program) -> RunReport {
    let mut programs: Vec<&mut dyn Program> = vec![p];
    m.run(&mut programs, StopWhen::AllDone)
}

impl RunSpec {
    /// Executes the spec: builds the machine, runs the workload,
    /// verifies analytically-known results, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if a workload's verified result (column sums, match
    /// counts, transaction completion) is wrong — a simulator bug, not
    /// an experiment outcome.
    pub fn execute(&self) -> RunOutcome {
        self.execute_inner(None)
    }

    /// Executes the spec with a telemetry [`Collector`] attached,
    /// returning the outcome together with everything the collector
    /// gathered (event ring, histograms, per-pattern/per-bank
    /// breakdowns). `capacity` bounds the raw-event and occupancy
    /// ring buffers.
    ///
    /// Observation never perturbs simulation: the outcome (and its
    /// stats tree) is bit-identical to [`RunSpec::execute`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RunSpec::execute`].
    pub fn execute_traced(&self, capacity: usize) -> (RunOutcome, Telemetry) {
        let collector = Collector::with_capacity(capacity);
        let outcome = self.execute_inner(Some(collector.sink()));
        (outcome, collector.into_telemetry())
    }

    fn execute_inner(&self, sink: Option<Box<dyn EventSink>>) -> RunOutcome {
        let mut m = self.machine.build();
        if let Some(sink) = sink {
            m.attach_observer(sink);
        }
        let impulse = self.machine.impulse;
        let mut extra: Vec<(String, f64)> = Vec::new();
        let mut scale = 1.0f64;
        let report = match &self.workload {
            WorkloadSpec::Transactions {
                layout,
                spec,
                tuples,
                txns,
                seed,
            } => {
                let table = create_table(&mut m, *layout, *tuples, impulse);
                let mut p = transactions(table, *spec, *txns, *seed);
                let r = run_all(&mut m, &mut p);
                assert_eq!(
                    r.progress[0], *txns,
                    "{}: all transactions must commit",
                    self.id
                );
                r
            }
            WorkloadSpec::Analytics {
                layout,
                tuples,
                columns,
            } => {
                let table = create_table(&mut m, *layout, *tuples, impulse);
                let mut p = analytics(table, columns);
                let r = run_all(&mut m, &mut p);
                let want = columns
                    .iter()
                    .fold(0u64, |a, &f| a.wrapping_add(table.expected_column_sum(f)));
                assert_eq!(r.results[0], want, "{}: column sum mismatch", self.id);
                r
            }
            WorkloadSpec::Htap {
                layout,
                tuples,
                spec,
                seed,
            } => {
                let table = create_table(&mut m, *layout, *tuples, impulse);
                let mut anal = analytics(table, &[0]);
                let mut txn = transactions(table, *spec, u64::MAX, *seed);
                let r = {
                    let mut programs: Vec<&mut dyn Program> = vec![&mut anal, &mut txn];
                    m.run(&mut programs, StopWhen::CoreDone(0))
                };
                let secs = r.seconds(m.config());
                extra.push((
                    "txn_throughput_mps".into(),
                    r.progress[1] as f64 / secs / 1e6,
                ));
                r
            }
            WorkloadSpec::Gemm { n, variant, sample } => {
                let g = Gemm::create(&mut m, *n, *variant);
                g.init(&mut m);
                let (mut p, s) = gemm_program(g, *sample);
                scale = s;
                run_all(&mut m, &mut p)
            }
            WorkloadSpec::Filter {
                layout,
                tuples,
                threshold,
                expected_matches,
            } => {
                let table = create_table(&mut m, *layout, *tuples, impulse);
                let mut q = FilterQuery::new(table, 0, *threshold);
                let r = run_all(&mut m, &mut q);
                if let Some(want) = expected_matches {
                    assert_eq!(q.matches(), *want, "{}: match count", self.id);
                }
                extra.push(("matches".into(), q.matches() as f64));
                r
            }
            WorkloadSpec::Transpose { layout, n } => {
                let t = Transpose::create(&mut m, *layout, *n);
                let mut p = transpose_program(t);
                run_all(&mut m, &mut p)
            }
            WorkloadSpec::KvLookups {
                layout,
                pairs,
                scan_len,
                count,
                seed,
            } => {
                let kv = KvStore::create(&mut m, *layout, *pairs);
                let mut p = lookups(kv, *scan_len, *count, *seed);
                run_all(&mut m, &mut p)
            }
            WorkloadSpec::KvInserts {
                layout,
                pairs,
                count,
                seed,
            } => {
                let kv = KvStore::create(&mut m, *layout, *pairs);
                let mut p = inserts(kv, *count, *seed);
                let r = run_all(&mut m, &mut p);
                assert_eq!(r.progress[0], *count, "{}: all inserts must land", self.id);
                r
            }
            WorkloadSpec::GraphScan {
                layout,
                nodes,
                field,
            } => {
                let g = Graph::create(&mut m, *layout, *nodes);
                let mut p = graph_scan(g, *field);
                let r = run_all(&mut m, &mut p);
                // Σ_v (8v + field): the scan sum is analytically known.
                let n = *nodes;
                let want = 8u64
                    .wrapping_mul(n.wrapping_mul(n.wrapping_sub(1)) / 2)
                    .wrapping_add(*field as u64 * n);
                assert_eq!(r.results[0], want, "{}: scan sum mismatch", self.id);
                r
            }
            WorkloadSpec::GraphUpdates {
                layout,
                nodes,
                count,
                seed,
            } => {
                let g = Graph::create(&mut m, *layout, *nodes);
                let mut p = graph_updates(g, *count, *seed);
                let r = run_all(&mut m, &mut p);
                assert_eq!(r.progress[0], *count, "{}: all updates must land", self.id);
                r
            }
            WorkloadSpec::Pattern { spec, layout } => {
                let c = Compiled::new(spec.clone());
                let data = c.create(&mut m, *layout);
                let mut p = c.program(*layout, data);
                let r = run_all(&mut m, &mut p);
                assert_eq!(
                    r.progress[0],
                    c.expected_units(),
                    "{}: all pattern accesses must complete",
                    self.id
                );
                assert_eq!(
                    r.results[0],
                    c.expected_sum(),
                    "{}: pattern checksum mismatch",
                    self.id
                );
                m.drain_caches();
                for (addr, want) in c.expected_finals(data) {
                    assert_eq!(
                        m.peek(addr),
                        want,
                        "{}: scatter final value at {addr:#x}",
                        self.id
                    );
                }
                extra.push(("accesses".into(), c.count() as f64));
                r
            }
        };
        let seconds = report.seconds(m.config());
        RunOutcome {
            spec: self.clone(),
            report,
            scale,
            seconds,
            extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytics_spec_executes_and_reports() {
        let spec = RunSpec {
            id: "test/analytics".into(),
            machine: MachineSpec::table1(1, 8 << 20),
            workload: WorkloadSpec::Analytics {
                layout: Layout::GsDram,
                tuples: 2048,
                columns: vec![0],
            },
        };
        let o = spec.execute();
        assert!(o.report.cpu_cycles > 0);
        assert_eq!(o.report.dram.reads, 2048 / 8);
        let stats = o.stats();
        assert_eq!(stats.name(), "test/analytics");
        assert_eq!(stats.counter_at("report/dram/reads"), Some(2048 / 8));
        assert!(stats.gauge_at("seconds").unwrap() > 0.0);
    }

    #[test]
    fn identical_specs_produce_identical_stats() {
        let spec = RunSpec {
            id: "test/txn".into(),
            machine: MachineSpec::table1(1, 8 << 20),
            workload: WorkloadSpec::Transactions {
                layout: Layout::RowStore,
                spec: TxnSpec {
                    read_only: 1,
                    write_only: 1,
                    read_write: 0,
                },
                tuples: 1024,
                txns: 100,
                seed: 42,
            },
        };
        assert_eq!(spec.execute().stats(), spec.execute().stats());
    }

    #[test]
    fn machine_spec_args_roundtrip() {
        let args = Args::new(["--prefetch", "--fcfs", "--ranks", "2"]);
        let ms = MachineSpec::table1(1, 1 << 20).with_args(&args).unwrap();
        assert!(ms.prefetch);
        assert_eq!(ms.sched, SchedPolicy::Fcfs);
        assert_eq!(ms.ranks, 2);
        let cfg = ms.config();
        assert!(cfg.prefetch);
        assert_eq!(cfg.controller.ranks, 2);
    }

    #[test]
    fn machine_spec_sched_mapping_args() {
        let args = Args::new(["--sched", "fr-fcfs-cap:6", "--mapping", "xor-bank"]);
        let ms = MachineSpec::table1(1, 1 << 20).with_args(&args).unwrap();
        assert_eq!(ms.sched, SchedPolicy::FrFcfsCap { cap: 6 });
        assert_eq!(ms.mapping, MapHash::XorBank);
        let cfg = ms.config();
        assert_eq!(cfg.controller.policy, SchedPolicy::FrFcfsCap { cap: 6 });
        assert_eq!(cfg.mapping, MapHash::XorBank);
    }

    #[test]
    fn machine_spec_timing_and_shard_args() {
        let args = Args::new(["--timing", "ddr4-2400", "--shard", "--channels", "4"]);
        let ms = MachineSpec::table1(1, 1 << 20).with_args(&args).unwrap();
        assert_eq!(ms.timing, TimingPack::Ddr4_2400);
        assert!(ms.shard);
        assert_eq!(ms.channels, 4);
        let cfg = ms.config();
        assert_eq!(cfg.cpu_per_mem, 3);
        assert!(cfg.shard);
        assert_eq!(cfg.channels, 4);
    }

    #[test]
    fn machine_spec_rejects_unknown_names_with_suggestions() {
        let base = || MachineSpec::table1(1, 1 << 20);
        let e = base()
            .with_args(&Args::new(["--sched", "fr-fcsf"]))
            .unwrap_err();
        assert!(e.contains("did you mean 'fr-fcfs'"), "{e}");
        let e = base()
            .with_args(&Args::new(["--mapping", "xor-bnak"]))
            .unwrap_err();
        assert!(e.contains("did you mean 'xor-bank'"), "{e}");
        let e = base()
            .with_args(&Args::new(["--timing", "ddr4-2433"]))
            .unwrap_err();
        assert!(e.contains("did you mean 'ddr4-2400'"), "{e}");
        // Every error carries the full listing for the flag.
        assert!(e.contains("ddr3-1600"), "{e}");
    }

    #[test]
    fn machine_spec_rejects_non_power_of_two_counts() {
        let e = MachineSpec::table1(1, 1 << 20)
            .with_args(&Args::new(["--channels", "3"]))
            .unwrap_err();
        assert!(e.contains("invalid --channels 3"), "{e}");
        assert!(e.contains("1, 2, 4, 8, 16"), "{e}");
        let e = MachineSpec::table1(1, 1 << 20)
            .with_args(&Args::new(["--ranks", "6"]))
            .unwrap_err();
        assert!(e.contains("invalid --ranks 6"), "{e}");
    }

    #[test]
    fn describe_appends_non_default_axes_only() {
        let ms = MachineSpec::table1(1, 1 << 20);
        assert_eq!(
            ms.describe(),
            "cores=1 mem=1MiB sched=fr-fcfs row=open ranks=1 channels=1"
        );
        let mut ms = ms;
        ms.sched = SchedPolicy::BankRr { batch: 4 };
        ms.mapping = MapHash::XorBank;
        assert_eq!(
            ms.describe(),
            "cores=1 mem=1MiB sched=bank-rr4 row=open ranks=1 channels=1 mapping=xor-bank"
        );
        ms.timing = TimingPack::Ddr4_2400;
        assert_eq!(
            ms.describe(),
            "cores=1 mem=1MiB sched=bank-rr4 row=open ranks=1 channels=1 mapping=xor-bank timing=ddr4-2400"
        );
        // Sharding must never leak into the description: sharded and
        // serial runs of the same machine byte-diff their figure JSON.
        ms.shard = true;
        assert!(!ms.describe().contains("shard"));
    }
}
