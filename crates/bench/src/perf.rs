//! The `perf` mode: the committed speed claim behind the time-skip
//! engine.
//!
//! `gsdram-bench perf` runs every experiment in the registry serially
//! and reports *cycles simulated per wall-clock second* — the
//! simulator-throughput metric the time-skip engine (see
//! `docs/PERF.md`) is accountable to. The output, `BENCH_gsdram.json`,
//! is committed at the repo root so the perf trajectory is visible in
//! review diffs; `gsdram-bench check <path>` validates its schema with
//! the workspace's dependency-free JSON parser, deliberately asserting
//! nothing about wall-clock values (CI runners are not benchmarking
//! machines).
//!
//! Simulated-cycle counts are a pure function of each experiment's
//! specs, so two runs of `perf` may differ only in the wall-second and
//! rate fields.
//!
//! The report's second section, `shard`, times the sharded per-channel
//! advance (`gsdram_dram::shard`) against its serial twin on identical
//! waved multi-channel request streams, asserting the drained states
//! byte-identical before reporting the speedup — the committed
//! evidence that sharding never buys divergence. The speedup column is
//! only meaningful relative to `harness_threads` (the recording
//! machine's available parallelism, stamped into the report): on one
//! hardware thread the sharded run time-slices a single core and can
//! only show spawn overhead, so `speedup > 1` is expected *iff*
//! `harness_threads >= 2`.

use gsdram_core::json::Json;
use gsdram_core::rng::SplitMix;
use gsdram_core::PatternId;
use gsdram_dram::controller::{AccessKind, ControllerConfig, MemController, MemRequest};
use gsdram_dram::mapping::{AddressMap, Interleave};
use gsdram_dram::shard;

use crate::args::Args;
use crate::experiments::{ExperimentDef, REGISTRY};
use crate::sweep::{self, SweepMode};

/// Schema tag written to (and required from) the report.
pub const SCHEMA: &str = "gsdram-bench-perf-v2";

/// Default output path, relative to the invocation directory.
pub const DEFAULT_OUT: &str = "BENCH_gsdram.json";

/// The downscaling flags `--quick` appends: every size knob any
/// registry experiment reads, pinned to CI-smoke scale.
const QUICK_FLAGS: &[&str] = &[
    "--txns",
    "200",
    "--tuples",
    "2048",
    "--sizes",
    "16",
    "--lines",
    "256",
    "--trials",
    "500",
    "--pairs",
    "2048",
    "--nodes",
    "4096",
    "--accesses",
    "512",
    "--elements",
    "8192",
];

/// One experiment's measurement.
#[derive(Debug)]
pub struct PerfRow {
    /// Registry name.
    pub name: &'static str,
    /// Number of machine runs the experiment's specs expand to
    /// (0 for purely analytic experiments).
    pub runs: usize,
    /// Total simulated CPU cycles across those runs.
    pub simulated_cycles: u64,
    /// Wall-clock seconds spent simulating them, serially.
    pub wall_seconds: f64,
}

impl PerfRow {
    /// Cycles simulated per wall-clock second (0 for analytic rows).
    pub fn rate(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.simulated_cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Measures one experiment: expands its specs under `args` and runs
/// them serially (parallel sweeps would measure scheduler luck, not
/// simulator throughput).
fn measure(def: &ExperimentDef, args: &Args) -> PerfRow {
    let specs = (def.specs)(args);
    // gsdram-lint: allow(D2) wall-clock throughput is this mode's deliverable, not simulation state
    let start = std::time::Instant::now();
    let outcomes = sweep::run(&specs, SweepMode::Serial);
    let wall_seconds = start.elapsed().as_secs_f64();
    PerfRow {
        name: def.name,
        runs: outcomes.len(),
        simulated_cycles: outcomes.iter().map(|o| o.report.cpu_cycles).sum(),
        wall_seconds,
    }
}

/// One sharded-vs-serial controller-drain measurement.
#[derive(Debug)]
pub struct ShardRow {
    /// Channel-controller count.
    pub channels: usize,
    /// Requests pre-loaded across the controllers.
    pub requests: usize,
    /// Memory cycles each controller advanced through.
    pub mem_cycles: u64,
    /// Wall-clock seconds for the serial advance loop.
    pub serial_wall_seconds: f64,
    /// Wall-clock seconds for the thread-per-channel advance.
    pub sharded_wall_seconds: f64,
}

impl ShardRow {
    /// Serial wall-clock over sharded wall-clock (>1 means sharding won).
    pub fn speedup(&self) -> f64 {
        if self.sharded_wall_seconds > 0.0 {
            self.serial_wall_seconds / self.sharded_wall_seconds
        } else {
            0.0
        }
    }
}

/// Arrival-ordered request stream for the shard benchmark: `(channel,
/// request, arrival cycle)`, paced slightly faster than the random-row
/// service time so every channel stays saturated and queues build to a
/// few hundred entries over the run — the bandwidth-bound phase (a
/// prefetcher issuing faster than DRAM services) where `sync_memory`
/// actually leaps and the shard site earns its threads.
fn shard_stream(channels: usize, requests: usize, seed: u64) -> Vec<(usize, MemRequest, u64)> {
    let map = AddressMap::with_shape(64, 128, 8, 1, channels as u64, Interleave::ColumnFirst);
    let mut rng = SplitMix(seed);
    let pace = (40 / channels as u64).max(1);
    (0..requests)
        .map(|id| {
            let addr = rng.below(1 << 24) * 64;
            let loc = map.decompose(addr);
            let kind = if rng.below(4) == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let req = MemRequest {
                id: id as u64,
                loc,
                pattern: PatternId(0),
                kind,
            };
            (loc.channel, req, id as u64 * pace)
        })
        .collect()
}

/// Memory-cycle span of one enqueue→advance wave: comfortably past
/// [`shard::MIN_SPAN`] so the sharded run forks on every wave, and
/// wide enough that each worker's slice of scheduler work dwarfs the
/// per-wave thread-spawn cost.
const WAVE_SPAN: u64 = 32_768;

/// Runs the stream through fresh controllers in enqueue→advance waves
/// (enqueue the arrivals of the next `WAVE_SPAN` cycles, advance all
/// controllers to the wave horizon, repeat; then drain), returning the
/// end state and the wall-clock seconds spent advancing.
fn run_stream(
    channels: usize,
    stream: &[(usize, MemRequest, u64)],
    sharded: bool,
) -> (String, f64) {
    let mut ctls: Vec<MemController> = (0..channels)
        .map(|ch| {
            let mut c = MemController::new(ControllerConfig::default());
            c.set_channel(ch);
            c
        })
        .collect();
    let advance = if sharded {
        shard::advance_sharded
    } else {
        shard::advance_serial
    };
    let mut next = 0usize;
    let mut horizon = WAVE_SPAN;
    // gsdram-lint: allow-block(D2) wall-clock throughput is this mode's deliverable, not simulation state
    let mut wall = 0.0f64;
    while next < stream.len() {
        while next < stream.len() && stream[next].2 < horizon {
            let (ch, req, at) = stream[next];
            // An advance lands on event times and may overshoot the
            // wave horizon by a few cycles; clamp like the bridge
            // clamps writeback arrivals. Serial and sharded states
            // are identical wave-for-wave, so the clamp is too.
            let at = at.max(ctls[ch].now());
            ctls[ch].enqueue(req, at);
            next += 1;
        }
        let start = std::time::Instant::now();
        advance(&mut ctls, horizon);
        wall += start.elapsed().as_secs_f64();
        horizon += WAVE_SPAN;
    }
    // Drain the backlog the oversubscribed pacing built up; keep
    // advancing in waves so the sharded run stays forked to the end.
    // gsdram-lint: allow-block(D2) wall-clock throughput is this mode's deliverable, not simulation state
    while ctls.iter().any(|c| c.pending() > 0) {
        horizon += WAVE_SPAN;
        let start = std::time::Instant::now();
        advance(&mut ctls, horizon);
        wall += start.elapsed().as_secs_f64();
    }
    let mut state = String::new();
    for (ch, c) in ctls.iter_mut().enumerate() {
        let mut done = Vec::new();
        c.take_completions_into(u64::MAX, &mut done);
        assert!(
            c.pending() == 0,
            "shard benchmark failed to drain channel {ch}"
        );
        state.push_str(&format!(
            "clock={} stats={:?} energy={:?} completions={:?}\n",
            c.now(),
            c.stats(),
            c.energy(),
            done
        ));
    }
    (state, wall)
}

/// Times the serial and sharded advance of identical controller sets
/// over the same waved request stream, asserting the end states
/// byte-identical before reporting wall-clock.
fn measure_shard(channels: usize, requests: usize) -> ShardRow {
    let stream = shard_stream(channels, requests, 0xC0FFEE);
    let mem_cycles = stream.last().map_or(0, |&(_, _, at)| at) + WAVE_SPAN;
    let (serial_state, serial_wall_seconds) = run_stream(channels, &stream, false);
    let (sharded_state, sharded_wall_seconds) = run_stream(channels, &stream, true);
    assert_eq!(
        serial_state, sharded_state,
        "sharded advance diverged from serial at {channels} channels"
    );
    ShardRow {
        channels,
        requests,
        mem_cycles,
        serial_wall_seconds,
        sharded_wall_seconds,
    }
}

/// The channel counts the shard section measures.
const SHARD_CHANNELS: [usize; 2] = [2, 4];

/// Runs the whole registry plus the shard drain benchmark and renders
/// the report JSON.
pub fn run(args: &Args) -> String {
    let quick = args.flag("--quick");
    let eff = if quick {
        let mut argv: Vec<String> = args.raw().to_vec();
        argv.extend(QUICK_FLAGS.iter().map(|s| s.to_string()));
        Args::new(argv)
    } else {
        args.clone()
    };
    let rows: Vec<PerfRow> = REGISTRY
        .iter()
        .map(|def| {
            let row = measure(def, &eff);
            eprintln!(
                "  {:<22} {:>3} runs  {:>14} cycles  {:>8.3} s  {:>12.0} cyc/s",
                row.name,
                row.runs,
                row.simulated_cycles,
                row.wall_seconds,
                row.rate()
            );
            row
        })
        .collect();
    let requests = if quick { 4_000 } else { 40_000 };
    let threads = harness_threads();
    let shard_rows: Vec<ShardRow> = SHARD_CHANNELS
        .iter()
        .map(|&channels| {
            let row = measure_shard(channels, requests);
            eprintln!(
                "  shard ch{:<17} {:>10} reqs  serial {:>7.3} s  sharded {:>7.3} s  {:>5.2}x",
                row.channels,
                row.requests,
                row.serial_wall_seconds,
                row.sharded_wall_seconds,
                row.speedup()
            );
            row
        })
        .collect();
    if threads < 2 {
        eprintln!("  (1 harness thread: shard rows can only show overhead, not speedup)");
    }
    render(&rows, &shard_rows, quick, threads)
}

/// The recording machine's available parallelism, stamped into the
/// report so shard speedups can be read in context.
fn harness_threads() -> usize {
    // gsdram-lint: allow(D8) reads the hardware thread count for the report stamp; spawns nothing
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn render(rows: &[PerfRow], shard_rows: &[ShardRow], quick: bool, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"harness_threads\": {threads},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"runs\": {}, \"simulated_cycles\": {}, \"wall_seconds\": {:.3}, \"cycles_per_second\": {:.0}}}{}\n",
            r.name,
            r.runs,
            r.simulated_cycles,
            r.wall_seconds,
            r.rate(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"shard\": [\n");
    for (i, r) in shard_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"channels\": {}, \"requests\": {}, \"mem_cycles\": {}, \"serial_wall_seconds\": {:.3}, \"sharded_wall_seconds\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.channels,
            r.requests,
            r.mem_cycles,
            r.serial_wall_seconds,
            r.sharded_wall_seconds,
            r.speedup(),
            if i + 1 < shard_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let cycles: u64 = rows.iter().map(|r| r.simulated_cycles).sum();
    let secs: f64 = rows.iter().map(|r| r.wall_seconds).sum();
    out.push_str(&format!(
        "  \"total\": {{\"simulated_cycles\": {}, \"wall_seconds\": {:.3}, \"cycles_per_second\": {:.0}}}\n",
        cycles,
        secs,
        if secs > 0.0 { cycles as f64 / secs } else { 0.0 }
    ));
    out.push_str("}\n");
    out
}

/// Validates a perf report: schema tag, one well-formed row per
/// registry experiment (simulated cycles are deterministic, so
/// non-analytic rows must report runs and cycles), and a consistent
/// total. Wall-clock values are deliberately *not* asserted beyond
/// being non-negative numbers.
pub fn check(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(SCHEMA) {
        return Err(format!("schema must be \"{SCHEMA}\", got {schema:?}"));
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("quick") | Some("full") => {}
        other => return Err(format!("mode must be \"quick\" or \"full\", got {other:?}")),
    }
    match doc.get("harness_threads").and_then(Json::as_f64) {
        Some(t) if t >= 1.0 => {}
        other => return Err(format!("harness_threads must be >= 1, got {other:?}")),
    }
    let rows = doc
        .get("experiments")
        .and_then(Json::as_array)
        .ok_or("missing experiments array")?;
    let mut cycles_total = 0u64;
    let mut seen = Vec::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or("experiment row without a name")?;
        let num = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.is_finite())
                .ok_or(format!("{name}: missing or negative {key}"))
        };
        let runs = num("runs")?;
        let cycles = num("simulated_cycles")?;
        num("wall_seconds")?;
        num("cycles_per_second")?;
        if runs > 0.0 && cycles == 0.0 {
            return Err(format!("{name}: {runs} runs simulated zero cycles"));
        }
        cycles_total += cycles as u64;
        seen.push(name);
    }
    for def in REGISTRY {
        if !seen.contains(&def.name) {
            return Err(format!("registry experiment {} has no row", def.name));
        }
    }
    if seen.len() != REGISTRY.len() {
        return Err(format!(
            "{} rows for {} registry experiments",
            seen.len(),
            REGISTRY.len()
        ));
    }
    let shard_rows = doc
        .get("shard")
        .and_then(Json::as_array)
        .ok_or("missing shard array")?;
    if shard_rows.is_empty() {
        return Err("shard array is empty".into());
    }
    for row in shard_rows {
        let num = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.is_finite())
                .ok_or(format!("shard row: missing or negative {key}"))
        };
        let channels = num("channels")?;
        if channels < 2.0 {
            return Err(format!(
                "shard row with {channels} channels — sharding needs at least 2"
            ));
        }
        if num("requests")? == 0.0 || num("mem_cycles")? == 0.0 {
            return Err("shard row drained no work".into());
        }
        num("serial_wall_seconds")?;
        num("sharded_wall_seconds")?;
        num("speedup")?;
    }
    let total = doc.get("total").ok_or("missing total")?;
    let total_cycles = total
        .get("simulated_cycles")
        .and_then(Json::as_f64)
        .ok_or("total without simulated_cycles")?;
    if total_cycles as u64 != cycles_total {
        return Err(format!(
            "total.simulated_cycles {total_cycles} != sum of rows {cycles_total}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny quick-mode sweep over two real experiments, rendered and
    /// re-validated through the checker (the registry-coverage leg is
    /// exercised against a synthetic full report below).
    #[test]
    fn render_and_check_roundtrip() {
        let args = Args::new(["--quick"]);
        let eff = {
            let mut argv: Vec<String> = args.raw().to_vec();
            argv.extend(QUICK_FLAGS.iter().map(|s| s.to_string()));
            Args::new(argv)
        };
        let rows: Vec<PerfRow> = REGISTRY
            .iter()
            .filter(|d| d.name == "fig7" || d.name == "ablation_mapping")
            .map(|d| measure(d, &eff))
            .collect();
        assert_eq!(rows.len(), 2);
        // fig7 is analytic (no specs); ablation_mapping simulates.
        assert_eq!(rows.iter().filter(|r| r.runs == 0).count(), 1);
        assert!(rows.iter().any(|r| r.simulated_cycles > 0));

        // A real (tiny) shard measurement: the drained-state equality
        // assert inside measure_shard is the interesting part.
        let shard_rows = vec![measure_shard(2, 512)];
        assert!(shard_rows[0].mem_cycles > 0);

        // The renderer's output parses and passes every schema check
        // except registry coverage (only two rows here).
        let text = render(&rows, &shard_rows, true, harness_threads());
        let err = check(&text).unwrap_err();
        assert!(err.contains("has no row"), "{err}");

        // Padding the missing registry rows satisfies the checker.
        let full: Vec<PerfRow> = REGISTRY
            .iter()
            .map(|d| PerfRow {
                name: d.name,
                runs: 1,
                simulated_cycles: 7,
                wall_seconds: 0.001,
            })
            .collect();
        check(&render(&full, &shard_rows, false, 4)).expect("synthetic full report validates");

        // A report without the shard section fails the v2 checker.
        let err = check(&render(&full, &[], false, 4)).unwrap_err();
        assert!(err.contains("shard"), "{err}");
    }

    #[test]
    fn check_rejects_malformed_reports() {
        assert!(check("not json").is_err());
        assert!(check("{}").is_err());
        let wrong_schema = "{\"schema\": \"nope\", \"mode\": \"full\"}";
        assert!(check(wrong_schema).is_err());
        let no_threads = format!("{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\"}}");
        let err = check(&no_threads).unwrap_err();
        assert!(err.contains("harness_threads"), "{err}");
        let bad_row = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"harness_threads\": 1, \"experiments\": [{{\"name\": \"fig9\", \"runs\": 3, \"simulated_cycles\": 0, \"wall_seconds\": 0.1, \"cycles_per_second\": 0}}]}}"
        );
        let err = check(&bad_row).unwrap_err();
        assert!(err.contains("zero cycles"), "{err}");
    }
}
