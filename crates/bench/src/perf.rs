//! The `perf` mode: the committed speed claim behind the time-skip
//! engine.
//!
//! `gsdram-bench perf` runs every experiment in the registry serially
//! and reports *cycles simulated per wall-clock second* — the
//! simulator-throughput metric the time-skip engine (see
//! `docs/PERF.md`) is accountable to. The output, `BENCH_gsdram.json`,
//! is committed at the repo root so the perf trajectory is visible in
//! review diffs; `gsdram-bench check <path>` validates its schema with
//! the workspace's dependency-free JSON parser, deliberately asserting
//! nothing about wall-clock values (CI runners are not benchmarking
//! machines).
//!
//! Simulated-cycle counts are a pure function of each experiment's
//! specs, so two runs of `perf` may differ only in the wall-second and
//! rate fields.

use gsdram_core::json::Json;

use crate::args::Args;
use crate::experiments::{ExperimentDef, REGISTRY};
use crate::sweep::{self, SweepMode};

/// Schema tag written to (and required from) the report.
pub const SCHEMA: &str = "gsdram-bench-perf-v1";

/// Default output path, relative to the invocation directory.
pub const DEFAULT_OUT: &str = "BENCH_gsdram.json";

/// The downscaling flags `--quick` appends: every size knob any
/// registry experiment reads, pinned to CI-smoke scale.
const QUICK_FLAGS: &[&str] = &[
    "--txns",
    "200",
    "--tuples",
    "2048",
    "--sizes",
    "16",
    "--lines",
    "256",
    "--trials",
    "500",
    "--pairs",
    "2048",
    "--nodes",
    "4096",
    "--accesses",
    "512",
    "--elements",
    "8192",
];

/// One experiment's measurement.
#[derive(Debug)]
pub struct PerfRow {
    /// Registry name.
    pub name: &'static str,
    /// Number of machine runs the experiment's specs expand to
    /// (0 for purely analytic experiments).
    pub runs: usize,
    /// Total simulated CPU cycles across those runs.
    pub simulated_cycles: u64,
    /// Wall-clock seconds spent simulating them, serially.
    pub wall_seconds: f64,
}

impl PerfRow {
    /// Cycles simulated per wall-clock second (0 for analytic rows).
    pub fn rate(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.simulated_cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Measures one experiment: expands its specs under `args` and runs
/// them serially (parallel sweeps would measure scheduler luck, not
/// simulator throughput).
fn measure(def: &ExperimentDef, args: &Args) -> PerfRow {
    let specs = (def.specs)(args);
    // gsdram-lint: allow(D2) wall-clock throughput is this mode's deliverable, not simulation state
    let start = std::time::Instant::now();
    let outcomes = sweep::run(&specs, SweepMode::Serial);
    let wall_seconds = start.elapsed().as_secs_f64();
    PerfRow {
        name: def.name,
        runs: outcomes.len(),
        simulated_cycles: outcomes.iter().map(|o| o.report.cpu_cycles).sum(),
        wall_seconds,
    }
}

/// Runs the whole registry and renders the report JSON.
pub fn run(args: &Args) -> String {
    let quick = args.flag("--quick");
    let eff = if quick {
        let mut argv: Vec<String> = args.raw().to_vec();
        argv.extend(QUICK_FLAGS.iter().map(|s| s.to_string()));
        Args::new(argv)
    } else {
        args.clone()
    };
    let rows: Vec<PerfRow> = REGISTRY
        .iter()
        .map(|def| {
            let row = measure(def, &eff);
            eprintln!(
                "  {:<22} {:>3} runs  {:>14} cycles  {:>8.3} s  {:>12.0} cyc/s",
                row.name,
                row.runs,
                row.simulated_cycles,
                row.wall_seconds,
                row.rate()
            );
            row
        })
        .collect();
    render(&rows, quick)
}

fn render(rows: &[PerfRow], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"runs\": {}, \"simulated_cycles\": {}, \"wall_seconds\": {:.3}, \"cycles_per_second\": {:.0}}}{}\n",
            r.name,
            r.runs,
            r.simulated_cycles,
            r.wall_seconds,
            r.rate(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let cycles: u64 = rows.iter().map(|r| r.simulated_cycles).sum();
    let secs: f64 = rows.iter().map(|r| r.wall_seconds).sum();
    out.push_str(&format!(
        "  \"total\": {{\"simulated_cycles\": {}, \"wall_seconds\": {:.3}, \"cycles_per_second\": {:.0}}}\n",
        cycles,
        secs,
        if secs > 0.0 { cycles as f64 / secs } else { 0.0 }
    ));
    out.push_str("}\n");
    out
}

/// Validates a perf report: schema tag, one well-formed row per
/// registry experiment (simulated cycles are deterministic, so
/// non-analytic rows must report runs and cycles), and a consistent
/// total. Wall-clock values are deliberately *not* asserted beyond
/// being non-negative numbers.
pub fn check(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(SCHEMA) {
        return Err(format!("schema must be \"{SCHEMA}\", got {schema:?}"));
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("quick") | Some("full") => {}
        other => return Err(format!("mode must be \"quick\" or \"full\", got {other:?}")),
    }
    let rows = doc
        .get("experiments")
        .and_then(Json::as_array)
        .ok_or("missing experiments array")?;
    let mut cycles_total = 0u64;
    let mut seen = Vec::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or("experiment row without a name")?;
        let num = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.is_finite())
                .ok_or(format!("{name}: missing or negative {key}"))
        };
        let runs = num("runs")?;
        let cycles = num("simulated_cycles")?;
        num("wall_seconds")?;
        num("cycles_per_second")?;
        if runs > 0.0 && cycles == 0.0 {
            return Err(format!("{name}: {runs} runs simulated zero cycles"));
        }
        cycles_total += cycles as u64;
        seen.push(name);
    }
    for def in REGISTRY {
        if !seen.contains(&def.name) {
            return Err(format!("registry experiment {} has no row", def.name));
        }
    }
    if seen.len() != REGISTRY.len() {
        return Err(format!(
            "{} rows for {} registry experiments",
            seen.len(),
            REGISTRY.len()
        ));
    }
    let total = doc.get("total").ok_or("missing total")?;
    let total_cycles = total
        .get("simulated_cycles")
        .and_then(Json::as_f64)
        .ok_or("total without simulated_cycles")?;
    if total_cycles as u64 != cycles_total {
        return Err(format!(
            "total.simulated_cycles {total_cycles} != sum of rows {cycles_total}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny quick-mode sweep over two real experiments, rendered and
    /// re-validated through the checker (the registry-coverage leg is
    /// exercised against a synthetic full report below).
    #[test]
    fn render_and_check_roundtrip() {
        let args = Args::new(["--quick"]);
        let eff = {
            let mut argv: Vec<String> = args.raw().to_vec();
            argv.extend(QUICK_FLAGS.iter().map(|s| s.to_string()));
            Args::new(argv)
        };
        let rows: Vec<PerfRow> = REGISTRY
            .iter()
            .filter(|d| d.name == "fig7" || d.name == "ablation_mapping")
            .map(|d| measure(d, &eff))
            .collect();
        assert_eq!(rows.len(), 2);
        // fig7 is analytic (no specs); ablation_mapping simulates.
        assert_eq!(rows.iter().filter(|r| r.runs == 0).count(), 1);
        assert!(rows.iter().any(|r| r.simulated_cycles > 0));

        // The renderer's output parses and passes every schema check
        // except registry coverage (only two rows here).
        let text = render(&rows, true);
        let err = check(&text).unwrap_err();
        assert!(err.contains("has no row"), "{err}");

        // Padding the missing registry rows satisfies the checker.
        let full: Vec<PerfRow> = REGISTRY
            .iter()
            .map(|d| PerfRow {
                name: d.name,
                runs: 1,
                simulated_cycles: 7,
                wall_seconds: 0.001,
            })
            .collect();
        check(&render(&full, false)).expect("synthetic full report validates");
    }

    #[test]
    fn check_rejects_malformed_reports() {
        assert!(check("not json").is_err());
        assert!(check("{}").is_err());
        let wrong_schema = "{\"schema\": \"nope\", \"mode\": \"full\"}";
        assert!(check(wrong_schema).is_err());
        let bad_row = format!(
            "{{\"schema\": \"{SCHEMA}\", \"mode\": \"full\", \"experiments\": [{{\"name\": \"fig9\", \"runs\": 3, \"simulated_cycles\": 0, \"wall_seconds\": 0.1, \"cycles_per_second\": 0}}]}}"
        );
        let err = check(&bad_row).unwrap_err();
        assert!(err.contains("zero cycles"), "{err}");
    }
}
