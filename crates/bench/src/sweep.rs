//! The sweep runner: executes a batch of independent [`RunSpec`]s,
//! serially or on `std::thread::scope` worker threads.
//!
//! Specs are pure data and [`RunSpec::execute`] is deterministic, so
//! the only thing parallelism could perturb is ordering — the runner
//! therefore writes each outcome into the slot indexed by its position
//! in the input, making [`run_parallel`] bit-identical to
//! [`run_serial`] (a property `crates/bench/tests/engine.rs` proves on
//! real experiments).

// gsdram-lint: allow(D8) the sweep runner is the one sanctioned parallel site; parallel ≡ serial is proven in tests/engine.rs
use std::sync::atomic::{AtomicUsize, Ordering};

use gsdram_telemetry::Telemetry;

use crate::spec::{RunOutcome, RunSpec};

/// How a sweep should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// One spec at a time, in input order.
    Serial,
    /// Worker threads (`0` = one per available core).
    Parallel(usize),
}

impl SweepMode {
    /// Resolves `--serial` / `--threads N` flags; parallel with one
    /// thread per core by default.
    pub fn from_args(args: &crate::args::Args) -> SweepMode {
        if args.flag("--serial") {
            SweepMode::Serial
        } else {
            SweepMode::Parallel(args.usize("--threads", 0))
        }
    }
}

fn default_threads() -> usize {
    // gsdram-lint: allow(D8) thread-count discovery only; never touches sim state
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The generic parallel engine behind [`run_parallel`] and
/// [`run_traced`]: workers claim indices from a shared counter and
/// return `(index, result)` lists; the parent scatters them back into
/// input order, so completion order never shows in the result.
// gsdram-lint: allow-block(D8) the sanctioned parallel engine: workers claim indices off one counter, results scatter to input-order slots, bit-identical to serial per tests/engine.rs
fn run_parallel_with<T: Send>(
    specs: &[RunSpec],
    threads: usize,
    exec: impl Fn(&RunSpec) -> T + Sync,
) -> Vec<T> {
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    };
    let threads = threads.min(specs.len()).max(1);
    if threads <= 1 {
        return specs.iter().map(exec).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(specs.len(), || None);
    std::thread::scope(|scope| {
        let gathered: Vec<Vec<(usize, T)>> = {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let next = &next;
                let exec = &exec;
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        mine.push((i, exec(&specs[i])));
                    }
                    mine
                }));
            }
            handles
                .into_iter()
                // gsdram-lint: allow(D4) a panicked worker must abort the sweep, not yield partial figures
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        };
        for (i, outcome) in gathered.into_iter().flatten() {
            slots[i] = Some(outcome);
        }
    });
    slots
        .into_iter()
        // gsdram-lint: allow(D4) the scoped threads above filled every slot exactly once
        .map(|s| s.expect("every spec executed"))
        .collect()
}

/// Executes every spec in input order on the calling thread.
pub fn run_serial(specs: &[RunSpec]) -> Vec<RunOutcome> {
    specs.iter().map(RunSpec::execute).collect()
}

/// Executes every spec across `threads` scoped worker threads
/// (`0` = one per available core). Outcomes come back in input order
/// regardless of completion order.
pub fn run_parallel(specs: &[RunSpec], threads: usize) -> Vec<RunOutcome> {
    run_parallel_with(specs, threads, RunSpec::execute)
}

/// Executes the specs in the given mode.
pub fn run(specs: &[RunSpec], mode: SweepMode) -> Vec<RunOutcome> {
    match mode {
        SweepMode::Serial => run_serial(specs),
        SweepMode::Parallel(n) => run_parallel(specs, n),
    }
}

/// Executes the specs in the given mode with a telemetry collector
/// attached to every run ([`RunSpec::execute_traced`]). `capacity`
/// bounds each collector's event/occupancy ring buffers. Observation
/// never perturbs simulation, so the outcomes are bit-identical to
/// [`run`] — and traced parallel sweeps stay bit-identical to traced
/// serial ones, because both go through the same slot-scatter engine.
pub fn run_traced(
    specs: &[RunSpec],
    mode: SweepMode,
    capacity: usize,
) -> Vec<(RunOutcome, Telemetry)> {
    let exec = |s: &RunSpec| s.execute_traced(capacity);
    match mode {
        SweepMode::Serial => specs.iter().map(exec).collect(),
        SweepMode::Parallel(n) => run_parallel_with(specs, n, exec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MachineSpec, WorkloadSpec};
    use gsdram_workloads::imdb::Layout;

    fn small_specs() -> Vec<RunSpec> {
        Layout::ALL
            .iter()
            .map(|&layout| RunSpec {
                id: format!("sweep-test/{}", layout.label()),
                machine: MachineSpec::table1(1, 4 << 20),
                workload: WorkloadSpec::Analytics {
                    layout,
                    tuples: 1024,
                    columns: vec![0],
                },
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_order_and_content() {
        let specs = small_specs();
        let serial = run_serial(&specs);
        let parallel = run_parallel(&specs, 3);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.spec.id, p.spec.id);
            assert_eq!(s.stats(), p.stats());
        }
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let specs = small_specs();
        assert_eq!(run_parallel(&specs, 0).len(), specs.len());
    }
}
