//! Minimal micro-benchmark harness for the `harness = false` bench
//! targets. The workspace builds offline with no external crates, so
//! instead of `criterion` each bench target is a plain `main()` that
//! drives [`Runner`]: auto-calibrated iteration counts, wall-clock
//! timing via [`std::time::Instant`], and a name filter from argv so
//! `cargo bench --bench substrate -- shuffle` works as expected.

// gsdram-lint: allow(D2) wall-clock ns/iter is this harness's deliverable, not simulation state
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each measurement loop runs before we trust the ns/iter
/// figure. Long enough to dominate timer noise, short enough that a
/// full `cargo bench` stays in seconds.
const TARGET: Duration = Duration::from_millis(20);

/// Runs named closures and prints one `ns/iter` line per bench.
#[derive(Debug)]
pub struct Runner {
    filter: Option<String>,
}

impl Runner {
    /// Builds a runner from the process arguments. Cargo passes
    /// `--bench` (and sometimes other flags) to the target; any
    /// non-flag argument is treated as a substring filter on bench
    /// names.
    pub fn from_env() -> Runner {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Runner { filter }
    }

    /// A runner that executes every bench (useful from tests).
    pub fn all() -> Runner {
        Runner { filter: None }
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `f`, doubling the iteration count until the measurement
    /// loop runs for the target duration, then prints ns/iter. Expensive bodies
    /// (one iteration already past the target) are reported from a
    /// single iteration.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        if !self.selected(name) {
            return;
        }
        f(); // warm-up
        let mut iters: u64 = 1;
        loop {
            // gsdram-lint: allow(D2) wall-clock ns/iter is this harness's deliverable, not simulation state
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = start.elapsed();
            if dt >= TARGET || iters >= 1 << 30 {
                let ns = dt.as_nanos() as f64 / iters as f64;
                println!("{name:<44} {ns:>14.1} ns/iter  ({iters} iters)");
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}
