//! # gsdram-bench
//!
//! Harness utilities shared by the figure-regeneration binaries (one per
//! table/figure of the paper — see DESIGN.md §5) and the Criterion
//! micro-benchmarks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use gsdram_system::config::SystemConfig;
use gsdram_system::machine::{Machine, RunReport, StopWhen};
use gsdram_system::ops::Program;

/// Builds the Table 1 machine with `cores` cores and `mem` bytes of
/// simulated memory, optionally with the stride prefetcher.
pub fn table1_machine(cores: usize, mem: usize, prefetch: bool) -> Machine {
    let cfg = SystemConfig::table1(cores, mem);
    let cfg = if prefetch { cfg.with_prefetch() } else { cfg };
    Machine::new(cfg)
}

/// Runs a single program to completion on `m`.
pub fn run_single(m: &mut Machine, p: &mut dyn Program) -> RunReport {
    let mut programs: Vec<&mut dyn Program> = vec![p];
    m.run(&mut programs, StopWhen::AllDone)
}

/// Runs two programs, stopping when core 0 finishes (the HTAP
/// methodology of §5.1).
pub fn run_htap(m: &mut Machine, p0: &mut dyn Program, p1: &mut dyn Program) -> RunReport {
    let mut programs: Vec<&mut dyn Program> = vec![p0, p1];
    m.run(&mut programs, StopWhen::CoreDone(0))
}

/// Formats cycles as millions with two decimals, like the paper's
/// y-axes.
pub fn mcycles(c: u64) -> String {
    format!("{:>9.2}", c as f64 / 1e6)
}

/// Prints a standard experiment header with the Table 1 configuration.
pub fn print_header(title: &str, extra: &str) {
    println!("================================================================");
    println!("{title}");
    println!("----------------------------------------------------------------");
    println!("System (paper Table 1): in-order x86-like cores @4 GHz;");
    println!("L1 32 KB/8-way private; L2 2 MB/8-way shared; 64 B lines;");
    println!("DDR3-1600, 1 channel/1 rank/8 banks, open row, FR-FCFS;");
    println!("GS-DRAM(8,3,3).");
    if !extra.is_empty() {
        println!("{extra}");
    }
    println!("================================================================");
}

/// Simple command-line flag lookup: `--name value`.
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Numeric flag with default.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    arg_value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Boolean flag presence.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::ops::{Op, ScriptedProgram};

    #[test]
    fn machine_and_run_helpers_work() {
        let mut m = table1_machine(1, 1 << 20, false);
        let base = m.malloc(4096);
        let mut p = ScriptedProgram::new(vec![Op::Load {
            pc: 1,
            addr: base,
            pattern: gsdram_core::PatternId(0),
        }]);
        let r = run_single(&mut m, &mut p);
        assert!(r.cpu_cycles > 0);
    }

    #[test]
    fn mcycles_formatting() {
        assert_eq!(mcycles(2_500_000).trim(), "2.50");
    }
}
