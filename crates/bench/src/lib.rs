//! # gsdram-bench
//!
//! The experiment engine: declarative run specs ([`spec`]), a registry
//! mapping every figure/ablation/extension of DESIGN.md §5–§6 to its
//! specs ([`experiments`]), a parallel sweep runner ([`sweep`]), shared
//! command-line parsing ([`args`]), registry listing and "did you
//! mean" errors ([`listing`]), the simulator-throughput harness
//! ([`perf`]) behind `gsdram-bench perf`, and the micro-benchmark
//! harness ([`micro`]) used by the `benches/` targets.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod experiments;
pub mod listing;
pub mod micro;
pub mod perf;
pub mod spec;
pub mod sweep;

use gsdram_system::config::SystemConfig;
use gsdram_system::machine::{Machine, RunReport, StopWhen};
use gsdram_system::ops::Program;

/// Builds the Table 1 machine with `cores` cores and `mem` bytes of
/// simulated memory, optionally with the stride prefetcher.
pub fn table1_machine(cores: usize, mem: usize, prefetch: bool) -> Machine {
    let cfg = SystemConfig::table1(cores, mem);
    let cfg = if prefetch { cfg.with_prefetch() } else { cfg };
    Machine::new(cfg)
}

/// Runs a single program to completion on `m`.
pub fn run_single(m: &mut Machine, p: &mut dyn Program) -> RunReport {
    let mut programs: Vec<&mut dyn Program> = vec![p];
    m.run(&mut programs, StopWhen::AllDone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_system::ops::{Op, ScriptedProgram};

    #[test]
    fn machine_and_run_helpers_work() {
        let mut m = table1_machine(1, 1 << 20, false);
        let base = m.malloc(4096);
        let mut p = ScriptedProgram::new(vec![Op::Load {
            pc: 1,
            addr: base,
            pattern: gsdram_core::PatternId(0),
        }]);
        let r = run_single(&mut m, &mut p);
        assert!(r.cpu_cycles > 0);
    }
}
