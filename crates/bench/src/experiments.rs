//! The experiment registry: every figure, ablation and extension of
//! DESIGN.md §5–§6 as an [`ExperimentDef`] — a `specs` function
//! mapping command-line knobs to the [`RunSpec`]s the experiment
//! needs, and a `render` function folding the outcomes into a summary
//! [`StatsNode`].
//!
//! Purely analytic experiments (fig7, the shuffle/pattern ablations,
//! the ECC extension) return no specs and compute their whole result
//! in `render`. Everything else goes through the sweep runner, so
//! `gsdram-sim sweep <name>` parallelises any experiment for free.

use gsdram_cache::cache::{CacheConfig, LineKey, SetAssocCache};
use gsdram_cache::overlap::OverlapCalc;
use gsdram_cache::sectored::SectoredCache;
use gsdram_core::analysis::{
    chip_conflicts, pattern_table, reads_for_stride, stride_label, MappingScheme,
};
use gsdram_core::ctl::{ctl_bank, CommandKind};
use gsdram_core::ecc::{Decode, EccModule};
use gsdram_core::mat::{EccGather, IntraChipCtl};
use gsdram_core::shuffle::ShuffleFn;
use gsdram_core::stats::StatsNode;
use gsdram_core::{
    gathered_elements, ColumnId, Geometry, GsDramConfig, GsModule, PatternId, RowId,
};
use gsdram_dram::controller::{RowPolicy, SchedPolicy};
use gsdram_dram::mapping::MapHash;
use gsdram_patterns::{gather_q, AccessOp, Generator, PatternLayout, PatternSpec};
use gsdram_telemetry::{chrome_trace, Telemetry, DEFAULT_CAPACITY};
use gsdram_workloads::common::SplitMix;
use gsdram_workloads::gemm::GemmVariant;
use gsdram_workloads::graph::GraphLayout;
use gsdram_workloads::imdb::{Layout, TxnSpec};
use gsdram_workloads::kvstore::KvLayout;
use gsdram_workloads::transpose::TransposeLayout;

use crate::args::Args;
use crate::listing;
use crate::spec::{MachineSpec, RunOutcome, RunSpec, WorkloadSpec};
use crate::sweep::{self, SweepMode};

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDef {
    /// Registry key (`fig9`, `ablation_shuffle`, …).
    pub name: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The run specs this experiment needs (may be empty for purely
    /// analytic experiments).
    pub specs: fn(&Args) -> Vec<RunSpec>,
    /// Folds the executed outcomes into the summary subtree.
    pub render: fn(&Args, &[RunOutcome]) -> StatsNode,
}

/// Every experiment, in DESIGN.md §5–§6 order.
pub const REGISTRY: &[ExperimentDef] = &[
    ExperimentDef {
        name: "fig7",
        title: "Figure 7: gathered cache lines of GS-DRAM(4,2,2) + Figure 6 mapping",
        specs: no_specs,
        render: fig7_render,
    },
    ExperimentDef {
        name: "fig9",
        title: "Figure 9: transaction execution time across read/write mixes",
        specs: fig9_specs,
        render: fig9_render,
    },
    ExperimentDef {
        name: "fig10",
        title: "Figure 10: analytics execution time (1-2 columns, +/- prefetch)",
        specs: fig10_specs,
        render: fig10_render,
    },
    ExperimentDef {
        name: "fig11",
        title: "Figure 11: HTAP analytics time and transaction throughput",
        specs: fig11_specs,
        render: fig11_render,
    },
    ExperimentDef {
        name: "fig12",
        title: "Figure 12: average performance and energy summary",
        specs: fig12_specs,
        render: fig12_render,
    },
    ExperimentDef {
        name: "fig13",
        title: "Figure 13: GEMM vs best tiled baseline, normalised to naive",
        specs: fig13_specs,
        render: fig13_render,
    },
    ExperimentDef {
        name: "ablation_shuffle",
        title: "Ablation: READ commands per gathered line with/without the shuffle",
        specs: no_specs,
        render: ablation_shuffle_render,
    },
    ExperimentDef {
        name: "ablation_patterns",
        title: "Ablation: pattern-ID width, wide patterns, intra-chip translation",
        specs: no_specs,
        render: ablation_patterns_render,
    },
    ExperimentDef {
        name: "ablation_sectored",
        title: "Ablation: pattern-tagged cache vs sectored cache (S4.1)",
        specs: no_specs,
        render: ablation_sectored_render,
    },
    ExperimentDef {
        name: "ablation_scheduler",
        title: "Ablation: FR-FCFS vs FCFS under HTAP",
        specs: ablation_scheduler_specs,
        render: ablation_scheduler_render,
    },
    ExperimentDef {
        name: "ablation_sched",
        title: "Ablation: scheduling engines (fr-fcfs, fcfs, fr-fcfs-cap, bank-rr) under HTAP",
        specs: ablation_sched_specs,
        render: ablation_sched_render,
    },
    ExperimentDef {
        name: "ablation_mapping",
        title: "Ablation: direct vs XOR-hashed bank mapping",
        specs: ablation_mapping_specs,
        render: ablation_mapping_render,
    },
    ExperimentDef {
        name: "ablation_row_policy",
        title: "Ablation: open-row vs closed-row buffer management",
        specs: ablation_row_policy_specs,
        render: ablation_row_policy_render,
    },
    ExperimentDef {
        name: "ablation_impulse",
        title: "Ablation: GS-DRAM vs Impulse controller-side gather",
        specs: ablation_impulse_specs,
        render: ablation_impulse_render,
    },
    ExperimentDef {
        name: "extension_ecc",
        title: "Extension: SEC-DED coverage under every gather pattern (S6.3)",
        specs: no_specs,
        render: extension_ecc_render,
    },
    ExperimentDef {
        name: "extension_filter",
        title: "Extension: selective projection vs selectivity",
        specs: extension_filter_specs,
        render: extension_filter_render,
    },
    ExperimentDef {
        name: "extension_transpose",
        title: "Extension: out-of-place matrix transpose",
        specs: extension_transpose_specs,
        render: extension_transpose_render,
    },
    ExperimentDef {
        name: "extras_kvstore_graph",
        title: "Extras (S5.3): key-value store and graph processing",
        specs: extras_specs,
        render: extras_render,
    },
    ExperimentDef {
        name: "pattern_stride_sweep",
        title: "Patterns: uniform-stride gather sweep, row vs GS-DRAM",
        specs: pattern_stride_sweep_specs,
        render: pattern_stride_sweep_render,
    },
    ExperimentDef {
        name: "pattern_indirect",
        title: "Patterns: windowed-random + indirect streams, incl. duplicate scatter",
        specs: pattern_indirect_specs,
        render: pattern_indirect_render,
    },
    ExperimentDef {
        name: "scale_channels",
        title: "Scaling: fig10 analytics across 1/2/4 DRAM channels, row vs GS layout",
        specs: scale_channels_specs,
        render: scale_channels_render,
    },
];

/// Looks up an experiment by registry key.
pub fn find(name: &str) -> Option<&'static ExperimentDef> {
    REGISTRY.iter().find(|d| d.name == name)
}

/// All registry keys.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|d| d.name).collect()
}

/// Every registry entry as a [`listing::Entry`] (name + title), in
/// registration order — the rows behind [`resolve`]'s error and the
/// binaries' `--list` output.
pub fn listing_entries() -> Vec<listing::Entry> {
    REGISTRY
        .iter()
        .map(|d| listing::Entry::new(d.name, d.title))
        .collect()
}

/// Looks up an experiment by registry key, or returns an error listing
/// the whole registry (name + title per line, plus a "did you mean"
/// when a registered name is close) — the one unknown-name message
/// `sweep`, `trace` and the experiment binaries all share.
pub fn resolve(name: &str) -> Result<&'static ExperimentDef, String> {
    find(name).ok_or_else(|| {
        listing::unknown(
            "experiment",
            name,
            "registered experiments",
            &listing_entries(),
        )
    })
}

/// Executes an experiment: builds its specs, runs them (mode from
/// `--serial` / `--threads`), and assembles the full stats tree —
/// `runs` holds one subtree per outcome, `summary` the rendered
/// figure-level numbers.
pub fn run_experiment(def: &ExperimentDef, args: &Args) -> StatsNode {
    let specs = (def.specs)(args);
    let outcomes = sweep::run(&specs, SweepMode::from_args(args));
    assemble(def, args, &outcomes)
}

/// [`run_experiment`] with a telemetry collector attached to every run:
/// returns the same stats tree (observation never perturbs simulation,
/// so it is bit-identical to the untraced one) plus each run's
/// [`Telemetry`], keyed by spec id in input order. `capacity` bounds
/// each collector's event/occupancy ring buffers.
pub fn run_experiment_traced(
    def: &ExperimentDef,
    args: &Args,
    capacity: usize,
) -> (StatsNode, Vec<(String, Telemetry)>) {
    let specs = (def.specs)(args);
    let pairs = sweep::run_traced(&specs, SweepMode::from_args(args), capacity);
    let (outcomes, telemetry): (Vec<RunOutcome>, Vec<Telemetry>) = pairs.into_iter().unzip();
    let node = assemble(def, args, &outcomes);
    let traces = outcomes
        .iter()
        .map(|o| o.spec.id.clone())
        .zip(telemetry)
        .collect();
    (node, traces)
}

/// Folds executed outcomes into the experiment's full stats tree —
/// the one place the tree shape is defined, shared by the traced and
/// untraced paths so they cannot drift apart.
fn assemble(def: &ExperimentDef, args: &Args, outcomes: &[RunOutcome]) -> StatsNode {
    let runs = StatsNode::new("runs").children_from(outcomes.iter().map(RunOutcome::stats));
    StatsNode::new(def.name)
        .text("title", def.title)
        .counter("total_runs", outcomes.len() as u64)
        .child(runs)
        .child((def.render)(args, outcomes))
}

/// Renders each run's per-channel read-latency histogram as an ASCII
/// table (count/mean/quantiles plus a bar per occupied bucket) — the
/// `--hist` output of the sweep runner.
pub fn hist_summary(traces: &[(String, Telemetry)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (id, t) in traces {
        for ch in 0..t.channels() {
            let Some(h) = t.read_latency(ch) else {
                continue;
            };
            if h.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{id} ch{ch} read latency (mem cycles): \
                 n={} mean={:.1} p50={} p95={} p99={} max={}",
                h.count(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max(),
            );
            let peak = h.nonempty().map(|(_, _, c)| c).max().unwrap_or(1);
            for (lo, hi, count) in h.nonempty() {
                let bar = "#".repeat(((count * 40).div_ceil(peak)) as usize);
                let _ = writeln!(out, "  {lo:>8}..{hi:<8} {count:>8} {bar}");
            }
        }
    }
    out
}

/// Writes `contents` to `path`, creating parent directories.
fn write_output(path: &str, contents: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// Runs the named experiment with standard output handling: prints the
/// stats tree (unless `--quiet`), `--hist` adds per-run read-latency
/// histograms, `--trace-out <path>` writes a Chrome trace-event JSON
/// of every run (`--trace-cap N` bounds each event ring), and `--json
/// <path>` writes the pretty stats JSON — all creating parent
/// directories. The stats tree (and therefore the `--json` figure
/// file) is byte-identical whether or not tracing was requested.
pub fn run_named(name: &str, args: &Args) -> Result<StatsNode, String> {
    let def = resolve(name)?;
    let trace_out = args.value("--trace-out");
    let want_hist = args.flag("--hist");
    let node = if trace_out.is_some() || want_hist {
        let capacity = args.usize("--trace-cap", DEFAULT_CAPACITY);
        let (node, traces) = run_experiment_traced(def, args, capacity);
        if !args.flag("--quiet") {
            print!("{}", node.render());
        }
        if want_hist {
            print!("{}", hist_summary(&traces));
        }
        if let Some(path) = trace_out {
            let named: Vec<(String, &Telemetry)> =
                traces.iter().map(|(id, t)| (id.clone(), t)).collect();
            write_output(&path, &chrome_trace(&named))?;
        }
        node
    } else {
        let node = run_experiment(def, args);
        if !args.flag("--quiet") {
            print!("{}", node.render());
        }
        node
    };
    if let Some(path) = args.value("--json") {
        write_output(&path, &node.to_json_pretty())?;
    }
    Ok(node)
}

/// `main` body for the thin experiment binaries: parse the process
/// arguments and run `name`.
pub fn cli_main(name: &str) -> std::process::ExitCode {
    match run_named(name, &Args::from_env()) {
        Ok(_) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------- helpers

fn no_specs(_args: &Args) -> Vec<RunSpec> {
    Vec::new()
}

fn slug(layout: Layout) -> &'static str {
    match layout {
        Layout::RowStore => "row",
        Layout::ColumnStore => "column",
        Layout::GsDram => "gs",
    }
}

fn table_mem(tuples: u64) -> usize {
    (tuples as usize * 64) * 2
}

fn get<'a>(outs: &'a [RunOutcome], id: &str) -> &'a RunOutcome {
    outs.iter()
        .find(|o| o.spec.id == id)
        .unwrap_or_else(|| panic!("missing outcome '{id}'"))
}

fn mc(cycles: f64) -> f64 {
    cycles / 1e6
}

// ---------------------------------------------------------------- fig7

fn fig7_render(_args: &Args, _outs: &[RunOutcome]) -> StatsNode {
    let cfg = GsDramConfig::gs_dram_4_2_2();
    let mut groups: Vec<(u8, StatsNode)> = Vec::new();
    for e in &pattern_table(&cfg, 4) {
        if groups.last().is_none_or(|(p, _)| *p != e.pattern.0) {
            groups.push((
                e.pattern.0,
                StatsNode::new(format!("pattern{}", e.pattern.0))
                    .text("stride", stride_label(&cfg, e.pattern)),
            ));
        }
        // gsdram-lint: allow(D4) popped immediately after the push above
        let (p, node) = groups.pop().expect("just pushed");
        let cells: Vec<String> = e.elements.iter().map(|x| x.to_string()).collect();
        groups.push((p, node.text(format!("col{}", e.col.0), cells.join(" "))));
    }
    let figure7 = StatsNode::new("figure7").children_from(groups.into_iter().map(|(_, n)| n));

    // Figure 6: the shuffled mapping of four 4-field tuples
    // (value ij = tuple i, field j).
    // gsdram-lint: allow(D4) fixed demo geometry known valid
    let geom = Geometry::new(&cfg, 1, 16).expect("valid geometry");
    let mut m = GsModule::new(cfg.clone(), geom);
    for t in 0..4u64 {
        let tuple: Vec<u64> = (0..4).map(|f| t * 10 + f).collect();
        m.write_line(RowId(0), ColumnId(t as u32), PatternId(0), true, &tuple)
            // gsdram-lint: allow(D4) fixed demo row/column bounds
            .expect("in range");
    }
    let mut figure6 = StatsNode::new("figure6").text("chips", "chip0 chip1 chip2 chip3");
    for col in 0..4u32 {
        let row: Vec<String> = (0..4)
            .map(|chip| m.chip_words(chip)[col as usize].to_string())
            .collect();
        figure6 = figure6.text(format!("col{col}"), row.join(" "));
    }

    let tuple2 = m
        .read_line(RowId(0), ColumnId(2), PatternId(0), true)
        // gsdram-lint: allow(D4) fixed demo row/column bounds
        .expect("in range");
    let field0 = m
        .read_line(RowId(0), ColumnId(0), PatternId(3), true)
        // gsdram-lint: allow(D4) fixed demo row/column bounds
        .expect("in range");
    let field1 = m
        .read_line(RowId(0), ColumnId(1), PatternId(3), true)
        // gsdram-lint: allow(D4) fixed demo row/column bounds
        .expect("in range");
    let walkthrough = StatsNode::new("walkthrough_s3_4")
        .text(
            "read_col2_pattern0",
            format!("{tuple2:?} (the third tuple)"),
        )
        .text(
            "read_col0_pattern3",
            format!("{field0:?} (field 0 of tuples 0..4)"),
        )
        .text(
            "read_col1_pattern3",
            format!("{field1:?} (field 1 of tuples 0..4)"),
        );

    StatsNode::new("summary")
        .child(figure7)
        .child(figure6)
        .child(walkthrough)
}

// ---------------------------------------------------------------- fig9

fn fig9_specs(args: &Args) -> Vec<RunSpec> {
    let txns = args.u64("--txns", 10_000);
    let tuples = args.u64("--tuples", 1 << 20);
    let mut v = Vec::new();
    for spec in TxnSpec::FIGURE9 {
        for layout in Layout::ALL {
            v.push(RunSpec {
                id: format!("fig9/{}/{}", spec.label(), slug(layout)),
                machine: MachineSpec::table1(1, table_mem(tuples)),
                workload: WorkloadSpec::Transactions {
                    layout,
                    spec,
                    tuples,
                    txns,
                    seed: 42,
                },
            });
        }
    }
    v
}

fn fig9_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut mixes = Vec::new();
    let (mut col_gs, mut gs_row) = (0.0f64, 0.0f64);
    for spec in TxnSpec::FIGURE9 {
        let c: Vec<f64> = Layout::ALL
            .iter()
            .map(|&l| get(outs, &format!("fig9/{}/{}", spec.label(), slug(l))).scaled_cycles())
            .collect();
        col_gs += c[1] / c[2];
        gs_row += c[2] / c[0];
        mixes.push(
            StatsNode::new(format!("mix_{}", spec.label()))
                .gauge("row_mcycles", mc(c[0]))
                .gauge("column_mcycles", mc(c[1]))
                .gauge("gs_mcycles", mc(c[2]))
                .gauge("col_over_gs", c[1] / c[2])
                .gauge("gs_over_row", c[2] / c[0]),
        );
    }
    let n = TxnSpec::FIGURE9.len() as f64;
    StatsNode::new("summary")
        .text("paper", "avg Column/GS ~3x; avg GS/Row ~1x")
        .gauge("avg_col_over_gs", col_gs / n)
        .gauge("avg_gs_over_row", gs_row / n)
        .children_from(mixes)
}

// ---------------------------------------------------------------- fig10

fn fig10_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 20);
    let mut v = Vec::new();
    for prefetch in [false, true] {
        for k in [1usize, 2] {
            for layout in Layout::ALL {
                let machine = MachineSpec::table1(1, table_mem(tuples));
                v.push(RunSpec {
                    id: format!(
                        "fig10/{}/k{k}/{}",
                        if prefetch { "pref" } else { "nopref" },
                        slug(layout)
                    ),
                    machine: if prefetch {
                        machine.with_prefetch()
                    } else {
                        machine
                    },
                    workload: WorkloadSpec::Analytics {
                        layout,
                        tuples,
                        columns: (0..k).collect(),
                    },
                });
            }
        }
    }
    v
}

fn fig10_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut configs = Vec::new();
    for prefetch in ["nopref", "pref"] {
        for k in [1usize, 2] {
            let c: Vec<f64> = Layout::ALL
                .iter()
                .map(|&l| get(outs, &format!("fig10/{prefetch}/k{k}/{}", slug(l))).scaled_cycles())
                .collect();
            configs.push(
                StatsNode::new(format!("{prefetch}_k{k}"))
                    .gauge("row_mcycles", mc(c[0]))
                    .gauge("column_mcycles", mc(c[1]))
                    .gauge("gs_mcycles", mc(c[2]))
                    .gauge("row_over_gs", c[0] / c[2]),
            );
        }
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "GS ~= Column Store; ~2x over Row Store; prefetch helps all",
        )
        .children_from(configs)
}

// ---------------------------------------------------------------- fig11

fn fig11_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 20);
    let spec = TxnSpec {
        read_only: 1,
        write_only: 1,
        read_write: 0,
    };
    let mut v = Vec::new();
    for prefetch in [false, true] {
        for layout in Layout::ALL {
            let machine = MachineSpec::table1(2, table_mem(tuples));
            v.push(RunSpec {
                id: format!(
                    "fig11/{}/{}",
                    if prefetch { "pref" } else { "nopref" },
                    slug(layout)
                ),
                machine: if prefetch {
                    machine.with_prefetch()
                } else {
                    machine
                },
                workload: WorkloadSpec::Htap {
                    layout,
                    tuples,
                    spec,
                    seed: 99,
                },
            });
        }
    }
    v
}

fn fig11_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut configs = Vec::new();
    for prefetch in ["nopref", "pref"] {
        for layout in Layout::ALL {
            let o = get(outs, &format!("fig11/{prefetch}/{}", slug(layout)));
            configs.push(
                StatsNode::new(format!("{prefetch}_{}", slug(layout)))
                    .gauge("analytics_mcycles", mc(o.scaled_cycles()))
                    .gauge(
                        "txn_throughput_mps",
                        // gsdram-lint: allow(D4) htap experiment always records this extra
                        o.extra("txn_throughput_mps").expect("htap outcome"),
                    ),
            );
        }
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "analytics: GS ~= Column << Row; throughput: GS > Row > Column",
        )
        .children_from(configs)
}

// ---------------------------------------------------------------- fig12

fn fig12_specs(args: &Args) -> Vec<RunSpec> {
    let txns = args.u64("--txns", 10_000);
    let tuples = args.u64("--tuples", 1 << 20);
    let mut v = Vec::new();
    for spec in TxnSpec::FIGURE9 {
        for layout in Layout::ALL {
            v.push(RunSpec {
                id: format!("fig12/txn/{}/{}", spec.label(), slug(layout)),
                machine: MachineSpec::table1(1, table_mem(tuples)),
                workload: WorkloadSpec::Transactions {
                    layout,
                    spec,
                    tuples,
                    txns,
                    seed: 42,
                },
            });
        }
    }
    for prefetch in [true, false] {
        for k in [1usize, 2] {
            for layout in Layout::ALL {
                let machine = MachineSpec::table1(1, table_mem(tuples));
                v.push(RunSpec {
                    id: format!(
                        "fig12/anal-{}/k{k}/{}",
                        if prefetch { "pref" } else { "nopref" },
                        slug(layout)
                    ),
                    machine: if prefetch {
                        machine.with_prefetch()
                    } else {
                        machine
                    },
                    workload: WorkloadSpec::Analytics {
                        layout,
                        tuples,
                        columns: (0..k).collect(),
                    },
                });
            }
        }
    }
    v
}

fn fig12_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let n_mixes = TxnSpec::FIGURE9.len() as f64;
    let mut txn_cycles = [0.0f64; 3];
    let mut txn_energy = [0.0f64; 3];
    for spec in TxnSpec::FIGURE9 {
        for (li, &layout) in Layout::ALL.iter().enumerate() {
            let o = get(
                outs,
                &format!("fig12/txn/{}/{}", spec.label(), slug(layout)),
            );
            txn_cycles[li] += o.scaled_cycles() / n_mixes;
            txn_energy[li] += o.report.energy.total_mj() / n_mixes;
        }
    }
    let mut anal_cycles = [0.0f64; 3];
    let mut anal_energy = [0.0f64; 3];
    let mut anal_energy_nopref = [0.0f64; 3];
    for k in [1usize, 2] {
        for (li, &layout) in Layout::ALL.iter().enumerate() {
            let o = get(outs, &format!("fig12/anal-pref/k{k}/{}", slug(layout)));
            anal_cycles[li] += o.scaled_cycles() / 2.0;
            anal_energy[li] += o.report.energy.total_mj() / 2.0;
            let o = get(outs, &format!("fig12/anal-nopref/k{k}/{}", slug(layout)));
            anal_energy_nopref[li] += o.report.energy.total_mj() / 2.0;
        }
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "txn energy Col/GS 2.1x, GS/Row ~1x; anal energy Row/GS 2.4x pref, 4x no pref",
        )
        .child(
            StatsNode::new("time_mcycles")
                .gauge("txn_row", mc(txn_cycles[0]))
                .gauge("txn_column", mc(txn_cycles[1]))
                .gauge("txn_gs", mc(txn_cycles[2]))
                .gauge("anal_pref_row", mc(anal_cycles[0]))
                .gauge("anal_pref_column", mc(anal_cycles[1]))
                .gauge("anal_pref_gs", mc(anal_cycles[2])),
        )
        .child(
            StatsNode::new("energy_mj")
                .gauge("txn_row", txn_energy[0])
                .gauge("txn_column", txn_energy[1])
                .gauge("txn_gs", txn_energy[2])
                .gauge("anal_pref_row", anal_energy[0])
                .gauge("anal_pref_column", anal_energy[1])
                .gauge("anal_pref_gs", anal_energy[2])
                .gauge("anal_nopref_row", anal_energy_nopref[0])
                .gauge("anal_nopref_column", anal_energy_nopref[1])
                .gauge("anal_nopref_gs", anal_energy_nopref[2]),
        )
        .child(
            StatsNode::new("ratios")
                .gauge("txn_energy_col_over_gs", txn_energy[1] / txn_energy[2])
                .gauge("txn_energy_gs_over_row", txn_energy[2] / txn_energy[0])
                .gauge(
                    "anal_energy_row_over_gs_pref",
                    anal_energy[0] / anal_energy[2],
                )
                .gauge(
                    "anal_energy_row_over_gs_nopref",
                    anal_energy_nopref[0] / anal_energy_nopref[2],
                ),
        )
}

// ---------------------------------------------------------------- fig13

const FIG13_SIZES: &[usize] = &[32, 64, 128, 256, 512, 1024];
const FIG13_TILES: &[usize] = &[16, 32, 64];

fn fig13_sample(n: usize, variant: GemmVariant, full: bool) -> Option<usize> {
    // The paper enables the prefetcher only for analytics; GEMM runs
    // without it. For n >= 256 the outermost loop is sampled and
    // scaled — per-stripe behaviour is uniform (pass --full to
    // simulate everything).
    if full || n < 256 {
        None
    } else {
        match variant {
            GemmVariant::Naive => Some(8),
            _ => Some(2),
        }
    }
}

fn fig13_mem(n: usize) -> usize {
    (3 * n * n * 8 + (8 << 20)).max(16 << 20)
}

fn fig13_specs(args: &Args) -> Vec<RunSpec> {
    let sizes = args.usize_list("--sizes", FIG13_SIZES);
    let full = args.flag("--full");
    let mut v = Vec::new();
    for n in sizes {
        let machine = MachineSpec::table1(1, fig13_mem(n));
        let variant = GemmVariant::Naive;
        v.push(RunSpec {
            id: format!("fig13/n{n}/naive"),
            machine: machine.clone(),
            workload: WorkloadSpec::Gemm {
                n,
                variant,
                sample: fig13_sample(n, variant, full),
            },
        });
        for &t in FIG13_TILES.iter().filter(|&&t| t <= n) {
            let variant = GemmVariant::TiledSimd { tile: t };
            v.push(RunSpec {
                id: format!("fig13/n{n}/tiled{t}"),
                machine: machine.clone(),
                workload: WorkloadSpec::Gemm {
                    n,
                    variant,
                    sample: fig13_sample(n, variant, full),
                },
            });
            let variant = GemmVariant::GsDram { tile: t };
            v.push(RunSpec {
                id: format!("fig13/n{n}/gs{t}"),
                machine: machine.clone(),
                workload: WorkloadSpec::Gemm {
                    n,
                    variant,
                    sample: fig13_sample(n, variant, full),
                },
            });
        }
    }
    v
}

fn fig13_render(args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let sizes = args.usize_list("--sizes", FIG13_SIZES);
    let mut rows = Vec::new();
    for n in sizes {
        let naive = get(outs, &format!("fig13/n{n}/naive")).scaled_cycles();
        let (mut best_tiled, mut best_tile) = (f64::INFINITY, 0usize);
        for &t in FIG13_TILES.iter().filter(|&&t| t <= n) {
            let c = get(outs, &format!("fig13/n{n}/tiled{t}")).scaled_cycles();
            if c < best_tiled {
                best_tiled = c;
                best_tile = t;
            }
        }
        let gs = get(outs, &format!("fig13/n{n}/gs{best_tile}")).scaled_cycles();
        rows.push(
            StatsNode::new(format!("n{n}"))
                .gauge("naive_mcycles", mc(naive))
                .gauge("best_tiled_mcycles", mc(best_tiled))
                .counter("best_tile", best_tile as u64)
                .gauge("gs_mcycles", mc(gs))
                .gauge("tiled_over_naive", best_tiled / naive)
                .gauge("gs_gain_pct", (1.0 - gs / best_tiled) * 100.0),
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "tiled/naive shrinks with n; GS beats best tiled by ~10-11%",
        )
        .children_from(rows)
}

// ------------------------------------------------------- ablation_shuffle

fn ablation_shuffle_render(_args: &Args, _outs: &[RunOutcome]) -> StatsNode {
    let cfg = GsDramConfig::gs_dram_8_3_3();
    let mut reads = StatsNode::new("reads_per_gathered_line");
    for stride in [1usize, 2, 4, 8] {
        reads = reads
            .counter(
                format!("stride{stride}_naive"),
                reads_for_stride(&cfg, MappingScheme::Naive, stride) as u64,
            )
            .counter(
                format!("stride{stride}_shuffled"),
                reads_for_stride(&cfg, MappingScheme::Shuffled, stride) as u64,
            );
    }
    let elements: Vec<usize> = (0..8).map(|i| i * 8).collect();
    let mut prog = StatsNode::new("programmable_stride8_conflicts");
    for (name, f) in [
        ("identity", ShuffleFn::Identity),
        ("low_bits", ShuffleFn::LowBits),
        ("masked_0b110", ShuffleFn::Masked { mask: 0b110 }),
        ("masked_0b011", ShuffleFn::Masked { mask: 0b011 }),
        ("xor_fold_2", ShuffleFn::XorFold { groups: 2 }),
    ] {
        // gsdram-lint: allow(D4) fixed shuffle-fn parameters known valid
        let cfg = GsDramConfig::with_shuffle_fn(8, 3, 3, f).expect("valid");
        prog = prog.counter(
            name,
            chip_conflicts(&cfg, MappingScheme::Shuffled, &elements) as u64,
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "full shuffle: zero conflicts for every power-of-2 stride",
        )
        .child(reads)
        .child(prog)
}

// ------------------------------------------------------ ablation_patterns

fn ablation_patterns_render(_args: &Args, _outs: &[RunOutcome]) -> StatsNode {
    let mut widths = StatsNode::new("pattern_id_width");
    for p_bits in [1u8, 2, 3] {
        // gsdram-lint: allow(D4) fixed config parameters known valid
        let cfg = GsDramConfig::new(8, 3, p_bits).expect("valid");
        let labels: Vec<String> = cfg
            .patterns()
            .map(|p| format!("p{}:{}", p.0, stride_label(&cfg, p)))
            .collect();
        widths = widths.text(format!("gs_dram_8_3_{p_bits}"), labels.join("  "));
    }

    // gsdram-lint: allow(D4) fixed config parameters known valid
    let cfg = GsDramConfig::new(8, 3, 6).expect("valid");
    let mut wide = StatsNode::new("wide_pattern_ids_8_3_6");
    for p in [0u8, 7, 0b111_000, 0b111_111] {
        let e = gathered_elements(&cfg, PatternId(p), ColumnId(0), true);
        wide = wide.text(format!("pattern_{p:#08b}"), format!("{e:?}"));
    }

    // gsdram-lint: allow(D4) fixed intra-chip parameters known valid
    let intra = IntraChipCtl::new(8, 3).expect("valid");
    let cols: Vec<u32> = intra
        .tile_columns(PatternId(7), ColumnId(0))
        .iter()
        .map(|c| c.0)
        .collect();
    // gsdram-lint: allow(D4) fixed ECC parameters known valid
    let ecc = EccGather::new(8, 3).expect("valid");
    let mut all_covered = true;
    for p in 0..8u8 {
        for c in 0..16u32 {
            let data: Vec<ColumnId> = ctl_bank(&GsDramConfig::gs_dram_8_3_3())
                .iter()
                .map(|ctl| ctl.translate(CommandKind::Read, PatternId(p), ColumnId(c)))
                .collect();
            all_covered &= ecc.covers(PatternId(p), ColumnId(c), &data);
        }
    }
    let intra_node = StatsNode::new("intra_chip_s6_3")
        .counter("bytes_per_tile", intra.bytes_per_tile() as u64)
        .counter("tiles", intra.tiles() as u64)
        .text("pattern7_col0_tile_columns", format!("{cols:?}"))
        .text(
            "ecc_coverage",
            if all_covered {
                "complete"
            } else {
                "INCOMPLETE"
            },
        );

    StatsNode::new("summary")
        .child(widths)
        .child(wide)
        .child(intra_node)
}

// ------------------------------------------------------ ablation_sectored

fn ablation_sectored_render(args: &Args, _outs: &[RunOutcome]) -> StatsNode {
    let gathered_lines = args.u64("--lines", 4096);
    let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);
    let cfg = CacheConfig::l1_32k();
    // Pattern-tagged design: each gathered line is ONE entry; the
    // sectored alternative scatters it over its home lines' sectors.
    let mut tagged = SetAssocCache::new(cfg);
    let mut sectored = SectoredCache::new(cfg);
    let mut sectored_rmw = 0u64;
    for g in 0..gathered_lines {
        let key = LineKey::new(g * 8 * 64, 64, PatternId(7));
        // Every 4th line is modified after the scan (an update query),
        // to surface the writeback difference.
        let write = g % 4 == 0;
        if !tagged.probe(key, write) {
            tagged.fill(key, vec![0; 8]);
            if write {
                tagged.probe(key, true);
            }
        }
        for (w, addr) in calc.word_addresses(key, true).into_iter().enumerate() {
            if !sectored.probe(addr, write && w == 0) {
                if let Some(ev) = sectored.fill_sector(addr, w as u64) {
                    if ev.needs_rmw(8) {
                        sectored_rmw += 1;
                    }
                }
                if write && w == 0 {
                    sectored.probe(addr, true);
                }
            }
        }
    }
    let t = tagged.stats();
    let s = sectored.stats();
    let (tags, util) = sectored.tag_utilisation();
    StatsNode::new("summary")
        .text(
            "paper",
            "S4.1: sectoring burns 8x tags at ~1/8 utilisation + RMW writebacks",
        )
        .counter("gathered_lines", gathered_lines)
        .child(
            StatsNode::new("pattern_tagged")
                .counter("lookups", t.hits + t.misses)
                .gauge("miss_rate", t.miss_rate())
                .counter("resident_tag_entries", tagged.resident_keys().len() as u64)
                .counter("tag_entries_per_gathered_line", 1)
                .counter("rmw_writebacks", 0),
        )
        .child(
            StatsNode::new("sectored")
                .counter("lookups", s.hits + s.misses)
                .gauge("miss_rate", s.miss_rate())
                .counter("resident_tag_entries", tags as u64)
                .counter("tag_entries_per_gathered_line", 8)
                .gauge("resident_tag_utilisation", util)
                .counter("rmw_writebacks", s.partial_writebacks.max(sectored_rmw)),
        )
}

// ----------------------------------------------------- ablation_scheduler

fn ablation_scheduler_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 18);
    let spec = TxnSpec {
        read_only: 1,
        write_only: 1,
        read_write: 0,
    };
    let mut v = Vec::new();
    for (pname, policy) in [("frfcfs", SchedPolicy::FrFcfs), ("fcfs", SchedPolicy::Fcfs)] {
        for layout in [Layout::RowStore, Layout::GsDram] {
            // Prefetching keeps several analytics requests queued at
            // the controller — that is what lets FR-FCFS starve the
            // transaction thread (S5.1).
            let mut machine = MachineSpec::table1(2, table_mem(tuples)).with_prefetch();
            machine.sched = policy;
            v.push(RunSpec {
                id: format!("ablation_scheduler/{pname}/{}", slug(layout)),
                machine,
                workload: WorkloadSpec::Htap {
                    layout,
                    tuples,
                    spec,
                    seed: 99,
                },
            });
        }
    }
    v
}

fn ablation_scheduler_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut configs = Vec::new();
    for pname in ["frfcfs", "fcfs"] {
        for layout in [Layout::RowStore, Layout::GsDram] {
            let o = get(
                outs,
                &format!("ablation_scheduler/{pname}/{}", slug(layout)),
            );
            configs.push(
                StatsNode::new(format!("{pname}_{}", slug(layout)))
                    .gauge("analytics_mcycles", mc(o.scaled_cycles()))
                    .gauge(
                        "txn_throughput_mps",
                        // gsdram-lint: allow(D4) htap experiment always records this extra
                        o.extra("txn_throughput_mps").expect("htap outcome"),
                    ),
            );
        }
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "FCFS removes the row-hit prioritisation that starves Row Store txns",
        )
        .children_from(configs)
}

// -------------------------------------------------------- ablation_sched

/// The scheduling engines the `ablation_sched` experiment compares,
/// with the spec-id slug for each.
const SCHED_VARIANTS: [(&str, SchedPolicy); 4] = [
    ("frfcfs", SchedPolicy::FrFcfs),
    ("fcfs", SchedPolicy::Fcfs),
    (
        "frfcfs-cap",
        SchedPolicy::FrFcfsCap {
            cap: SchedPolicy::DEFAULT_CAP,
        },
    ),
    (
        "bank-rr",
        SchedPolicy::BankRr {
            batch: SchedPolicy::DEFAULT_BATCH,
        },
    ),
];

fn ablation_sched_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 18);
    let spec = TxnSpec {
        read_only: 1,
        write_only: 1,
        read_write: 0,
    };
    let mut v = Vec::new();
    for (pname, policy) in SCHED_VARIANTS {
        for layout in [Layout::RowStore, Layout::GsDram] {
            // Prefetching keeps several analytics requests queued at
            // the controller, so the engines' fairness choices (row-hit
            // bypasses, starvation caps, bank batching) actually bind.
            let mut machine = MachineSpec::table1(2, table_mem(tuples)).with_prefetch();
            machine.sched = policy;
            v.push(RunSpec {
                id: format!("ablation_sched/{pname}/{}", slug(layout)),
                machine,
                workload: WorkloadSpec::Htap {
                    layout,
                    tuples,
                    spec,
                    seed: 99,
                },
            });
        }
    }
    v
}

fn ablation_sched_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut configs = Vec::new();
    for (pname, _) in SCHED_VARIANTS {
        for layout in [Layout::RowStore, Layout::GsDram] {
            let o = get(outs, &format!("ablation_sched/{pname}/{}", slug(layout)));
            let d = &o.report.dram;
            configs.push(
                StatsNode::new(format!("{pname}_{}", slug(layout)))
                    .gauge("analytics_mcycles", mc(o.scaled_cycles()))
                    .gauge(
                        "txn_throughput_mps",
                        // gsdram-lint: allow(D4) htap experiment always records this extra
                        o.extra("txn_throughput_mps").expect("htap outcome"),
                    )
                    .gauge("row_hit_rate", d.row_hit_rate())
                    .counter("sched_hit_bypasses", d.sched_hit_bypasses)
                    .counter("sched_promotions", d.sched_promotions)
                    .counter("sched_batch_rotations", d.sched_batch_rotations),
            );
        }
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "engine ablation of the S5.1 starvation effect: the cap bounds \
             row-hit bypasses, bank-rr trades hit rate for bank fairness",
        )
        .children_from(configs)
}

// ------------------------------------------------------ ablation_mapping

/// The XOR-stage presets the `ablation_mapping` experiment compares.
/// `MapHash::XorBank` is the pipeline form of the old row-XOR bank
/// hash — same permutation, so the frozen ablation baseline holds.
const MAPPING_VARIANTS: [(&str, MapHash); 2] =
    [("direct", MapHash::Direct), ("xor-bank", MapHash::XorBank)];

fn ablation_mapping_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 18);
    let mut v = Vec::new();
    for (mname, mapping) in MAPPING_VARIANTS {
        for layout in [Layout::RowStore, Layout::GsDram] {
            let mut machine = MachineSpec::table1(1, table_mem(tuples));
            machine.mapping = mapping;
            v.push(RunSpec {
                id: format!("ablation_mapping/{mname}/{}/anal", slug(layout)),
                machine: machine.clone(),
                workload: WorkloadSpec::Analytics {
                    layout,
                    tuples,
                    columns: vec![0],
                },
            });
            v.push(RunSpec {
                id: format!("ablation_mapping/{mname}/{}/txn", slug(layout)),
                machine,
                workload: WorkloadSpec::Transactions {
                    layout,
                    spec: TxnSpec {
                        read_only: 2,
                        write_only: 1,
                        read_write: 0,
                    },
                    tuples,
                    txns: 2000,
                    seed: 17,
                },
            });
        }
    }
    v
}

fn ablation_mapping_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut configs = Vec::new();
    for (mname, _) in MAPPING_VARIANTS {
        for layout in [Layout::RowStore, Layout::GsDram] {
            let anal = get(
                outs,
                &format!("ablation_mapping/{mname}/{}/anal", slug(layout)),
            );
            let txn = get(
                outs,
                &format!("ablation_mapping/{mname}/{}/txn", slug(layout)),
            );
            configs.push(
                StatsNode::new(format!("{mname}_{}", slug(layout)))
                    .gauge("analytics_mcycles", mc(anal.scaled_cycles()))
                    .gauge("txn_mcycles", mc(txn.scaled_cycles()))
                    .gauge("analytics_row_hit_rate", anal.report.dram.row_hit_rate())
                    .gauge("txn_row_hit_rate", txn.report.dram.row_hit_rate()),
            );
        }
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "XOR bank hashing spreads row-sequential traffic across banks; \
             sequential scans lose row locality, random txns change little",
        )
        .children_from(configs)
}

// ---------------------------------------------------- ablation_row_policy

fn ablation_row_policy_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 18);
    let mut v = Vec::new();
    for (pname, policy) in [("open", RowPolicy::Open), ("closed", RowPolicy::Closed)] {
        for layout in [Layout::RowStore, Layout::GsDram] {
            let mut machine = MachineSpec::table1(1, table_mem(tuples));
            machine.row_policy = policy;
            v.push(RunSpec {
                id: format!("ablation_row_policy/{pname}/{}/anal", slug(layout)),
                machine: machine.clone(),
                workload: WorkloadSpec::Analytics {
                    layout,
                    tuples,
                    columns: vec![0],
                },
            });
            v.push(RunSpec {
                id: format!("ablation_row_policy/{pname}/{}/txn", slug(layout)),
                machine,
                workload: WorkloadSpec::Transactions {
                    layout,
                    spec: TxnSpec {
                        read_only: 2,
                        write_only: 1,
                        read_write: 0,
                    },
                    tuples,
                    txns: 2000,
                    seed: 17,
                },
            });
        }
    }
    v
}

fn ablation_row_policy_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut configs = Vec::new();
    for pname in ["open", "closed"] {
        for layout in [Layout::RowStore, Layout::GsDram] {
            let anal = get(
                outs,
                &format!("ablation_row_policy/{pname}/{}/anal", slug(layout)),
            );
            let txn = get(
                outs,
                &format!("ablation_row_policy/{pname}/{}/txn", slug(layout)),
            );
            configs.push(
                StatsNode::new(format!("{pname}_{}", slug(layout)))
                    .gauge("analytics_mcycles", mc(anal.scaled_cycles()))
                    .gauge("txn_mcycles", mc(txn.scaled_cycles()))
                    .gauge("analytics_row_hit_rate", anal.report.dram.row_hit_rate()),
            );
        }
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "analytics regress badly under closed rows; random txns shift little",
        )
        .children_from(configs)
}

// ------------------------------------------------------- ablation_impulse

fn ablation_impulse_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 18);
    [
        ("row-store", false, Layout::RowStore),
        ("impulse", true, Layout::GsDram),
        ("gs-dram", false, Layout::GsDram),
    ]
    .into_iter()
    .map(|(name, impulse, layout)| {
        let machine = MachineSpec::table1(1, table_mem(tuples)).with_prefetch();
        RunSpec {
            id: format!("ablation_impulse/{name}"),
            machine: if impulse {
                machine.with_impulse()
            } else {
                machine
            },
            workload: WorkloadSpec::Analytics {
                layout,
                tuples,
                columns: vec![0],
            },
        }
    })
    .collect()
}

fn ablation_impulse_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut configs = Vec::new();
    for name in ["row-store", "impulse", "gs-dram"] {
        let o = get(outs, &format!("ablation_impulse/{name}"));
        configs.push(
            StatsNode::new(name)
                .gauge("mcycles", mc(o.scaled_cycles()))
                .counter("dram_reads", o.report.dram.reads)
                .gauge("dram_energy_mj", o.report.dram_energy.total_mj())
                .gauge("row_hit_rate", o.report.dram.row_hit_rate()),
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "Impulse matches GS-DRAM on the CPU side but needs ~8x the DRAM reads (S7)",
        )
        .children_from(configs)
}

// --------------------------------------------------------- extension_ecc

fn extension_ecc_render(args: &Args, _outs: &[RunOutcome]) -> StatsNode {
    let trials = args.u64("--trials", 20_000);
    let cfg = GsDramConfig::gs_dram_8_3_3();
    // gsdram-lint: allow(D4) fixed demo geometry known valid
    let geom = Geometry::ddr3_row(&cfg, 1).expect("valid");
    let mut rng = SplitMix(2026);
    let mut patterns = Vec::new();
    for p in 0..8u8 {
        let mut corrected = 0u64;
        let mut detected = 0u64;
        let singles = trials / 2;
        let doubles = trials - singles;
        for t in 0..trials {
            // Fresh content each trial.
            let mut m = EccModule::new(cfg.clone(), geom);
            let col = ColumnId(rng.below(128) as u32);
            let line: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
            m.write_line(RowId(0), col, PatternId(p), true, &line)
                // gsdram-lint: allow(D4) column and pattern drawn within geometry bounds
                .expect("in range");
            let word = rng.below(8) as usize;
            let double = t >= singles;
            let bits = if double {
                let b1 = rng.below(64);
                let mut b2 = rng.below(64);
                if b2 == b1 {
                    b2 = (b2 + 1) % 64;
                }
                (1u64 << b1) | (1u64 << b2)
            } else {
                1u64 << rng.below(64)
            };
            m.inject_data_error(RowId(0), col, PatternId(p), true, word, bits);
            let read = m
                .read_line(RowId(0), col, PatternId(p), true)
                // gsdram-lint: allow(D4) column and pattern drawn within geometry bounds
                .expect("in range");
            match read.outcomes[word] {
                Decode::Corrected(v) if !double => {
                    assert_eq!(v, line[word], "must correct to the original");
                    corrected += 1;
                }
                Decode::DoubleError if double => detected += 1,
                _ => {}
            }
        }
        assert_eq!(corrected, singles, "pattern {p}: every single must correct");
        assert_eq!(
            detected, doubles,
            "pattern {p}: every double must be detected"
        );
        patterns.push(
            StatsNode::new(format!("pattern{p}"))
                .counter("singles", singles)
                .counter("corrected", corrected)
                .counter("doubles", doubles)
                .counter("detected", detected),
        );
    }
    StatsNode::new("summary")
        .text("paper", "S6.3: seamless SEC-DED for all access patterns")
        .counter("trials_per_pattern", trials)
        .children_from(patterns)
}

// ------------------------------------------------------- extension_filter

const FILTER_PCTS: &[u64] = &[0, 1, 5, 25, 50, 100];

fn extension_filter_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 18);
    let mut v = Vec::new();
    for &pct in FILTER_PCTS {
        for layout in Layout::ALL {
            v.push(RunSpec {
                id: format!("extension_filter/p{pct}/{}", slug(layout)),
                machine: MachineSpec::table1(1, table_mem(tuples)).with_prefetch(),
                workload: WorkloadSpec::Filter {
                    layout,
                    tuples,
                    threshold: 8 * (tuples * pct / 100),
                    expected_matches: Some(tuples * pct / 100),
                },
            });
        }
    }
    v
}

fn extension_filter_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut rows = Vec::new();
    for &pct in FILTER_PCTS {
        let c: Vec<f64> = Layout::ALL
            .iter()
            .map(|&l| get(outs, &format!("extension_filter/p{pct}/{}", slug(l))).scaled_cycles())
            .collect();
        rows.push(
            StatsNode::new(format!("selectivity_{pct}pct"))
                .gauge("row_mcycles", mc(c[0]))
                .gauge("column_mcycles", mc(c[1]))
                .gauge("gs_mcycles", mc(c[2]))
                .gauge("row_over_gs", c[0] / c[2]),
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "pure scan ~3x over Row; advantage decays as tuple fetches dominate",
        )
        .children_from(rows)
}

// ---------------------------------------------------- extension_transpose

const TRANSPOSE_SIZES: &[usize] = &[128, 256, 512];

fn transpose_slug(layout: TransposeLayout) -> &'static str {
    match layout {
        TransposeLayout::RowMajor => "rowmajor",
        TransposeLayout::GsDram => "gs",
    }
}

fn extension_transpose_specs(args: &Args) -> Vec<RunSpec> {
    let sizes = args.usize_list("--sizes", TRANSPOSE_SIZES);
    let mut v = Vec::new();
    for n in sizes {
        for layout in [TransposeLayout::RowMajor, TransposeLayout::GsDram] {
            v.push(RunSpec {
                id: format!("extension_transpose/n{n}/{}", transpose_slug(layout)),
                machine: MachineSpec::table1(1, (2 * n * n * 8 * 2).max(16 << 20)),
                workload: WorkloadSpec::Transpose { layout, n },
            });
        }
    }
    v
}

fn extension_transpose_render(args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let sizes = args.usize_list("--sizes", TRANSPOSE_SIZES);
    let mut rows = Vec::new();
    for n in sizes {
        let rm = get(outs, &format!("extension_transpose/n{n}/rowmajor"));
        let gs = get(outs, &format!("extension_transpose/n{n}/gs"));
        rows.push(
            StatsNode::new(format!("n{n}"))
                .gauge("rowmajor_mcycles", mc(rm.scaled_cycles()))
                .gauge("gs_mcycles", mc(gs.scaled_cycles()))
                .gauge("speedup", rm.scaled_cycles() / gs.scaled_cycles())
                .counter("rowmajor_dram_reads", rm.report.dram.reads)
                .counter("gs_dram_reads", gs.report.dram.reads),
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "parity while the source fits in L2, clear GS win beyond it",
        )
        .children_from(rows)
}

// --------------------------------------------------- extras_kvstore_graph

fn kv_slug(layout: KvLayout) -> &'static str {
    match layout {
        KvLayout::Interleaved => "interleaved",
        KvLayout::GsDram => "gs",
    }
}

fn graph_slug(layout: GraphLayout) -> &'static str {
    match layout {
        GraphLayout::NodeMajor => "nodemajor",
        GraphLayout::GsDram => "gs",
    }
}

fn extras_specs(args: &Args) -> Vec<RunSpec> {
    let pairs = args.u64("--pairs", 1 << 16);
    let nodes = args.u64("--nodes", 1 << 17);
    let kv_mem = (pairs as usize * 16) * 4;
    let graph_mem = (nodes as usize * 64) * 2;
    let mut v = Vec::new();
    for layout in [KvLayout::Interleaved, KvLayout::GsDram] {
        v.push(RunSpec {
            id: format!("extras/kv-lookups/{}", kv_slug(layout)),
            machine: MachineSpec::table1(1, kv_mem).with_prefetch(),
            workload: WorkloadSpec::KvLookups {
                layout,
                pairs,
                scan_len: pairs / 2,
                count: 64,
                seed: 7,
            },
        });
        v.push(RunSpec {
            id: format!("extras/kv-inserts/{}", kv_slug(layout)),
            machine: MachineSpec::table1(1, kv_mem).with_prefetch(),
            workload: WorkloadSpec::KvInserts {
                layout,
                pairs,
                count: 2000,
                seed: 7,
            },
        });
    }
    for layout in [GraphLayout::NodeMajor, GraphLayout::GsDram] {
        v.push(RunSpec {
            id: format!("extras/graph-scan/{}", graph_slug(layout)),
            machine: MachineSpec::table1(1, graph_mem).with_prefetch(),
            workload: WorkloadSpec::GraphScan {
                layout,
                nodes,
                field: 0,
            },
        });
        v.push(RunSpec {
            id: format!("extras/graph-updates/{}", graph_slug(layout)),
            machine: MachineSpec::table1(1, graph_mem).with_prefetch(),
            workload: WorkloadSpec::GraphUpdates {
                layout,
                nodes,
                count: 2000,
                seed: 5,
            },
        });
    }
    v
}

fn extras_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let pair = |op: &str, base: &str| {
        let b = get(outs, &format!("extras/{op}/{base}")).scaled_cycles();
        let g = get(outs, &format!("extras/{op}/gs")).scaled_cycles();
        StatsNode::new(op.replace('-', "_"))
            .gauge("baseline_mcycles", mc(b))
            .gauge("gs_mcycles", mc(g))
            .gauge("speedup", b / g)
    };
    StatsNode::new("summary")
        .text(
            "paper",
            "gathers speed up scan-one-field phases; per-object phases neutral",
        )
        .child(pair("kv-lookups", "interleaved"))
        .child(pair("kv-inserts", "interleaved"))
        .child(pair("graph-scan", "nodemajor"))
        .child(pair("graph-updates", "nodemajor"))
}

// --------------------------------------------------- pattern_stride_sweep

/// Strides the sweep visits by default: the powers of two GS-DRAM
/// fully accelerates (2/4/8), even strides with only a partial
/// power-of-two factor (6/12), odd strides the shuffle cannot realign
/// at all (3/7), and strides past the chip count (16/32/64), where
/// the usable gather stride saturates at 8.
const STRIDE_SWEEP_DEFAULT: &[usize] = &[1, 2, 3, 4, 6, 7, 8, 12, 16, 32, 64];

/// The two data-array layouts every pattern experiment compares.
const PATTERN_LAYOUTS: [PatternLayout; 2] = [PatternLayout::Row, PatternLayout::GsDram];

fn pattern_stride_sweep_specs(args: &Args) -> Vec<RunSpec> {
    let accesses = args.u64("--accesses", 4096).clamp(64, 1 << 16);
    let seed = args.u64("--seed", 42);
    let mut v = Vec::new();
    for stride in args.usize_list("--strides", STRIDE_SWEEP_DEFAULT) {
        let stride = (stride as u64).clamp(1, 64);
        // Fixed access count: the data array grows with the stride,
        // so every run gathers the same number of words and the
        // cycle axis compares like with like.
        let spec = PatternSpec {
            name: format!("stride{stride}"),
            elements: (accesses * stride).next_multiple_of(64),
            seed,
            op: AccessOp::Gather,
            pattern: Generator::Stride {
                stride,
                count: accesses,
                start: 0,
            },
        };
        for layout in PATTERN_LAYOUTS {
            v.push(RunSpec {
                id: format!("pattern_stride_sweep/s{stride}/{}", layout.label()),
                machine: MachineSpec::table1(1, spec.mem_bytes_hint()),
                workload: WorkloadSpec::Pattern {
                    spec: spec.clone(),
                    layout,
                },
            });
        }
    }
    v
}

fn pattern_stride_sweep_render(args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut rows = Vec::new();
    for stride in args.usize_list("--strides", STRIDE_SWEEP_DEFAULT) {
        let stride = (stride as u64).clamp(1, 64);
        let row = get(outs, &format!("pattern_stride_sweep/s{stride}/row"));
        let gs = get(outs, &format!("pattern_stride_sweep/s{stride}/gs-dram"));
        rows.push(
            StatsNode::new(format!("s{stride}"))
                .counter("gather_q", gather_q(stride))
                .gauge("row_mcycles", mc(row.scaled_cycles()))
                .gauge("gs_mcycles", mc(gs.scaled_cycles()))
                .gauge("speedup", row.scaled_cycles() / gs.scaled_cycles())
                .counter("row_dram_reads", row.report.dram.reads)
                .counter("gs_dram_reads", gs.report.dram.reads),
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "the mechanism's reach in one sweep: speedup tracks the largest \
             power-of-two factor of the stride (capped at the 8 chips) and \
             collapses to 1x on odd strides",
        )
        .children_from(rows)
}

// ------------------------------------------------------- pattern_indirect

/// The hostile streams `pattern_indirect` measures: seeded-random
/// within a window, fully indirect gathers, and indirect scatters
/// without and with heavy duplicate addresses.
fn pattern_indirect_cases(args: &Args) -> Vec<PatternSpec> {
    let count = args.u64("--accesses", 4096).clamp(64, 1 << 16);
    let elements = args
        .u64("--elements", 65536)
        .clamp(64, 1 << 20)
        .next_multiple_of(64);
    let seed = args.u64("--seed", 42);
    let indirect = |dup_pct| Generator::Indirect {
        count,
        range: elements,
        dup_pct,
        indices: None,
    };
    vec![
        PatternSpec {
            name: "window".into(),
            elements,
            seed,
            op: AccessOp::Gather,
            pattern: Generator::WindowRandom {
                window: elements.min(4096),
                count,
            },
        },
        PatternSpec {
            name: "indirect".into(),
            elements,
            seed,
            op: AccessOp::Gather,
            pattern: indirect(0),
        },
        PatternSpec {
            name: "scatter".into(),
            elements,
            seed,
            op: AccessOp::Scatter,
            pattern: indirect(0),
        },
        PatternSpec {
            name: "dup-scatter".into(),
            elements,
            seed,
            op: AccessOp::Scatter,
            pattern: indirect(50),
        },
    ]
}

fn pattern_indirect_specs(args: &Args) -> Vec<RunSpec> {
    let mut v = Vec::new();
    for spec in pattern_indirect_cases(args) {
        for layout in PATTERN_LAYOUTS {
            v.push(RunSpec {
                id: format!("pattern_indirect/{}/{}", spec.name, layout.label()),
                machine: MachineSpec::table1(1, spec.mem_bytes_hint()),
                workload: WorkloadSpec::Pattern {
                    spec: spec.clone(),
                    layout,
                },
            });
        }
    }
    v
}

fn pattern_indirect_render(args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let mut cases = Vec::new();
    for spec in pattern_indirect_cases(args) {
        let row = get(outs, &format!("pattern_indirect/{}/row", spec.name));
        let gs = get(outs, &format!("pattern_indirect/{}/gs-dram", spec.name));
        cases.push(
            StatsNode::new(spec.name.replace('-', "_"))
                .gauge("row_mcycles", mc(row.scaled_cycles()))
                .gauge("gs_mcycles", mc(gs.scaled_cycles()))
                .gauge("speedup", row.scaled_cycles() / gs.scaled_cycles())
                .counter("row_dram_reads", row.report.dram.reads)
                .counter("gs_dram_reads", gs.report.dram.reads),
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "data-dependent streams never engage pattern-ID translation: \
             both layouts compile to plain ops and the speedup pins to 1x, \
             while last-writer-wins scatter stays functionally verified \
             even at 50% duplicate addresses",
        )
        .children_from(cases)
}

// ------------------------------------------------------- scale_channels

/// The channel counts the `scale_channels` experiment sweeps.
const CHANNEL_COUNTS: [usize; 3] = [1, 2, 4];

fn scale_channels_specs(args: &Args) -> Vec<RunSpec> {
    let tuples = args.u64("--tuples", 1 << 20);
    // `--shard` only changes how the simulator spends wall-clock; the
    // figure JSON is byte-identical either way (pinned by the engine
    // tests), so honouring it here is safe.
    let shard = args.flag("--shard");
    let mut v = Vec::new();
    for channels in CHANNEL_COUNTS {
        for layout in [Layout::RowStore, Layout::GsDram] {
            // Prefetching keeps several analytics lines in flight, so
            // independent channels actually overlap service.
            let mut machine = MachineSpec::table1(1, table_mem(tuples)).with_prefetch();
            machine.channels = channels;
            machine.shard = shard;
            v.push(RunSpec {
                id: format!("scale_channels/ch{channels}/{}", slug(layout)),
                machine,
                workload: WorkloadSpec::Analytics {
                    layout,
                    tuples,
                    columns: vec![0],
                },
            });
        }
    }
    v
}

fn scale_channels_render(_args: &Args, outs: &[RunOutcome]) -> StatsNode {
    let cycles = |channels: usize, l: &str| {
        get(outs, &format!("scale_channels/ch{channels}/{l}")).scaled_cycles()
    };
    let (row1, gs1) = (cycles(1, "row"), cycles(1, "gs"));
    let mut configs = Vec::new();
    for channels in CHANNEL_COUNTS {
        let (row, gs) = (cycles(channels, "row"), cycles(channels, "gs"));
        configs.push(
            StatsNode::new(format!("ch{channels}"))
                .gauge("row_mcycles", mc(row))
                .gauge("gs_mcycles", mc(gs))
                .gauge("row_over_gs", row / gs)
                .gauge("row_speedup_vs_1ch", row1 / row)
                .gauge("gs_speedup_vs_1ch", gs1 / gs),
        );
    }
    StatsNode::new("summary")
        .text(
            "paper",
            "channel counts beyond Table 1: row-granularity interleaving \
             keeps gathered lines intact (S4.2), GS-DRAM's edge over the \
             row store persists at every width",
        )
        .children_from(configs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names = names();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(n), "duplicate name {n}");
            assert_eq!(find(n).map(|d| d.name), Some(*n));
        }
        assert_eq!(names.len(), 21);
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn resolve_unknown_name_lists_the_registry() {
        assert_eq!(resolve("fig9").map(|d| d.name), Ok("fig9"));
        let err = resolve("nonsense").unwrap_err();
        assert!(err.starts_with("unknown experiment 'nonsense'"), "{err}");
        for def in REGISTRY {
            assert!(err.contains(def.name), "listing misses {}", def.name);
            assert!(err.contains(def.title), "listing misses {}", def.title);
        }
        let err = resolve("figg9").unwrap_err();
        assert!(err.contains("did you mean 'fig9'"), "{err}");
    }

    #[test]
    fn every_experiment_builds_specs() {
        // Small knobs so constructing the spec lists is instant; the
        // ids must be unique within each experiment.
        let args = Args::new([
            "--tuples", "1024", "--txns", "16", "--sizes", "32", "--pairs", "256", "--nodes",
            "256", "--trials", "4", "--lines", "64",
        ]);
        for def in REGISTRY {
            let specs = (def.specs)(&args);
            for (i, s) in specs.iter().enumerate() {
                assert!(
                    !specs[i + 1..].iter().any(|o| o.id == s.id),
                    "{}: duplicate spec id {}",
                    def.name,
                    s.id
                );
            }
        }
    }

    #[test]
    fn analytic_experiments_render_without_runs() {
        let args = Args::new(["--trials", "8", "--lines", "64"]);
        for name in [
            "fig7",
            "ablation_shuffle",
            "ablation_patterns",
            "ablation_sectored",
        ] {
            let def = find(name).expect("registered");
            assert!((def.specs)(&args).is_empty(), "{name} should be analytic");
            let summary = (def.render)(&args, &[]);
            assert_eq!(summary.name(), "summary");
            assert!(!summary.children().is_empty() || !summary.values().is_empty());
        }
    }
}
