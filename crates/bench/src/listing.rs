//! Shared registry listing and unknown-name errors.
//!
//! Both `experiments::resolve` and `gsdram-sim pattern --list` used to
//! hand-roll their own "here is everything registered" enumeration;
//! this module is the one renderer behind both, plus a "did you mean"
//! suggestion so a typo points at the nearest registered name instead
//! of a wall of options.

use std::fmt::Write;

/// One listable registry entry: a key plus an optional annotation
/// (experiment title, "builtin", …).
#[derive(Debug)]
pub struct Entry {
    /// The name the user types — what [`suggest`] matches against.
    pub name: String,
    /// Free-form annotation shown after the name; empty for none.
    pub note: String,
}

impl Entry {
    /// Builds an entry from anything string-like.
    pub fn new(name: impl Into<String>, note: impl Into<String>) -> Entry {
        Entry {
            name: name.into(),
            note: note.into(),
        }
    }
}

/// Renders `header:` followed by one aligned `  name  note` line per
/// entry (no trailing newline).
pub fn render(header: &str, entries: &[Entry]) -> String {
    let mut msg = format!("{header}:\n");
    for e in entries {
        if e.note.is_empty() {
            let _ = writeln!(msg, "  {}", e.name);
        } else {
            let _ = writeln!(msg, "  {:<22} {}", e.name, e.note);
        }
    }
    msg.truncate(msg.trim_end().len());
    msg
}

/// The unknown-name error: `unknown <what> '<given>'`, a "did you
/// mean" when something registered is close, then the full listing
/// under `header`.
pub fn unknown(what: &str, given: &str, header: &str, entries: &[Entry]) -> String {
    let mut msg = format!("unknown {what} '{given}'");
    if let Some(s) = suggest(given, entries.iter().map(|e| e.name.as_str())) {
        let _ = write!(msg, " — did you mean '{s}'?");
    }
    msg.push_str("; ");
    msg.push_str(&render(header, entries));
    msg
}

/// The registered name closest to `given`, when close enough to be a
/// plausible typo (edit distance within roughly a third of the input,
/// rounded up so a transposition in a short name still qualifies).
/// Ties go to the earlier entry, so suggestions are deterministic.
pub fn suggest<'a>(given: &str, names: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    let given_lc = given.to_ascii_lowercase();
    let budget = given.chars().count().div_ceil(3).max(1);
    let mut best: Option<(usize, &str)> = None;
    for name in names {
        let d = edit_distance(&given_lc, &name.to_ascii_lowercase());
        if d <= budget && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, name));
        }
    }
    best.map(|(_, name)| name)
}

/// Levenshtein distance over chars, single-row DP.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev + usize::from(ca != cb);
            prev = row[j + 1];
            row[j + 1] = sub.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn suggests_only_plausible_typos() {
        let names = ["fig4-throughput", "table2-energy", "strided-sweep"];
        assert_eq!(
            suggest("fig4-throughput", names.iter().copied()),
            Some("fig4-throughput")
        );
        assert_eq!(
            suggest("fig4-thruoghput", names.iter().copied()),
            Some("fig4-throughput")
        );
        assert!(suggest("FIG4-THROUGHPUT", names.iter().copied()).is_some());
        assert_eq!(suggest("nonsense", names.iter().copied()), None);
    }

    #[test]
    fn renders_and_reports() {
        let entries = [
            Entry::new("alpha", "first letter"),
            Entry::new("path/to/file.json", ""),
        ];
        let r = render("available things", &entries);
        assert!(r.starts_with("available things:\n  alpha"));
        assert!(r.contains("first letter"));
        assert!(r.ends_with("path/to/file.json"), "{r:?}");
        let u = unknown("thing", "alhpa", "available things", &entries);
        assert!(
            u.starts_with("unknown thing 'alhpa' — did you mean 'alpha'?"),
            "{u}"
        );
        assert!(u.contains("available things:"));
        let u = unknown("thing", "zzz", "available things", &entries);
        assert!(
            u.starts_with("unknown thing 'zzz'; available things:"),
            "{u}"
        );
    }
}
