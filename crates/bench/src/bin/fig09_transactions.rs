//! Figure 9: transaction execution time across read/write mixes
//!
//! Thin wrapper over the `fig9` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig09_transactions -- --json results/fig9.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("fig9")
}
