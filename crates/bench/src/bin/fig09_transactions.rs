//! Reproduces Figure 9: transaction-workload execution time for Row
//! Store, Column Store and GS-DRAM over the eight read/write mixes.
//!
//! Paper shape: Row Store flat across mixes; Column Store degrades with
//! field count (≈3× worse on average); GS-DRAM ≈ Row Store.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig09_transactions
//!       [--txns 10000] [--tuples 1048576]`

use gsdram_bench::{arg_u64, mcycles, print_header, run_single, table1_machine};
use gsdram_workloads::imdb::{transactions, Layout, Table, TxnSpec};

fn main() {
    let txns = arg_u64("--txns", 10_000);
    let tuples = arg_u64("--tuples", 1 << 20);
    print_header(
        "Figure 9: transaction workload (execution time, million cycles)",
        &format!("{txns} transactions on a {tuples}-tuple table (8 x 8-byte fields)"),
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12}   {:>8}",
        "r-w-rw", "Row Store", "Column St.", "GS-DRAM", "Col/GS"
    );
    let mem = (tuples as usize * 64) * 2;
    let mut ratio_sum = 0.0;
    let mut gs_vs_row_sum = 0.0;
    for spec in TxnSpec::FIGURE9 {
        let mut cycles = Vec::new();
        for layout in Layout::ALL {
            let mut m = table1_machine(1, mem, false);
            let table = Table::create(&mut m, layout, tuples);
            let mut p = transactions(table, spec, txns, 42);
            let r = run_single(&mut m, &mut p);
            assert_eq!(r.progress[0], txns, "all transactions must commit");
            cycles.push(r.cpu_cycles);
        }
        let col_over_gs = cycles[1] as f64 / cycles[2] as f64;
        let gs_over_row = cycles[2] as f64 / cycles[0] as f64;
        ratio_sum += col_over_gs;
        gs_vs_row_sum += gs_over_row;
        println!(
            "{:<8} {} {} {}   {:>7.2}x",
            spec.label(),
            mcycles(cycles[0]),
            mcycles(cycles[1]),
            mcycles(cycles[2]),
            col_over_gs
        );
    }
    let n = TxnSpec::FIGURE9.len() as f64;
    println!("----------------------------------------------------------------");
    println!(
        "avg Column/GS-DRAM = {:.2}x (paper: ~3x); avg GS-DRAM/Row = {:.2}x (paper: ~1x)",
        ratio_sum / n,
        gs_vs_row_sum / n
    );
}
