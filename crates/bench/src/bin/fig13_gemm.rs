//! Reproduces Figure 13: GEMM execution time for GS-DRAM and the best
//! tiled baseline, normalised to the non-tiled (naive) version, for
//! matrix sizes 32…1024.
//!
//! Paper shape: tiling's benefit grows with n; GS-DRAM beats the best
//! tiled+SIMD baseline by ~10% at every size (it eliminates the
//! software gather of B-column values into SIMD registers).
//!
//! For n ≥ 256 the harness samples the outermost loop (rows / row-tile
//! stripes) and scales — the per-stripe behaviour is uniform, so the
//! normalised shape is preserved (pass `--full` to simulate everything).
//!
//! Run: `cargo run -rp gsdram-bench --bin fig13_gemm
//!       [--sizes 32,64,128,256,512,1024] [--full]`

use gsdram_bench::{arg_flag, arg_value, print_header, run_single, table1_machine};
use gsdram_system::Machine;
use gsdram_workloads::gemm::{program, Gemm, GemmVariant};

fn run_variant(n: usize, v: GemmVariant, full: bool) -> f64 {
    let mem = (3 * n * n * 8 + (8 << 20)).max(16 << 20);
    // The paper enables the stride prefetcher only for the analytics
    // evaluation (Table 1 note, §5.1); GEMM runs without it.
    let mut m: Machine = table1_machine(1, mem, false);
    let g = Gemm::create(&mut m, n, v);
    g.init(&mut m);
    let sample = if full || n < 256 {
        None
    } else {
        match v {
            GemmVariant::Naive => Some(8),  // i-rows
            _ => Some(2),                   // row-tile stripes
        }
    };
    let (mut p, scale) = program(g, sample);
    let r = run_single(&mut m, &mut p);
    r.cpu_cycles as f64 * scale
}

fn main() {
    let sizes: Vec<usize> = arg_value("--sizes")
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![32, 64, 128, 256, 512, 1024]);
    let full = arg_flag("--full");
    print_header(
        "Figure 13: GEMM normalized execution time (lower is better)",
        "baseline sweep over tiles {16,32,64}; GS-DRAM uses 8x8-tiled B + pattern-7 SIMD loads",
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "n", "naive (Mc)", "best tiled", "GS-DRAM", "tiled/nv", "GS gain"
    );
    for n in sizes {
        let naive = run_variant(n, GemmVariant::Naive, full);
        let tiles: Vec<usize> = [16usize, 32, 64].iter().copied().filter(|t| *t <= n).collect();
        let mut best_tiled = f64::INFINITY;
        let mut best_tile = 0;
        for t in &tiles {
            let c = run_variant(n, GemmVariant::TiledSimd { tile: *t }, full);
            if c < best_tiled {
                best_tiled = c;
                best_tile = *t;
            }
        }
        let gs_tile = best_tile.max(8);
        let gs = run_variant(n, GemmVariant::GsDram { tile: gs_tile }, full);
        println!(
            "{:<6} {:>12.2} {:>9.2}({:>2}) {:>12.2} {:>9.3} {:>9.1}%",
            n,
            naive / 1e6,
            best_tiled / 1e6,
            best_tile,
            gs / 1e6,
            best_tiled / naive,
            (1.0 - gs / best_tiled) * 100.0
        );
    }
    println!("----------------------------------------------------------------");
    println!("paper: tiled/naive shrinks with n (tiling eliminates memory refs);");
    println!("GS-DRAM improves on the best tiled baseline by ~10-11% at every n.");
}
