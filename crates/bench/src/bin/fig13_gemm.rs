//! Figure 13: GEMM vs best tiled baseline, normalised to naive
//!
//! Thin wrapper over the `fig13` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig13_gemm -- --json results/fig13.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("fig13")
}
