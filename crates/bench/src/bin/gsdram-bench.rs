//! `gsdram-bench`: the simulator-throughput harness.
//!
//! - `gsdram-bench perf [--quick] [--out PATH]` measures cycles
//!   simulated per wall-clock second for every registry experiment
//!   (serially) and writes the report (default `BENCH_gsdram.json`).
//! - `gsdram-bench check <path>` validates a report's schema with the
//!   workspace's dependency-free JSON parser — structure only, never
//!   wall-clock values.
//!
//! See `docs/PERF.md` for the metric's definition and how the report
//! is kept honest.

use std::process::ExitCode;

use gsdram_bench::args::Args;
use gsdram_bench::perf;

fn main() -> ExitCode {
    let args = Args::from_env();
    match args.positional() {
        Some("perf") => {
            let text = perf::run(&args);
            let path = args
                .value("--out")
                .unwrap_or_else(|| perf::DEFAULT_OUT.to_string());
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(path) = args.positional_at(1) else {
                eprintln!("usage: gsdram-bench check <path>");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match perf::check(&text) {
                Ok(()) => {
                    println!("{path}: ok");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: gsdram-bench perf [--quick] [--out PATH] | check <path>");
            ExitCode::FAILURE
        }
    }
}
