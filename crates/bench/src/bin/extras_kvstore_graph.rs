//! The §5.3 applications: key-value store and graph processing.
//!
//! Paper claim: both exhibit two access patterns (per-object vs
//! one-field-of-many-objects) and "can benefit significantly from
//! GS-DRAM".
//!
//! Run: `cargo run -rp gsdram-bench --bin extras_kvstore_graph`

use gsdram_bench::{arg_u64, mcycles, print_header, run_single, table1_machine};
use gsdram_workloads::graph::{scan, updates, Graph, GraphLayout};
use gsdram_workloads::kvstore::{inserts, lookups, KvLayout, KvStore};

fn main() {
    let pairs = arg_u64("--pairs", 1 << 16);
    let nodes = arg_u64("--nodes", 1 << 17);
    print_header(
        "Extras (§5.3): key-value store and graph processing",
        &format!("{pairs} KV pairs; {nodes} graph nodes"),
    );

    println!("Key-value store ({} pairs):", pairs);
    println!(
        "{:<20} {:>14} {:>14} {:>12}",
        "operation", "Interleaved", "GS-DRAM", "speedup"
    );
    for (name, which) in [("lookups (scan keys)", 0), ("inserts", 1)] {
        let mut cycles = Vec::new();
        for layout in [KvLayout::Interleaved, KvLayout::GsDram] {
            let mut m = table1_machine(1, (pairs as usize * 16) * 4, true);
            let kv = KvStore::create(&mut m, layout, pairs);
            let mut p = if which == 0 {
                lookups(kv, pairs / 2, 64, 7)
            } else {
                inserts(kv, 2000, 7)
            };
            let r = run_single(&mut m, &mut p);
            cycles.push(r.cpu_cycles);
        }
        println!(
            "{:<20} {} {} {:>11.2}x",
            name,
            mcycles(cycles[0]),
            mcycles(cycles[1]),
            cycles[0] as f64 / cycles[1] as f64
        );
    }
    println!();

    println!("Graph processing ({} nodes, 8 fields/node):", nodes);
    println!(
        "{:<20} {:>14} {:>14} {:>12}",
        "operation", "Node-major", "GS-DRAM", "speedup"
    );
    for (name, which) in [("traversal scan", 0), ("node updates", 1)] {
        let mut cycles = Vec::new();
        for layout in [GraphLayout::NodeMajor, GraphLayout::GsDram] {
            let mut m = table1_machine(1, (nodes as usize * 64) * 2, true);
            let g = Graph::create(&mut m, layout, nodes);
            let mut p = if which == 0 { scan(g, 0) } else { updates(g, 2000, 5) };
            let r = run_single(&mut m, &mut p);
            cycles.push(r.cpu_cycles);
        }
        println!(
            "{:<20} {} {} {:>11.2}x",
            name,
            mcycles(cycles[0]),
            mcycles(cycles[1]),
            cycles[0] as f64 / cycles[1] as f64
        );
    }
    println!("----------------------------------------------------------------");
    println!("expected: gathers speed up the scan-one-field phases (~2x for keys,");
    println!("up to ~8x line reduction for node scans) while per-object phases");
    println!("stay neutral.");
}
