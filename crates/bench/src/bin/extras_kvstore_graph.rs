//! Extras (S5.3): key-value store and graph processing
//!
//! Thin wrapper over the `extras_kvstore_graph` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin extras_kvstore_graph -- --json results/extras_kvstore_graph.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("extras_kvstore_graph")
}
