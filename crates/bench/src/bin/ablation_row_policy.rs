//! Ablation: open-row vs closed-row buffer management.
//!
//! Table 1 specifies the open-row policy; this harness shows why it is
//! the right choice for the evaluated workloads and how GS-DRAM
//! interacts with it: streaming analytics thrive on open rows (GS-DRAM
//! still enjoys 16 hits per row through gathered lines), while random
//! transactions are close to policy-neutral.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_row_policy [--tuples 262144]`

use gsdram_bench::{arg_u64, mcycles, print_header, run_single};
use gsdram_dram::controller::RowPolicy;
use gsdram_system::config::SystemConfig;
use gsdram_system::Machine;
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn main() {
    let tuples = arg_u64("--tuples", 1 << 18);
    print_header(
        "Ablation: open-row vs closed-row policy",
        &format!("analytics (1 column) and 2000 transactions over {tuples} tuples"),
    );
    let mem = (tuples as usize * 64) * 2;
    println!(
        "{:<12} {:<13} {:>14} {:>14} {:>10}",
        "policy", "mechanism", "analytics (Mc)", "txns (Mc)", "row hit %"
    );
    for policy in [RowPolicy::Open, RowPolicy::Closed] {
        for layout in [Layout::RowStore, Layout::GsDram] {
            let build = || {
                let mut cfg = SystemConfig::table1(1, mem);
                cfg.controller.row_policy = policy;
                let mut m = Machine::new(cfg);
                let table = Table::create(&mut m, layout, tuples);
                (m, table)
            };
            let (mut m, table) = build();
            let mut p = analytics(table, &[0]);
            let anal = run_single(&mut m, &mut p);

            let (mut m2, table2) = build();
            let spec = TxnSpec { read_only: 2, write_only: 1, read_write: 0 };
            let mut p = transactions(table2, spec, 2000, 17);
            let txn = run_single(&mut m2, &mut p);
            println!(
                "{:<12} {:<13} {} {} {:>9.1}%",
                match policy {
                    RowPolicy::Open => "open",
                    RowPolicy::Closed => "closed",
                },
                layout.label(),
                mcycles(anal.cpu_cycles),
                mcycles(txn.cpu_cycles),
                anal.dram.row_hit_rate() * 100.0
            );
        }
    }
    println!("----------------------------------------------------------------");
    println!("expected: analytics regress badly under closed rows (no hits left");
    println!("to stream); random transactions shift little (their accesses were");
    println!("mostly conflicts anyway, and closed rows convert the conflict");
    println!("precharge into an idle-time one).");
}
