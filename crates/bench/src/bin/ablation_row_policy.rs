//! Ablation: open-row vs closed-row buffer management
//!
//! Thin wrapper over the `ablation_row_policy` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_row_policy -- --json results/ablation_row_policy.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("ablation_row_policy")
}
