//! Reproduces Figure 10: analytics-query execution time (sum of 1 or 2
//! columns), without and with the stride prefetcher.
//!
//! Paper shape: Column Store ≪ Row Store; GS-DRAM ≈ Column Store
//! (≈2× better than Row Store on average); prefetching helps everyone.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig10_analytics
//!       [--tuples 1048576]`

use gsdram_bench::{arg_u64, mcycles, print_header, run_single, table1_machine};
use gsdram_workloads::imdb::{analytics, Layout, Table};

fn main() {
    let tuples = arg_u64("--tuples", 1 << 20);
    print_header(
        "Figure 10: analytics workload (execution time, million cycles)",
        &format!("column sums over a {tuples}-tuple table"),
    );
    let mem = (tuples as usize * 64) * 2;
    println!(
        "{:<22} {:>12} {:>12} {:>12}   {:>8}",
        "configuration", "Row Store", "Column St.", "GS-DRAM", "Row/GS"
    );
    for prefetch in [false, true] {
        for k in [1usize, 2] {
            let columns: Vec<usize> = (0..k).collect();
            let mut cycles = Vec::new();
            for layout in Layout::ALL {
                let mut m = table1_machine(1, mem, prefetch);
                let table = Table::create(&mut m, layout, tuples);
                let mut p = analytics(table, &columns);
                let r = run_single(&mut m, &mut p);
                // Functional verification: the sums must be exact.
                let want: u64 = columns
                    .iter()
                    .fold(0u64, |a, &f| a.wrapping_add(table.expected_column_sum(f)));
                assert_eq!(r.results[0], want, "{} sum mismatch", layout.label());
                cycles.push(r.cpu_cycles);
            }
            println!(
                "{:<22} {} {} {}   {:>7.2}x",
                format!("{} pref., {k} column(s)", if prefetch { "with" } else { "w/o" }),
                mcycles(cycles[0]),
                mcycles(cycles[1]),
                mcycles(cycles[2]),
                cycles[0] as f64 / cycles[2] as f64
            );
        }
    }
    println!("----------------------------------------------------------------");
    println!("paper shape: GS-DRAM ~= Column Store; ~2x faster than Row Store on avg;");
    println!("prefetching improves all three mechanisms.");
}
