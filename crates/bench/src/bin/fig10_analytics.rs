//! Figure 10: analytics execution time (1-2 columns, +/- prefetch)
//!
//! Thin wrapper over the `fig10` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig10_analytics -- --json results/fig10.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("fig10")
}
