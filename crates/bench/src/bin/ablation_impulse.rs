//! Ablation: GS-DRAM vs an Impulse-style memory-controller gather
//! (paper §7 related work).
//!
//! Impulse [Carter et al., HPCA'99] assembles gathered cache lines at
//! the memory controller from ordinary reads: the processor-side
//! benefits (cache utilisation, MC→CPU bandwidth) match GS-DRAM, but
//! every gathered line still costs one DRAM read per covered line —
//! §7: with commodity modules "Impulse cannot mitigate the wasted
//! memory bandwidth consumption between the memory controller and
//! DRAM". This harness quantifies that difference on the analytics
//! workload.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_impulse [--tuples 262144]`

use gsdram_bench::{arg_u64, mcycles, print_header, run_single};
use gsdram_system::config::SystemConfig;
use gsdram_system::Machine;
use gsdram_workloads::imdb::{analytics, Layout, Table};

fn main() {
    let tuples = arg_u64("--tuples", 1 << 18);
    print_header(
        "Ablation: in-DRAM translation (GS-DRAM) vs controller-side gather (Impulse)",
        &format!("analytics: sum of 1 column over {tuples} tuples, with prefetching"),
    );
    let mem = (tuples as usize * 64) * 2;
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>12}",
        "mechanism", "cycles (M)", "DRAM reads", "DRAM en. (mJ)", "row hit %"
    );
    for (name, impulse, layout) in [
        ("Row Store (no gather)", false, Layout::RowStore),
        ("Impulse gather", true, Layout::GsDram),
        ("GS-DRAM gather", false, Layout::GsDram),
    ] {
        let cfg = SystemConfig::table1(1, mem).with_prefetch();
        let cfg = if impulse { cfg.with_impulse() } else { cfg };
        let mut m = Machine::new(cfg);
        let table = if impulse {
            // Impulse runs on a commodity (unshuffled) module; the
            // pattern metadata still marks the page gatherable.
            let base = m.pattmalloc(tuples * 64, false, gsdram_core::PatternId(7));
            let t = Table { layout: Layout::GsDram, tuples, base };
            for tu in 0..tuples {
                for f in 0..8u64 {
                    m.poke(t.field_addr(tu, f as usize), tu * 8 + f);
                }
            }
            t
        } else {
            Table::create(&mut m, layout, tuples)
        };
        let mut p = analytics(table, &[0]);
        let r = run_single(&mut m, &mut p);
        assert_eq!(r.results[0], table.expected_column_sum(0), "{name}: wrong sum");
        println!(
            "{:<22} {} {:>12} {:>14.2} {:>11.1}%",
            name,
            mcycles(r.cpu_cycles),
            r.dram.reads,
            r.dram_energy.total_mj(),
            r.dram.row_hit_rate() * 100.0
        );
    }
    println!("----------------------------------------------------------------");
    println!("expected: Impulse matches GS-DRAM's cache-line count (CPU side) but");
    println!("needs ~8x the DRAM reads, so its time and DRAM energy stay close to");
    println!("the row store; GS-DRAM alone cuts traffic end to end.");
}
