//! Reproduces Figure 11: the HTAP workload — one analytics thread (sum
//! of one column) and one transactions thread (1 read-only + 1
//! write-only field per transaction) sharing the table; measured until
//! the analytics query completes.
//!
//! Paper shape: (a) analytics time — GS-DRAM ≈ Column Store ≪ Row
//! Store; (b) transaction throughput — GS-DRAM beats Column Store *and*
//! Row Store (the analytics stream's row hits starve the transaction
//! thread under FR-FCFS; GS-DRAM touches 8× fewer lines per row).
//!
//! Run: `cargo run -rp gsdram-bench --bin fig11_htap [--tuples 1048576]`

use gsdram_bench::{arg_u64, mcycles, print_header, run_htap, table1_machine};
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn main() {
    let tuples = arg_u64("--tuples", 1 << 20);
    print_header(
        "Figure 11: HTAP (analytics time + transaction throughput)",
        &format!(
            "core 0: sum of 1 column over {tuples} tuples; core 1: endless 1-0-1... \
             transactions (1 RO, 1 WO field)"
        ),
    );
    let mem = (tuples as usize * 64) * 2;
    let spec = TxnSpec { read_only: 1, write_only: 1, read_write: 0 };
    println!(
        "{:<14} {:<13} {:>14} {:>16}",
        "prefetch", "mechanism", "analytics (Mc)", "txn thr. (M/s)"
    );
    for prefetch in [false, true] {
        for layout in Layout::ALL {
            let mut m = table1_machine(2, mem, prefetch);
            let table = Table::create(&mut m, layout, tuples);
            let mut anal = analytics(table, &[0]);
            let mut txn = transactions(table, spec, u64::MAX, 99);
            let r = run_htap(&mut m, &mut anal, &mut txn);
            let secs = r.seconds(m.config());
            let throughput = r.progress[1] as f64 / secs / 1e6;
            println!(
                "{:<14} {:<13} {:>14} {:>15.2}",
                if prefetch { "with" } else { "w/o" },
                layout.label(),
                mcycles(r.cpu_cycles),
                throughput
            );
        }
    }
    println!("----------------------------------------------------------------");
    println!("paper shape: analytics GS ~= Column Store << Row Store;");
    println!("transaction throughput GS > Row Store > Column Store (FR-FCFS");
    println!("starvation: Row Store analytics hits every line of each DRAM row).");
}
