//! Figure 11: HTAP analytics time and transaction throughput
//!
//! Thin wrapper over the `fig11` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig11_htap -- --json results/fig11.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("fig11")
}
