//! Reproduces Figure 7 (the gathered cache lines of GS-DRAM(4,2,2) for
//! every pattern/column pair), Figure 6's data mapping, and the §3.4
//! walk-through.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig7_patterns`

use gsdram_core::analysis::{pattern_table, stride_label};
use gsdram_core::{
    ColumnId, Geometry, GsDramConfig, GsModule, PatternId, RowId,
};

fn main() {
    println!("Figure 7: cache lines gathered by GS-DRAM(4,2,2)");
    println!("(circled indices = logical row-buffer elements, in assembly order)");
    println!();
    let cfg = GsDramConfig::gs_dram_4_2_2();
    let table = pattern_table(&cfg, 4);
    let mut current = None;
    for e in &table {
        if current != Some(e.pattern) {
            current = Some(e.pattern);
            println!("Pattern {} ({})", e.pattern.0, stride_label(&cfg, e.pattern));
        }
        let cells: Vec<String> = e.elements.iter().map(|x| format!("{x:>2}")).collect();
        println!("  col {} -> {}", e.col.0, cells.join(" "));
    }
    println!();
    println!("Note: the paper's printed Figure 7 lists pattern 2's rows sorted by");
    println!("leading element (its col-1/col-2 rows swapped); the rows above follow");
    println!("the CTL equation (chip & pattern) ^ column. The four sets per pattern");
    println!("are identical either way. See EXPERIMENTS.md.");
    println!();

    // Figure 6 / §3.4: the first four tuples of the example table.
    println!("Figure 6: shuffled mapping of four 4-field tuples (value ij = tuple i, field j)");
    let geom = Geometry::new(&cfg, 1, 16).expect("valid geometry");
    let mut m = GsModule::new(cfg.clone(), geom);
    for t in 0..4u64 {
        let tuple: Vec<u64> = (0..4).map(|f| t * 10 + f).collect();
        m.write_line(RowId(0), ColumnId(t as u32), PatternId(0), true, &tuple)
            .expect("in range");
    }
    println!("         Chip0 Chip1 Chip2 Chip3");
    for col in 0..4u32 {
        let row: Vec<String> = (0..4)
            .map(|chip| format!("{:>4}", m.chip_words(chip)[col as usize]))
            .collect();
        println!("  col {col} {}", row.join("  "));
    }
    println!();
    println!("§3.4 walk-through:");
    let tuple2 = m.read_line(RowId(0), ColumnId(2), PatternId(0), true).unwrap();
    println!("  READ col 2, pattern 0 -> {tuple2:?}   (the third tuple)");
    let field0 = m.read_line(RowId(0), ColumnId(0), PatternId(3), true).unwrap();
    println!("  READ col 0, pattern 3 -> {field0:?}   (field 0 of tuples 0..4)");
    let field1 = m.read_line(RowId(0), ColumnId(1), PatternId(3), true).unwrap();
    println!("  READ col 1, pattern 3 -> {field1:?}   (field 1 of tuples 0..4)");
}
