//! Figure 7: gathered cache lines of GS-DRAM(4,2,2) + Figure 6 mapping
//!
//! Thin wrapper over the `fig7` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig7_patterns -- --json results/fig7.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("fig7")
}
