//! Extension experiment: ECC coverage under gather patterns (§6.3).
//!
//! The paper's §6.3 claim is that with intra-chip column translation in
//! the ECC chip, "accesses with non-zero patterns can gather the data
//! from the eight data chips and gather the ECC from the eight tiles
//! within the ECC chip, thereby seamlessly supporting ECC for all
//! access patterns". This harness injects random single- and double-bit
//! faults into the module and verifies, per pattern, that gathered
//! reads correct/detect them exactly as pattern-0 reads do.
//!
//! Run: `cargo run -rp gsdram-bench --bin extension_ecc [--trials 20000]`

use gsdram_bench::{arg_u64, print_header};
use gsdram_core::ecc::{Decode, EccModule};
use gsdram_core::{ColumnId, Geometry, GsDramConfig, PatternId, RowId};
use gsdram_workloads::common::SplitMix;

fn main() {
    let trials = arg_u64("--trials", 20_000);
    print_header(
        "Extension: ECC (SEC-DED) coverage under every gather pattern",
        &format!("{trials} random fault injections per pattern, GS-DRAM(8,3,3) + ECC chip"),
    );
    let cfg = GsDramConfig::gs_dram_8_3_3();
    let geom = Geometry::ddr3_row(&cfg, 1).expect("valid");
    let mut rng = SplitMix(2026);
    println!(
        "{:<9} {:>12} {:>12} {:>14} {:>12}",
        "pattern", "singles", "corrected", "doubles", "detected"
    );
    for p in 0..8u8 {
        let mut corrected = 0u64;
        let mut detected = 0u64;
        let singles = trials / 2;
        let doubles = trials - singles;
        for t in 0..trials {
            // Fresh content each trial.
            let mut m = EccModule::new(cfg.clone(), geom);
            let col = ColumnId(rng.below(128) as u32);
            let line: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
            m.write_line(RowId(0), col, PatternId(p), true, &line).expect("in range");
            let word = rng.below(8) as usize;
            let double = t >= singles;
            let bits = if double {
                let b1 = rng.below(64);
                let mut b2 = rng.below(64);
                if b2 == b1 {
                    b2 = (b2 + 1) % 64;
                }
                (1u64 << b1) | (1u64 << b2)
            } else {
                1u64 << rng.below(64)
            };
            m.inject_data_error(RowId(0), col, PatternId(p), true, word, bits);
            let read = m.read_line(RowId(0), col, PatternId(p), true).expect("in range");
            match read.outcomes[word] {
                Decode::Corrected(v) if !double => {
                    assert_eq!(v, line[word], "must correct to the original");
                    corrected += 1;
                }
                Decode::DoubleError if double => detected += 1,
                _ => {}
            }
        }
        println!(
            "{:<9} {:>12} {:>12} {:>14} {:>12}",
            p, singles, corrected, doubles, detected
        );
        assert_eq!(corrected, singles, "pattern {p}: every single must correct");
        assert_eq!(detected, doubles, "pattern {p}: every double must be detected");
    }
    println!("----------------------------------------------------------------");
    println!("every pattern gathers its check bytes through the ECC chip's");
    println!("per-tile translation: 100% single-bit correction, 100% double-bit");
    println!("detection — the §6.3 'seamless ECC for all access patterns'.");
}
