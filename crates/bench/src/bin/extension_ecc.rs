//! Extension: SEC-DED coverage under every gather pattern (S6.3)
//!
//! Thin wrapper over the `extension_ecc` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin extension_ecc -- --json results/extension_ecc.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("extension_ecc")
}
