//! Ablation: READ commands per gathered line with/without the shuffle
//!
//! Thin wrapper over the `ablation_shuffle` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_shuffle -- --json results/ablation_shuffle.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("ablation_shuffle")
}
