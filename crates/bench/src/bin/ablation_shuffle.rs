//! Ablation: chip conflicts with and without the §3.2 data shuffle.
//!
//! Quantifies Challenge 1 (Figure 3): how many READ commands a one-line
//! strided gather costs under the naive word-i-to-chip-i mapping versus
//! the column-ID shuffle, plus the §6.1 programmable variants.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_shuffle`

use gsdram_core::analysis::{chip_conflicts, reads_for_stride, MappingScheme};
use gsdram_core::shuffle::ShuffleFn;
use gsdram_core::GsDramConfig;

fn main() {
    println!("Ablation: READ commands per gathered line, GS-DRAM(8,3,3)");
    println!();
    println!("{:<10} {:>14} {:>14}", "stride", "naive mapping", "with shuffle");
    let cfg = GsDramConfig::gs_dram_8_3_3();
    for stride in [1usize, 2, 4, 8] {
        println!(
            "{:<10} {:>14} {:>14}",
            stride,
            reads_for_stride(&cfg, MappingScheme::Naive, stride),
            reads_for_stride(&cfg, MappingScheme::Shuffled, stride)
        );
    }
    println!();
    println!("Programmable shuffling (§6.1): conflicts for a stride-8 gather");
    println!("{:<28} {:>10}", "shuffle function", "extra READs");
    let elements: Vec<usize> = (0..8).map(|i| i * 8).collect();
    for (name, f) in [
        ("Identity (disabled)", ShuffleFn::Identity),
        ("LowBits (default)", ShuffleFn::LowBits),
        ("Masked mask=0b110", ShuffleFn::Masked { mask: 0b110 }),
        ("Masked mask=0b011", ShuffleFn::Masked { mask: 0b011 }),
        ("XorFold groups=2", ShuffleFn::XorFold { groups: 2 }),
    ] {
        let cfg = GsDramConfig::with_shuffle_fn(8, 3, 3, f).expect("valid");
        println!(
            "{:<28} {:>10}",
            name,
            chip_conflicts(&cfg, MappingScheme::Shuffled, &elements)
        );
    }
    println!();
    println!("paper: the full shuffle gives zero conflicts for every power-of-2");
    println!("stride; disabling stages reintroduces conflicts for the strides");
    println!("those stages spread.");
}
