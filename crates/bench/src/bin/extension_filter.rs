//! Extension experiment: selective projection vs selectivity.
//!
//! `SELECT * WHERE field0 < x` — scan one column, fetch full tuples for
//! matches. GS-DRAM accelerates the scan (gathered column lines); the
//! projection is row-friendly on both layouts. The speedup therefore
//! decays from the pure-scan ~2.7× toward parity as selectivity rises —
//! the crossover the HTAP motivation implies: GS-DRAM lets *one* layout
//! serve both ends.
//!
//! Run: `cargo run -rp gsdram-bench --bin extension_filter
//!       [--tuples 262144]`

use gsdram_bench::{arg_u64, mcycles, print_header, table1_machine};
use gsdram_system::ops::Program;
use gsdram_system::StopWhen;
use gsdram_workloads::filter::FilterQuery;
use gsdram_workloads::imdb::{Layout, Table};

fn main() {
    let tuples = arg_u64("--tuples", 1 << 18);
    print_header(
        "Extension: selective projection (scan + fetch matching tuples)",
        &format!("table of {tuples} tuples; selectivity sweep on field 0"),
    );
    let mem = (tuples as usize * 64) * 2;
    println!(
        "{:<13} {:>12} {:>12} {:>12} {:>10}",
        "selectivity", "Row Store", "Column St.", "GS-DRAM", "Row/GS"
    );
    for pct in [0u64, 1, 5, 25, 50, 100] {
        let threshold = 8 * (tuples * pct / 100);
        let mut cycles = Vec::new();
        for layout in Layout::ALL {
            let mut m = table1_machine(1, mem, true);
            let table = Table::create(&mut m, layout, tuples);
            let mut q = FilterQuery::new(table, 0, threshold);
            let r = {
                let mut programs: Vec<&mut dyn Program> = vec![&mut q];
                m.run(&mut programs, StopWhen::AllDone)
            };
            assert_eq!(q.matches(), tuples * pct / 100, "{}", layout.label());
            cycles.push(r.cpu_cycles);
        }
        println!(
            "{:<13} {} {} {} {:>9.2}x",
            format!("{pct}%"),
            mcycles(cycles[0]),
            mcycles(cycles[1]),
            mcycles(cycles[2]),
            cycles[0] as f64 / cycles[2] as f64
        );
    }
    println!("----------------------------------------------------------------");
    println!("reading the sweep: at 0% the query is a pure column scan (GS ~=");
    println!("Column, ~3x over Row); as selectivity grows the tuple fetches");
    println!("dominate and the advantage decays. At 100% GS-DRAM pays slightly");
    println!("more than the Row Store because matching data is cached twice —");
    println!("once under each pattern (the §4.1 two-pattern caching cost) — so");
    println!("a query planner over GS-DRAM should switch to plain tuple scans");
    println!("above the crossover, exactly as it would choose between row and");
    println!("column replicas, but without storing two copies of the table.");
}
