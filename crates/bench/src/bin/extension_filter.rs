//! Extension: selective projection vs selectivity
//!
//! Thin wrapper over the `extension_filter` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin extension_filter -- --json results/extension_filter.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("extension_filter")
}
