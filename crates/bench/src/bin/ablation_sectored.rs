//! Ablation: pattern-tagged cache vs sectored cache (S4.1)
//!
//! Thin wrapper over the `ablation_sectored` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_sectored -- --json results/ablation_sectored.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("ablation_sectored")
}
