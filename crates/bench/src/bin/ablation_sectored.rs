//! Ablation: pattern-tagged cache vs the sectored-cache alternative
//! (paper §4.1).
//!
//! Both designs can hold gathered data; §4.1 rejects sectoring because
//! (1) a gathered access scatters over `chips` tag entries — wrecking
//! tag utilisation and making the values unusable by one SIMD load —
//! and (2) partially-dirty lines force read-modify-write writebacks.
//! This harness drives both structures with the same gathered-analytics
//! access stream and measures those effects.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_sectored [--lines 4096]`

use gsdram_bench::{arg_u64, print_header};
use gsdram_cache::cache::{CacheConfig, LineKey, SetAssocCache};
use gsdram_cache::overlap::OverlapCalc;
use gsdram_cache::sectored::SectoredCache;
use gsdram_core::{GsDramConfig, PatternId};

fn main() {
    let gathered_lines = arg_u64("--lines", 4096);
    print_header(
        "Ablation: pattern-tagged cache vs sectored cache (§4.1)",
        &format!("field-0 analytics stream: {gathered_lines} stride-8 gathered lines through a 32 KB L1"),
    );
    let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);
    let cfg = CacheConfig::l1_32k();

    // Pattern-tagged design: each gathered line is ONE entry.
    let mut tagged = SetAssocCache::new(cfg);
    // Sectored design: each gathered word goes to its home line's sector.
    let mut sectored = SectoredCache::new(cfg);
    let mut sectored_rmw = 0u64;

    for g in 0..gathered_lines {
        // Gathered line: field 0 of tuple group g (Figure 8 addressing).
        let key = LineKey::new(g * 8 * 64, 64, PatternId(7));
        // Every 4th line is modified after the scan (an update query),
        // to surface the writeback difference.
        let write = g % 4 == 0;

        if !tagged.probe(key, write) {
            tagged.fill(key, vec![0; 8]);
            if write {
                tagged.probe(key, true);
            }
        }

        for (w, addr) in calc.word_addresses(key, true).into_iter().enumerate() {
            if !sectored.probe(addr, write && w == 0) {
                if let Some(ev) = sectored.fill_sector(addr, w as u64) {
                    if ev.needs_rmw(8) {
                        sectored_rmw += 1;
                    }
                }
                if write && w == 0 {
                    sectored.probe(addr, true);
                }
            }
        }
    }

    let t = tagged.stats();
    let s = sectored.stats();
    let (tags, util) = sectored.tag_utilisation();
    println!("{:<34} {:>14} {:>14}", "metric", "pattern-tagged", "sectored");
    println!("{:<34} {:>14} {:>14}", "lookups", t.hits + t.misses, s.hits + s.misses);
    println!(
        "{:<34} {:>13.1}% {:>13.1}%",
        "miss rate",
        t.miss_rate() * 100.0,
        s.miss_rate() * 100.0
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "tag entries per gathered line", 1, 8
    );
    println!(
        "{:<34} {:>14} {:>13.1}%",
        "resident tag utilisation", "100%", util * 100.0
    );
    println!("{:<34} {:>14} {:>14}", "resident tag entries", tagged.resident_keys().len(), tags);
    println!(
        "{:<34} {:>14} {:>14}",
        "read-modify-write writebacks", 0, s.partial_writebacks.max(sectored_rmw)
    );
    println!(
        "{:<34} {:>14} {:>14}",
        "SIMD-loadable gathered lines", "yes", "no"
    );
    println!("----------------------------------------------------------------");
    println!("the sectored design burns 8x the tag entries at ~1/8 utilisation,");
    println!("turns every dirty gathered word into a read-modify-write at the");
    println!("DRAM interface, and leaves gathered values spread over 8 physical");
    println!("lines — unusable by a single SIMD register load (§4.1).");
}
