//! Ablation: FR-FCFS vs FCFS under HTAP
//!
//! Thin wrapper over the `ablation_scheduler` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_scheduler -- --json results/ablation_scheduler.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("ablation_scheduler")
}
