//! Ablation: FR-FCFS vs FCFS scheduling under the HTAP workload.
//!
//! The paper attributes Row Store's poor HTAP transaction throughput to
//! FR-FCFS prioritising the analytics stream's row hits (§5.1, citing
//! the memory-performance-hog effect of Moscibroda & Mutlu). Switching
//! the scheduler to FCFS removes that prioritisation; the Row Store
//! transaction throughput gap should shrink.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_scheduler [--tuples 262144]`

use gsdram_bench::{arg_u64, mcycles, print_header, run_htap};
use gsdram_dram::controller::SchedPolicy;
use gsdram_system::config::SystemConfig;
use gsdram_system::Machine;
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn main() {
    let tuples = arg_u64("--tuples", 1 << 18);
    print_header(
        "Ablation: FR-FCFS vs FCFS under HTAP",
        &format!("analytics (1 column, {tuples} tuples) + endless transactions"),
    );
    let spec = TxnSpec { read_only: 1, write_only: 1, read_write: 0 };
    println!(
        "{:<10} {:<13} {:>14} {:>16}",
        "scheduler", "mechanism", "analytics (Mc)", "txn thr. (M/s)"
    );
    for policy in [SchedPolicy::FrFcfs, SchedPolicy::Fcfs] {
        for layout in [Layout::RowStore, Layout::GsDram] {
            // Prefetching keeps several analytics requests queued at the
            // controller, which is what lets FR-FCFS starve the
            // transaction thread (the effect is strongest with
            // prefetching — §5.1).
            let mut cfg = SystemConfig::table1(2, (tuples as usize * 64) * 2).with_prefetch();
            cfg.controller.policy = policy;
            let mut m = Machine::new(cfg);
            let table = Table::create(&mut m, layout, tuples);
            let mut anal = analytics(table, &[0]);
            let mut txn = transactions(table, spec, u64::MAX, 99);
            let r = run_htap(&mut m, &mut anal, &mut txn);
            let secs = r.seconds(m.config());
            println!(
                "{:<10} {:<13} {:>14} {:>15.2}",
                match policy {
                    SchedPolicy::FrFcfs => "FR-FCFS",
                    SchedPolicy::Fcfs => "FCFS",
                },
                layout.label(),
                mcycles(r.cpu_cycles),
                r.progress[1] as f64 / secs / 1e6
            );
        }
    }
    println!("----------------------------------------------------------------");
    println!("expected: under FCFS the Row Store transaction thread is no longer");
    println!("starved by the analytics stream's row hits (at some cost to the");
    println!("analytics scan).");
}
