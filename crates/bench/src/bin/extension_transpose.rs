//! Extension: out-of-place matrix transpose
//!
//! Thin wrapper over the `extension_transpose` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin extension_transpose -- --json results/extension_transpose.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("extension_transpose")
}
