//! Extension experiment: matrix transpose via gathered tile columns.
//!
//! The row-major baseline's column walk (stride `8n` bytes) set-
//! conflicts in the L1 and re-misses to DRAM once the matrix outgrows
//! the L2; the 8×8-tiled GS-DRAM source turns each destination row
//! segment into one pattern-7 gathered line.
//!
//! Run: `cargo run -rp gsdram-bench --bin extension_transpose
//!       [--sizes 128,256,512]`

use gsdram_bench::{arg_value, print_header, run_single, table1_machine};
use gsdram_workloads::transpose::{program, Transpose, TransposeLayout};

fn main() {
    let sizes: Vec<usize> = arg_value("--sizes")
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![128, 256, 512]);
    print_header(
        "Extension: out-of-place matrix transpose (dst = src^T)",
        "row-major scattered column loads vs pattern-7 tile-column gathers",
    );
    println!(
        "{:<6} {:>14} {:>14} {:>10} {:>16}",
        "n", "row-major (Mc)", "GS-DRAM (Mc)", "speedup", "DRAM reads (r/g)"
    );
    for n in sizes {
        let mut cycles = Vec::new();
        let mut reads = Vec::new();
        for layout in [TransposeLayout::RowMajor, TransposeLayout::GsDram] {
            let mut m = table1_machine(1, (2 * n * n * 8 * 2).max(16 << 20), false);
            let t = Transpose::create(&mut m, layout, n);
            let mut p = program(t);
            let r = run_single(&mut m, &mut p);
            cycles.push(r.cpu_cycles);
            reads.push(r.dram.reads);
        }
        println!(
            "{:<6} {:>14.2} {:>14.2} {:>9.2}x {:>8}/{:<8}",
            n,
            cycles[0] as f64 / 1e6,
            cycles[1] as f64 / 1e6,
            cycles[0] as f64 / cycles[1] as f64,
            reads[0],
            reads[1]
        );
    }
    println!("----------------------------------------------------------------");
    println!("expected: parity while the source fits in the L2 (its conflict");
    println!("misses are cheap), opening to a clear GS-DRAM win beyond it.");
}
