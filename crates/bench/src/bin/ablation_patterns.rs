//! Ablation: pattern-ID width (§3.5, §6.2) and intra-chip translation
//! (§6.3).
//!
//! Shows which strides each `GS-DRAM(8,3,p)` can gather in one READ,
//! how §6.2 wide pattern IDs extend the reach, and the ECC coverage of
//! §6.3.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_patterns`

use gsdram_core::analysis::stride_label;
use gsdram_core::mat::{EccGather, IntraChipCtl};
use gsdram_core::{gathered_elements, ColumnId, GsDramConfig, PatternId};

fn main() {
    println!("Ablation: expressible patterns vs pattern-ID width, 8-chip module");
    println!();
    for p_bits in [1u8, 2, 3] {
        let cfg = GsDramConfig::new(8, 3, p_bits).expect("valid");
        let labels: Vec<String> = cfg
            .patterns()
            .map(|p| format!("p{}:{}", p.0, stride_label(&cfg, p)))
            .collect();
        println!("GS-DRAM(8,3,{p_bits}): {}", labels.join("  "));
    }
    println!();

    println!("Wide pattern IDs (§6.2): GS-DRAM(8,3,6), replicated chip IDs");
    let cfg = GsDramConfig::new(8, 3, 6).expect("valid");
    for p in [0u8, 7, 0b111_000, 0b111_111] {
        let e = gathered_elements(&cfg, PatternId(p), ColumnId(0), true);
        println!("  pattern {p:#08b} -> elements {e:?}");
    }
    println!();

    println!("Intra-chip column translation (§6.3): 8 tiles per chip");
    let intra = IntraChipCtl::new(8, 3).expect("valid");
    println!(
        "  gather granularity: {} byte(s) per tile ({} tiles)",
        intra.bytes_per_tile(),
        intra.tiles()
    );
    let cols: Vec<u32> = intra
        .tile_columns(PatternId(7), ColumnId(0))
        .iter()
        .map(|c| c.0)
        .collect();
    println!("  pattern 7, col 0: tile columns {cols:?}");

    let ecc = EccGather::new(8, 3).expect("valid");
    let mut all_covered = true;
    for p in 0..8u8 {
        for c in 0..16u32 {
            let data: Vec<ColumnId> = gsdram_core::ctl::ctl_bank(&GsDramConfig::gs_dram_8_3_3())
                .iter()
                .map(|ctl| {
                    ctl.translate(gsdram_core::ctl::CommandKind::Read, PatternId(p), ColumnId(c))
                })
                .collect();
            all_covered &= ecc.covers(PatternId(p), ColumnId(c), &data);
        }
    }
    println!(
        "  ECC chip coverage across all (pattern, column) pairs: {}",
        if all_covered { "complete" } else { "INCOMPLETE" }
    );
}
