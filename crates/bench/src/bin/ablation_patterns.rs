//! Ablation: pattern-ID width, wide patterns, intra-chip translation
//!
//! Thin wrapper over the `ablation_patterns` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin ablation_patterns -- --json results/ablation_patterns.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("ablation_patterns")
}
