//! Reproduces Figure 12: average performance and energy for the
//! transaction and analytics workloads.
//!
//! Paper numbers (§5.1): transactions — GS-DRAM ≈ Row Store energy,
//! 2.1× lower than Column Store; analytics (with prefetching) —
//! GS-DRAM ≈ Column Store energy, 2.4× lower than Row Store (4×
//! without prefetching).
//!
//! Run: `cargo run -rp gsdram-bench --bin fig12_summary
//!       [--txns 10000] [--tuples 1048576]`

use gsdram_bench::{arg_u64, mcycles, print_header, run_single, table1_machine};
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn main() {
    let txns = arg_u64("--txns", 10_000);
    let tuples = arg_u64("--tuples", 1 << 20);
    print_header(
        "Figure 12: performance and energy summary (transactions & analytics)",
        &format!("{txns} transactions / column sums over {tuples} tuples"),
    );
    let mem = (tuples as usize * 64) * 2;

    // (a)+(b) Transactions: average over the eight Figure 9 mixes.
    let mut txn_cycles = [0.0f64; 3];
    let mut txn_energy = [0.0f64; 3];
    for spec in TxnSpec::FIGURE9 {
        for (li, layout) in Layout::ALL.iter().enumerate() {
            let mut m = table1_machine(1, mem, false);
            let table = Table::create(&mut m, *layout, tuples);
            let mut p = transactions(table, spec, txns, 42);
            let r = run_single(&mut m, &mut p);
            txn_cycles[li] += r.cpu_cycles as f64 / TxnSpec::FIGURE9.len() as f64;
            txn_energy[li] += r.energy.total_mj() / TxnSpec::FIGURE9.len() as f64;
        }
    }

    // Analytics with prefetching, averaged over k = 1, 2.
    let mut anal_cycles = [0.0f64; 3];
    let mut anal_energy = [0.0f64; 3];
    let mut anal_energy_nopref = [0.0f64; 3];
    for k in [1usize, 2] {
        let columns: Vec<usize> = (0..k).collect();
        for (li, layout) in Layout::ALL.iter().enumerate() {
            let mut m = table1_machine(1, mem, true);
            let table = Table::create(&mut m, *layout, tuples);
            let mut p = analytics(table, &columns);
            let r = run_single(&mut m, &mut p);
            anal_cycles[li] += r.cpu_cycles as f64 / 2.0;
            anal_energy[li] += r.energy.total_mj() / 2.0;

            let mut m = table1_machine(1, mem, false);
            let table = Table::create(&mut m, *layout, tuples);
            let mut p = analytics(table, &columns);
            let r = run_single(&mut m, &mut p);
            anal_energy_nopref[li] += r.energy.total_mj() / 2.0;
        }
    }

    println!("(a) average execution time (million cycles)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "workload", "Row Store", "Column St.", "GS-DRAM"
    );
    println!(
        "{:<14} {} {} {}",
        "Trans.",
        mcycles(txn_cycles[0] as u64),
        mcycles(txn_cycles[1] as u64),
        mcycles(txn_cycles[2] as u64)
    );
    println!(
        "{:<14} {} {} {}",
        "Anal. (pref)",
        mcycles(anal_cycles[0] as u64),
        mcycles(anal_cycles[1] as u64),
        mcycles(anal_cycles[2] as u64)
    );
    println!();
    println!("(b) average energy (mJ)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "workload", "Row Store", "Column St.", "GS-DRAM"
    );
    println!(
        "{:<14} {:>12.2} {:>12.2} {:>12.2}",
        "Trans.", txn_energy[0], txn_energy[1], txn_energy[2]
    );
    println!(
        "{:<14} {:>12.2} {:>12.2} {:>12.2}",
        "Anal. (pref)", anal_energy[0], anal_energy[1], anal_energy[2]
    );
    println!(
        "{:<14} {:>12.2} {:>12.2} {:>12.2}",
        "Anal. (none)", anal_energy_nopref[0], anal_energy_nopref[1], anal_energy_nopref[2]
    );
    println!("----------------------------------------------------------------");
    println!(
        "transactions: Column/GS energy = {:.2}x (paper 2.1x); GS/Row = {:.2}x (paper ~1x)",
        txn_energy[1] / txn_energy[2],
        txn_energy[2] / txn_energy[0]
    );
    println!(
        "analytics:    Row/GS energy (pref) = {:.2}x (paper 2.4x); (no pref) = {:.2}x (paper 4x)",
        anal_energy[0] / anal_energy[2],
        anal_energy_nopref[0] / anal_energy_nopref[2]
    );
}
