//! Figure 12: average performance and energy summary
//!
//! Thin wrapper over the `fig12` registry experiment — all spec
//! construction and rendering live in `gsdram_bench::experiments`.
//! Shared flags: `--json <path>` (pretty stats JSON), `--serial`,
//! `--threads <n>`, `--quiet`, plus the experiment's own knobs.
//!
//! Run: `cargo run -rp gsdram-bench --bin fig12_summary -- --json results/fig12.json`

fn main() -> std::process::ExitCode {
    gsdram_bench::experiments::cli_main("fig12")
}
