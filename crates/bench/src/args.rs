//! Shared command-line parsing for the experiment binaries and
//! `gsdram-sim`. One [`Args`] value wraps an argv slice, so the same
//! lookups work on `std::env::args()` and on synthetic argument lists
//! in tests — and the flag grammar (`--name value`, `--flag`,
//! `--list a,b,c`) is defined in exactly one place.

/// A parsed argument list.
#[derive(Debug, Clone, Default)]
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Wraps the process arguments.
    pub fn from_env() -> Args {
        Args {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// Wraps an explicit argument list (tests, the registry driver).
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(argv: I) -> Args {
        Args {
            argv: argv.into_iter().map(Into::into).collect(),
        }
    }

    /// The raw arguments.
    pub fn raw(&self) -> &[String] {
        &self.argv
    }

    /// The first non-flag argument (e.g. the workload or experiment
    /// name), skipping values that belong to `--name value` pairs.
    pub fn positional(&self) -> Option<&str> {
        self.positional_at(0)
    }

    /// The `n`-th (0-based) non-flag argument — `positional_at(1)` is
    /// the experiment name in `sweep fig9 --serial` or
    /// `trace fig9 --out t.json`.
    pub fn positional_at(&self, n: usize) -> Option<&str> {
        let mut seen = 0usize;
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if let Some(flag) = a.strip_prefix("--") {
                if !Self::BOOLEAN_FLAGS.contains(&flag) {
                    it.next(); // skip this flag's value
                }
            } else {
                if seen == n {
                    return Some(a);
                }
                seen += 1;
            }
        }
        None
    }

    /// Flags that take no value — needed so [`Args::positional`] can
    /// tell `--prefetch analytics` from `--tuples 4096`.
    const BOOLEAN_FLAGS: &'static [&'static str] = &[
        "prefetch",
        "impulse",
        "fcfs",
        "closed-row",
        "full",
        "serial",
        "list",
        "quiet",
        "hist",
        "all",
        "quick",
        "shard",
    ];

    /// `--name value` lookup.
    pub fn value(&self, name: &str) -> Option<String> {
        let mut it = self.argv.iter();
        while let Some(a) = it.next() {
            if a == name {
                return it.next().cloned();
            }
        }
        None
    }

    /// Numeric `--name value` with a default.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `usize` variant of [`Args::u64`].
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.u64(name, default as u64) as usize
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    /// Comma-separated `usize` list (`--sizes 32,64,128`).
    pub fn usize_list(&self, name: &str, default: &[usize]) -> Vec<usize> {
        self.value(name)
            .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
            .unwrap_or_else(|| default.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        let a = Args::new(["--tuples", "4096", "--prefetch", "--sizes", "32,64"]);
        assert_eq!(a.u64("--tuples", 1), 4096);
        assert_eq!(a.u64("--txns", 7), 7);
        assert!(a.flag("--prefetch"));
        assert!(!a.flag("--impulse"));
        assert_eq!(a.usize_list("--sizes", &[1]), vec![32, 64]);
        assert_eq!(a.usize_list("--other", &[1]), vec![1]);
    }

    #[test]
    fn positional_skips_flag_values() {
        let a = Args::new(["--tuples", "4096", "analytics", "--prefetch"]);
        assert_eq!(a.positional(), Some("analytics"));
        let b = Args::new(["sweep", "fig10"]);
        assert_eq!(b.positional(), Some("sweep"));
        assert_eq!(b.positional_at(1), Some("fig10"));
        assert_eq!(b.positional_at(2), None);
        let t = Args::new(["trace", "--out", "t.json", "fig9", "--hist"]);
        assert_eq!(t.positional_at(1), Some("fig9"));
        let c = Args::new(["--prefetch", "htap"]);
        assert_eq!(c.positional(), Some("htap"));
        assert_eq!(Args::new(["--tuples", "4096"]).positional(), None);
    }
}
