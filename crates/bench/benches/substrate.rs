//! Micro-benchmarks for the GS-DRAM substrate primitives: the shuffle
//! network, the column translation logic and functional module gathers.
//! These quantify the §3.6 "ease of implementation" claim — the added
//! datapath is a handful of gate delays, so the software model should
//! be nanoseconds per operation.

use gsdram_bench::micro::{black_box, Runner};
use gsdram_core::ctl::{ctl_bank, CommandKind};
use gsdram_core::shuffle::shuffle_line;
use gsdram_core::{gather_slots, ColumnId, Geometry, GsDramConfig, GsModule, PatternId, RowId};

fn bench_shuffle(r: &Runner) {
    let mut line: Vec<u64> = (0..8).collect();
    let mut control = 0u8;
    r.bench("shuffle_line 8 words", || {
        control = control.wrapping_add(1) & 7;
        shuffle_line(black_box(&mut line), 3, control);
    });
}

fn bench_ctl(r: &Runner) {
    let cfg = GsDramConfig::gs_dram_8_3_3();
    let bank = ctl_bank(&cfg);
    let mut col = 0u32;
    r.bench("ctl translate 8 chips", || {
        col = (col + 1) & 127;
        for ctl in &bank {
            black_box(ctl.translate(CommandKind::Read, PatternId(7), ColumnId(col)));
        }
    });
}

fn bench_gather_slots(r: &Runner) {
    let cfg = GsDramConfig::gs_dram_8_3_3();
    let mut col = 0u32;
    r.bench("gather_slots pattern 7", || {
        col = (col + 1) & 127;
        black_box(gather_slots(&cfg, PatternId(7), ColumnId(col), true));
    });
}

fn bench_module(r: &Runner) {
    let cfg = GsDramConfig::gs_dram_8_3_3();
    let geom = Geometry::ddr3_row(&cfg, 4).expect("valid");
    let mut m = GsModule::new(cfg, geom);
    for col in 0..128u32 {
        let line: Vec<u64> = (0..8).map(|w| col as u64 * 8 + w).collect();
        m.write_line(RowId(0), ColumnId(col), PatternId(0), true, &line)
            .expect("in range");
    }
    for p in [0u8, 1, 7] {
        let mut col = 0u32;
        r.bench(&format!("module read_line pattern {p}"), || {
            col = (col + 1) & 127;
            black_box(
                m.read_line(RowId(0), ColumnId(col), PatternId(p), true)
                    .unwrap(),
            );
        });
    }
}

fn main() {
    let r = Runner::from_env();
    bench_shuffle(&r);
    bench_ctl(&r);
    bench_gather_slots(&r);
    bench_module(&r);
}
