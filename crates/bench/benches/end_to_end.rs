//! Criterion benchmarks for end-to-end machine runs: small instances of
//! each paper experiment, so regressions anywhere in the stack
//! (workload generation, caches, coherence, DRAM timing) are caught as
//! wall-clock changes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsdram_bench::{run_single, table1_machine};
use gsdram_workloads::gemm::{program, Gemm, GemmVariant};
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("imdb_transactions");
    group.sample_size(10);
    for layout in Layout::ALL {
        group.bench_function(layout.label(), |b| {
            b.iter(|| {
                let mut m = table1_machine(1, 8 << 20, false);
                let table = Table::create(&mut m, layout, 16 * 1024);
                let spec = TxnSpec { read_only: 1, write_only: 1, read_write: 0 };
                let mut p = transactions(table, spec, 500, 42);
                black_box(run_single(&mut m, &mut p).cpu_cycles)
            });
        });
    }
    group.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("imdb_analytics");
    group.sample_size(10);
    for layout in Layout::ALL {
        group.bench_function(layout.label(), |b| {
            b.iter(|| {
                let mut m = table1_machine(1, 8 << 20, true);
                let table = Table::create(&mut m, layout, 16 * 1024);
                let mut p = analytics(table, &[0]);
                black_box(run_single(&mut m, &mut p).cpu_cycles)
            });
        });
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_64");
    group.sample_size(10);
    for variant in [
        GemmVariant::TiledSimd { tile: 32 },
        GemmVariant::GsDram { tile: 32 },
    ] {
        group.bench_function(variant.label(), |b| {
            b.iter(|| {
                let mut m = table1_machine(1, 16 << 20, false);
                let g = Gemm::create(&mut m, 64, variant);
                g.init(&mut m);
                let (mut p, _) = program(g, None);
                black_box(run_single(&mut m, &mut p).cpu_cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transactions, bench_analytics, bench_gemm);
criterion_main!(benches);
