//! Micro-benchmarks for end-to-end machine runs: small instances of
//! each paper experiment, so regressions anywhere in the stack
//! (workload generation, caches, coherence, DRAM timing) are caught as
//! wall-clock changes.

use gsdram_bench::micro::{black_box, Runner};
use gsdram_bench::{run_single, table1_machine};
use gsdram_workloads::gemm::{program, Gemm, GemmVariant};
use gsdram_workloads::imdb::{analytics, transactions, Layout, Table, TxnSpec};

fn bench_transactions(r: &Runner) {
    for layout in Layout::ALL {
        r.bench(&format!("imdb_transactions {}", layout.label()), || {
            let mut m = table1_machine(1, 8 << 20, false);
            let table = Table::create(&mut m, layout, 16 * 1024);
            let spec = TxnSpec {
                read_only: 1,
                write_only: 1,
                read_write: 0,
            };
            let mut p = transactions(table, spec, 500, 42);
            black_box(run_single(&mut m, &mut p).cpu_cycles);
        });
    }
}

fn bench_analytics(r: &Runner) {
    for layout in Layout::ALL {
        r.bench(&format!("imdb_analytics {}", layout.label()), || {
            let mut m = table1_machine(1, 8 << 20, true);
            let table = Table::create(&mut m, layout, 16 * 1024);
            let mut p = analytics(table, &[0]);
            black_box(run_single(&mut m, &mut p).cpu_cycles);
        });
    }
}

fn bench_gemm(r: &Runner) {
    for variant in [
        GemmVariant::TiledSimd { tile: 32 },
        GemmVariant::GsDram { tile: 32 },
    ] {
        r.bench(&format!("gemm_64 {}", variant.label()), || {
            let mut m = table1_machine(1, 16 << 20, false);
            let g = Gemm::create(&mut m, 64, variant);
            g.init(&mut m);
            let (mut p, _) = program(g, None);
            black_box(run_single(&mut m, &mut p).cpu_cycles);
        });
    }
}

fn main() {
    let r = Runner::from_env();
    bench_transactions(&r);
    bench_analytics(&r);
    bench_gemm(&r);
}
