//! Micro-benchmarks for the memory-system substrates: cache probes and
//! fills, overlap computation, the stride prefetcher, and the FR-FCFS
//! DRAM controller servicing request streams.

use gsdram_bench::micro::{black_box, Runner};
use gsdram_cache::cache::{CacheConfig, LineKey, SetAssocCache};
use gsdram_cache::dbi::DirtyBlockIndex;
use gsdram_cache::overlap::OverlapCalc;
use gsdram_cache::prefetch::StridePrefetcher;
use gsdram_cache::sectored::SectoredCache;
use gsdram_core::{GsDramConfig, PatternId};
use gsdram_dram::controller::{AccessKind, ControllerConfig, MemController, MemRequest};
use gsdram_dram::mapping::AddressMap;

fn bench_cache(r: &Runner) {
    let mut l1 = SetAssocCache::new(CacheConfig::l1_32k());
    for i in 0..512u64 {
        l1.fill(LineKey::new(i * 64, 64, PatternId(0)), vec![i; 8]);
    }
    let mut i = 0u64;
    r.bench("l1 probe hit", || {
        i = (i + 1) & 511;
        black_box(l1.probe(LineKey::new(i * 64, 64, PatternId(0)), false));
    });
    // fill() asserts keys are fresh, so the counter keeps climbing
    // across calibration rounds.
    let mut i = 512u64;
    r.bench("l1 fill+evict", || {
        i += 1;
        black_box(l1.fill(LineKey::new(i * 64, 64, PatternId(0)), vec![0; 8]));
    });
}

fn bench_overlap(r: &Runner) {
    let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);
    let mut col = 0u64;
    r.bench("overlapping_lines tuple->fields", || {
        col = (col + 1) & 127;
        let key = LineKey {
            addr: col * 64,
            pattern: PatternId(0),
        };
        black_box(calc.overlapping_lines(key, PatternId(7), true));
    });
}

fn bench_prefetcher(r: &Runner) {
    let mut p = StridePrefetcher::degree4();
    let mut addr = 0u64;
    r.bench("stride prefetcher observe", || {
        addr += 64;
        black_box(p.observe(0x400, addr));
    });
}

fn bench_dbi(r: &Runner) {
    let mut dbi = DirtyBlockIndex::table1();
    for i in 0..256u64 {
        dbi.mark_dirty(LineKey::new(i * 64 * 17 % (1 << 20), 64, PatternId(0)));
    }
    let mut a = 0u64;
    r.bench("dbi row_has_dirty", || {
        a = (a + 8192) % (1 << 20);
        black_box(dbi.row_has_dirty(a, PatternId(0)));
    });
}

fn bench_sectored(r: &Runner) {
    let mut sc = SectoredCache::new(CacheConfig::l1_32k());
    let mut a = 0u64;
    r.bench("sectored fill+probe", || {
        a += 72;
        if !sc.probe(a, false) {
            black_box(sc.fill_sector(a, a));
        }
    });
}

fn bench_planner(r: &Runner) {
    let cfg = GsDramConfig::gs_dram_8_3_3();
    r.bench("plan_stride stride 3 x64", || {
        black_box(gsdram_core::plan::plan_stride(&cfg, 128, 0, 3, 64));
    });
}

fn bench_controller(r: &Runner) {
    let map = AddressMap::table1();
    let mut done = Vec::new();
    r.bench("controller 64-request stream", || {
        let mut mc = MemController::new(ControllerConfig::default());
        for i in 0..64u64 {
            mc.enqueue(
                MemRequest {
                    id: i,
                    loc: map.decompose(i * 64 * 131),
                    pattern: PatternId(0),
                    kind: if i % 4 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                },
                i,
            );
        }
        let end = mc.drain();
        done.clear();
        mc.take_completions_into(end, &mut done);
        black_box(done.len());
    });
}

fn main() {
    let r = Runner::from_env();
    bench_cache(&r);
    bench_overlap(&r);
    bench_prefetcher(&r);
    bench_dbi(&r);
    bench_sectored(&r);
    bench_planner(&r);
    bench_controller(&r);
}
