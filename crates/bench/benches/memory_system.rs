//! Criterion benchmarks for the memory-system substrates: cache probes
//! and fills, overlap computation, the stride prefetcher, and the
//! FR-FCFS DRAM controller servicing request streams.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gsdram_cache::cache::{CacheConfig, LineKey, SetAssocCache};
use gsdram_cache::overlap::OverlapCalc;
use gsdram_cache::dbi::DirtyBlockIndex;
use gsdram_cache::prefetch::StridePrefetcher;
use gsdram_cache::sectored::SectoredCache;
use gsdram_core::{GsDramConfig, PatternId};
use gsdram_dram::controller::{AccessKind, ControllerConfig, MemController, MemRequest};
use gsdram_dram::mapping::AddressMap;

fn bench_cache(c: &mut Criterion) {
    let mut l1 = SetAssocCache::new(CacheConfig::l1_32k());
    for i in 0..512u64 {
        l1.fill(LineKey::new(i * 64, 64, PatternId(0)), vec![i; 8]);
    }
    c.bench_function("l1 probe hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 511;
            black_box(l1.probe(LineKey::new(i * 64, 64, PatternId(0)), false));
        });
    });
    // The counter lives outside the bench closure: criterion re-invokes
    // it across warm-up and sample batches, and fill() asserts keys are
    // fresh.
    let mut i = 512u64;
    c.bench_function("l1 fill+evict", move |b| {
        b.iter(|| {
            i += 1;
            black_box(l1.fill(LineKey::new(i * 64, 64, PatternId(0)), vec![0; 8]));
        });
    });
}

fn bench_overlap(c: &mut Criterion) {
    let calc = OverlapCalc::new(GsDramConfig::gs_dram_8_3_3(), 64, 128);
    c.bench_function("overlapping_lines tuple->fields", |b| {
        let mut col = 0u64;
        b.iter(|| {
            col = (col + 1) & 127;
            let key = LineKey { addr: col * 64, pattern: PatternId(0) };
            black_box(calc.overlapping_lines(key, PatternId(7), true));
        });
    });
}

fn bench_prefetcher(c: &mut Criterion) {
    c.bench_function("stride prefetcher observe", |b| {
        let mut p = StridePrefetcher::degree4();
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            black_box(p.observe(0x400, addr));
        });
    });
}

fn bench_dbi(c: &mut Criterion) {
    let mut dbi = DirtyBlockIndex::table1();
    for i in 0..256u64 {
        dbi.mark_dirty(LineKey::new(i * 64 * 17 % (1 << 20), 64, PatternId(0)));
    }
    c.bench_function("dbi row_has_dirty", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 8192) % (1 << 20);
            black_box(dbi.row_has_dirty(a, PatternId(0)));
        });
    });
}

fn bench_sectored(c: &mut Criterion) {
    let mut sc = SectoredCache::new(CacheConfig::l1_32k());
    c.bench_function("sectored fill+probe", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a += 72;
            if !sc.probe(a, false) {
                black_box(sc.fill_sector(a, a));
            }
        });
    });
}

fn bench_planner(c: &mut Criterion) {
    let cfg = gsdram_core::GsDramConfig::gs_dram_8_3_3();
    c.bench_function("plan_stride stride 3 x64", |b| {
        b.iter(|| black_box(gsdram_core::plan::plan_stride(&cfg, 128, 0, 3, 64)));
    });
}

fn bench_controller(c: &mut Criterion) {
    let map = AddressMap::table1();
    c.bench_function("controller 64-request stream", |b| {
        b.iter(|| {
            let mut mc = MemController::new(ControllerConfig::default());
            for i in 0..64u64 {
                mc.enqueue(
                    MemRequest {
                        id: i,
                        loc: map.decompose(i * 64 * 131),
                        pattern: PatternId(0),
                        kind: if i % 4 == 0 { AccessKind::Write } else { AccessKind::Read },
                    },
                    i,
                );
            }
            let end = mc.drain();
            black_box(mc.take_completions(end));
        });
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_overlap,
    bench_prefetcher,
    bench_dbi,
    bench_sectored,
    bench_planner,
    bench_controller
);
criterion_main!(benches);
