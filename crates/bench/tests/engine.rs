//! Experiment-engine integration tests: the parallel sweep runner must
//! be bit-identical to the serial one, and the stats trees experiments
//! emit must survive a JSON round-trip unchanged.

use gsdram_bench::args::Args;
use gsdram_bench::experiments::{find, run_experiment};
use gsdram_bench::spec::{MachineSpec, RunSpec, WorkloadSpec};
use gsdram_bench::sweep::{run_parallel, run_serial};
use gsdram_core::stats::StatsNode;
use gsdram_workloads::imdb::{Layout, TxnSpec};

fn small_specs() -> Vec<RunSpec> {
    let mut v = Vec::new();
    for layout in Layout::ALL {
        v.push(RunSpec {
            id: format!("t/anal/{}", layout.label()),
            machine: MachineSpec::table1(1, 4 << 20),
            workload: WorkloadSpec::Analytics {
                layout,
                tuples: 2048,
                columns: vec![0, 1],
            },
        });
        v.push(RunSpec {
            id: format!("t/txn/{}", layout.label()),
            machine: MachineSpec::table1(1, 4 << 20),
            workload: WorkloadSpec::Transactions {
                layout,
                spec: TxnSpec {
                    read_only: 2,
                    write_only: 1,
                    read_write: 1,
                },
                tuples: 1024,
                txns: 200,
                seed: 7,
            },
        });
    }
    v
}

/// The tentpole guarantee: executing the same specs on worker threads
/// produces byte-for-byte the same stats trees, in the same order, as
/// executing them one by one.
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let specs = small_specs();
    let serial = run_serial(&specs);
    for threads in [2usize, 4, 0] {
        let parallel = run_parallel(&specs, threads);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.spec, p.spec, "order must be preserved");
            assert_eq!(s.stats(), p.stats(), "{}: tree mismatch", s.spec.id);
            assert_eq!(
                s.stats().to_json(),
                p.stats().to_json(),
                "{}: JSON bytes mismatch",
                s.spec.id
            );
        }
    }
}

/// Same property one level up: a whole registry experiment run with
/// `--serial` matches the default parallel run, byte for byte.
#[test]
fn registry_experiment_parallel_matches_serial() {
    let def = find("fig10").expect("registered");
    let serial = run_experiment(def, &Args::new(["--tuples", "2048", "--serial"]));
    let parallel = run_experiment(def, &Args::new(["--tuples", "2048", "--threads", "4"]));
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json_pretty(), parallel.to_json_pretty());
}

/// Every value kind an experiment emits (counters, gauges, text,
/// nested children) must survive serialise → parse → compare.
#[test]
fn experiment_tree_round_trips_through_json() {
    let def = find("extras_kvstore_graph").expect("registered");
    let node = run_experiment(
        def,
        &Args::new(["--pairs", "512", "--nodes", "1024", "--serial"]),
    );
    for json in [node.to_json(), node.to_json_pretty()] {
        let back = StatsNode::from_json(&json).expect("parse back");
        assert_eq!(node, back);
    }
}

/// Analytic experiments (no machine runs) also produce valid,
/// round-trippable trees.
#[test]
fn analytic_experiment_round_trips() {
    let def = find("ablation_shuffle").expect("registered");
    let node = run_experiment(def, &Args::new([] as [&str; 0]));
    assert_eq!(
        node.counter_at("summary/reads_per_gathered_line/stride8_shuffled"),
        Some(1)
    );
    let back = StatsNode::from_json(&node.to_json()).expect("parse back");
    assert_eq!(node, back);
}
