//! Experiment-engine integration tests: the parallel sweep runner must
//! be bit-identical to the serial one, and the stats trees experiments
//! emit must survive a JSON round-trip unchanged.

use gsdram_bench::args::Args;
use gsdram_bench::experiments::{find, run_experiment, run_experiment_traced};
use gsdram_bench::spec::{MachineSpec, RunSpec, WorkloadSpec};
use gsdram_bench::sweep::{run_parallel, run_serial, run_traced, SweepMode};
use gsdram_core::json::Json;
use gsdram_core::stats::StatsNode;
use gsdram_workloads::imdb::{Layout, TxnSpec};

fn small_specs() -> Vec<RunSpec> {
    let mut v = Vec::new();
    for layout in Layout::ALL {
        v.push(RunSpec {
            id: format!("t/anal/{}", layout.label()),
            machine: MachineSpec::table1(1, 4 << 20),
            workload: WorkloadSpec::Analytics {
                layout,
                tuples: 2048,
                columns: vec![0, 1],
            },
        });
        v.push(RunSpec {
            id: format!("t/txn/{}", layout.label()),
            machine: MachineSpec::table1(1, 4 << 20),
            workload: WorkloadSpec::Transactions {
                layout,
                spec: TxnSpec {
                    read_only: 2,
                    write_only: 1,
                    read_write: 1,
                },
                tuples: 1024,
                txns: 200,
                seed: 7,
            },
        });
    }
    v
}

/// The tentpole guarantee: executing the same specs on worker threads
/// produces byte-for-byte the same stats trees, in the same order, as
/// executing them one by one.
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let specs = small_specs();
    let serial = run_serial(&specs);
    for threads in [2usize, 4, 0] {
        let parallel = run_parallel(&specs, threads);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.spec, p.spec, "order must be preserved");
            assert_eq!(s.stats(), p.stats(), "{}: tree mismatch", s.spec.id);
            assert_eq!(
                s.stats().to_json(),
                p.stats().to_json(),
                "{}: JSON bytes mismatch",
                s.spec.id
            );
        }
    }
}

/// Same property one level up: a whole registry experiment run with
/// `--serial` matches the default parallel run, byte for byte.
#[test]
fn registry_experiment_parallel_matches_serial() {
    let def = find("fig10").expect("registered");
    let serial = run_experiment(def, &Args::new(["--tuples", "2048", "--serial"]));
    let parallel = run_experiment(def, &Args::new(["--tuples", "2048", "--threads", "4"]));
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json_pretty(), parallel.to_json_pretty());
}

/// The telemetry invariant at the sweep level: a traced sweep (serial
/// or parallel) produces outcomes byte-identical to an untraced one,
/// while its collectors actually saw the runs.
#[test]
fn traced_sweep_is_bit_identical_to_untraced() {
    let specs = small_specs();
    let plain = run_serial(&specs);
    for mode in [SweepMode::Serial, SweepMode::Parallel(3)] {
        let traced = run_traced(&specs, mode, 1024);
        assert_eq!(plain.len(), traced.len());
        for (p, (t, telemetry)) in plain.iter().zip(&traced) {
            assert_eq!(p.spec, t.spec, "order must be preserved");
            assert_eq!(
                p.stats().to_json(),
                t.stats().to_json(),
                "{}: observation must not perturb the run ({mode:?})",
                p.spec.id
            );
            assert!(telemetry.total_events() > 0, "{}: no events", p.spec.id);
            assert!(telemetry.read_latency(0).is_some_and(|h| h.count() > 0));
        }
    }
}

/// The acceptance criterion one level up: a whole registry experiment
/// run with collectors attached emits figure JSON byte-identical to
/// the untraced run, and its Chrome trace is well-formed JSON.
#[test]
fn traced_experiment_figure_json_matches_untraced() {
    let def = find("fig10").expect("registered");
    let args = Args::new(["--tuples", "2048", "--serial"]);
    let plain = run_experiment(def, &args);
    let (traced, traces) = run_experiment_traced(def, &args, 4096);
    assert_eq!(plain.to_json_pretty(), traced.to_json_pretty());
    assert_eq!(
        traces.len(),
        plain.counter_at("total_runs").unwrap() as usize
    );
    let chrome = gsdram_telemetry::chrome_trace(
        &traces
            .iter()
            .map(|(id, t)| (id.clone(), t))
            .collect::<Vec<_>>(),
    );
    let doc = Json::parse(&chrome).expect("chrome trace parses");
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty());
}

/// The iteration-order pin: two identical invocations must emit
/// byte-identical JSON. Each parallel run builds its tables afresh on
/// fresh worker threads (fresh hasher seeds), so any hash-map
/// iteration order leaking into output shows up as a byte diff here —
/// the in-process counterpart of CI's two-process figure comparison.
#[test]
fn repeated_runs_are_byte_identical() {
    let specs = small_specs();
    let first = run_parallel(&specs, 3);
    let second = run_parallel(&specs, 3);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.stats().to_json(), b.stats().to_json(), "{}", a.spec.id);
    }
    let def = find("fig10").expect("registered");
    let args = Args::new(["--tuples", "2048"]);
    let (t1, _) = run_experiment_traced(def, &args, 2048);
    let (t2, _) = run_experiment_traced(def, &args, 2048);
    assert_eq!(t1.to_json_pretty(), t2.to_json_pretty());
}

/// The same proofs for the pattern engine: a pattern experiment run
/// with `--serial` is byte-identical to the parallel run, and two
/// identical invocations emit byte-identical JSON. The generators are
/// seeded (SplitMix64 over the spec's `seed`), so any nondeterminism
/// here would mean the index streams themselves drifted.
#[test]
fn pattern_experiments_are_deterministic_serial_and_parallel() {
    for (name, args) in [
        (
            "pattern_stride_sweep",
            vec!["--accesses", "256", "--strides", "1,2,8"],
        ),
        (
            "pattern_indirect",
            vec!["--accesses", "256", "--elements", "4096"],
        ),
    ] {
        let def = find(name).expect("registered");
        let mut serial_args: Vec<&str> = args.clone();
        serial_args.push("--serial");
        let mut par_args: Vec<&str> = args.clone();
        par_args.extend(["--threads", "4"]);
        let serial = run_experiment(def, &Args::new(serial_args.clone()));
        let parallel = run_experiment(def, &Args::new(par_args));
        assert_eq!(serial, parallel, "{name}: serial vs parallel tree");
        assert_eq!(
            serial.to_json_pretty(),
            parallel.to_json_pretty(),
            "{name}: serial vs parallel JSON bytes"
        );
        let again = run_experiment(def, &Args::new(serial_args));
        assert_eq!(
            serial.to_json_pretty(),
            again.to_json_pretty(),
            "{name}: two runs must be byte-identical"
        );
    }
}

/// The shard-determinism pin at the registry level: `scale_channels`
/// run with `--shard` (multi-channel controllers advanced on worker
/// threads inside each machine) emits figure JSON byte-identical to
/// the plain `--serial` run. This is the in-process counterpart of
/// CI's two-process shard byte-diff, and the machine-scope leg of the
/// proof obligation carried by `gsdram_dram::shard`'s D8 waiver.
#[test]
fn sharded_scale_channels_is_byte_identical_to_serial() {
    let def = find("scale_channels").expect("registered");
    let serial = run_experiment(def, &Args::new(["--tuples", "2048", "--serial"]));
    let sharded = run_experiment(def, &Args::new(["--tuples", "2048", "--serial", "--shard"]));
    assert_eq!(serial, sharded, "sharding must not change any result");
    assert_eq!(serial.to_json_pretty(), sharded.to_json_pretty());
    // And the sharded run itself is reproducible run-to-run.
    let again = run_experiment(def, &Args::new(["--tuples", "2048", "--serial", "--shard"]));
    assert_eq!(sharded.to_json_pretty(), again.to_json_pretty());
}

/// Every value kind an experiment emits (counters, gauges, text,
/// nested children) must survive serialise → parse → compare.
#[test]
fn experiment_tree_round_trips_through_json() {
    let def = find("extras_kvstore_graph").expect("registered");
    let node = run_experiment(
        def,
        &Args::new(["--pairs", "512", "--nodes", "1024", "--serial"]),
    );
    for json in [node.to_json(), node.to_json_pretty()] {
        let back = StatsNode::from_json(&json).expect("parse back");
        assert_eq!(node, back);
    }
}

/// Analytic experiments (no machine runs) also produce valid,
/// round-trippable trees.
#[test]
fn analytic_experiment_round_trips() {
    let def = find("ablation_shuffle").expect("registered");
    let node = run_experiment(def, &Args::new([] as [&str; 0]));
    assert_eq!(
        node.counter_at("summary/reads_per_gathered_line/stride8_shuffled"),
        Some(1)
    );
    let back = StatsNode::from_json(&node.to_json()).expect("parse back");
    assert_eq!(node, back);
}
