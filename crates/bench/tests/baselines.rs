//! Frozen-output and ablation acceptance tests for the pluggable DRAM
//! back-end.
//!
//! The scheduler/refresh/write-drain extraction and the mapping
//! component functions must not move a single byte of the frozen
//! figure JSON under the default machine (FR-FCFS, direct bank map):
//! `tests/baselines/*.json` were generated before the refactor, and
//! the pin tests here re-run the same experiments in process and
//! compare the pretty JSON byte-for-byte (CI also diffs the CLI
//! output against the same files).

use gsdram_bench::args::Args;
use gsdram_bench::experiments::{find, run_experiment};
use gsdram_core::stats::StatsNode;

/// `tuples`-sized fig9 JSON must match the committed pre-refactor
/// baseline byte-for-byte.
#[test]
fn fig9_json_matches_pre_refactor_baseline() {
    let def = find("fig9").expect("registered");
    let args = Args::new(["--txns", "200", "--tuples", "2048"]);
    let node = run_experiment(def, &args);
    let want = include_str!("../../../tests/baselines/fig9_small.json");
    assert!(
        node.to_json_pretty() == want,
        "fig9 JSON drifted from tests/baselines/fig9_small.json"
    );
}

#[test]
fn fig10_json_matches_pre_refactor_baseline() {
    let def = find("fig10").expect("registered");
    let args = Args::new(["--tuples", "2048"]);
    let node = run_experiment(def, &args);
    let want = include_str!("../../../tests/baselines/fig10_small.json");
    assert!(
        node.to_json_pretty() == want,
        "fig10 JSON drifted from tests/baselines/fig10_small.json"
    );
}

/// The pattern-engine experiments have their own committed baselines
/// (under `crates/bench/tests/baselines/`, generated at the
/// perf-quick pinned sizes): the stride sweep's speedup column IS the
/// paper-extending claim — gains track the largest power-of-two
/// factor of the stride, capped at 8 — so a byte must not move
/// without a review diff (CI's pattern-smoke job diffs the CLI output
/// against the same files).
#[test]
fn pattern_stride_sweep_json_matches_committed_baseline() {
    let def = find("pattern_stride_sweep").expect("registered");
    let args = Args::new(["--accesses", "512"]);
    let node = run_experiment(def, &args);
    let want = include_str!("baselines/pattern_stride_sweep_small.json");
    assert!(
        node.to_json_pretty() == want,
        "pattern_stride_sweep JSON drifted from crates/bench/tests/baselines/pattern_stride_sweep_small.json"
    );
}

#[test]
fn pattern_indirect_json_matches_committed_baseline() {
    let def = find("pattern_indirect").expect("registered");
    let args = Args::new(["--accesses", "512", "--elements", "8192"]);
    let node = run_experiment(def, &args);
    let want = include_str!("baselines/pattern_indirect_small.json");
    assert!(
        node.to_json_pretty() == want,
        "pattern_indirect JSON drifted from crates/bench/tests/baselines/pattern_indirect_small.json"
    );
}

/// The multi-channel scaling experiment has its own committed baseline
/// (generated at the perf-quick pinned size). Channel counts beyond
/// one exercise the whole XOR-matrix mapping pipeline and the
/// per-channel controller plumbing, so this pin is what freezes the
/// multi-channel decomposition: a byte moving here means addresses
/// started landing on different channels.
#[test]
fn scale_channels_json_matches_committed_baseline() {
    let def = find("scale_channels").expect("registered");
    let args = Args::new(["--tuples", "2048"]);
    let node = run_experiment(def, &args);
    let want = include_str!("baselines/scale_channels_small.json");
    assert!(
        node.to_json_pretty() == want,
        "scale_channels JSON drifted from crates/bench/tests/baselines/scale_channels_small.json"
    );
    // The figure must actually separate the channel counts on the
    // bandwidth-bound row store, and speedups must stay sane.
    let ch1 = summary_child(&node, "ch1");
    let ch4 = summary_child(&node, "ch4");
    assert_eq!(ch1.gauge_at("row_speedup_vs_1ch"), Some(1.0));
    assert!(
        ch4.gauge_at("row_mcycles") < ch1.gauge_at("row_mcycles"),
        "four channels must beat one on the row-store scan"
    );
}

fn summary_child<'a>(root: &'a StatsNode, config: &str) -> &'a StatsNode {
    let summary = root
        .children()
        .iter()
        .find(|c| c.name() == "summary")
        .expect("summary subtree");
    summary
        .children()
        .iter()
        .find(|c| c.name() == config)
        .unwrap_or_else(|| panic!("missing summary config {config}"))
}

/// The scheduler ablation must (a) be deterministic and (b) actually
/// separate the four engines: distinct row-store timings, no fairness
/// decisions from the default engines, cap promotions and bank-rr
/// rotations from the new ones.
#[test]
fn ablation_sched_is_distinct_and_deterministic() {
    let def = find("ablation_sched").expect("registered");
    let args = Args::new(["--tuples", "2048"]);
    let node = run_experiment(def, &args);
    assert_eq!(node.counter_at("total_runs"), Some(8));

    let cycles: Vec<f64> = ["frfcfs_row", "fcfs_row", "frfcfs-cap_row", "bank-rr_row"]
        .iter()
        .map(|c| {
            summary_child(&node, c)
                .gauge_at("analytics_mcycles")
                .unwrap_or_else(|| panic!("{c}: analytics_mcycles"))
        })
        .collect();
    for i in 0..cycles.len() {
        for j in i + 1..cycles.len() {
            assert!(
                cycles[i] != cycles[j],
                "row-store timings must separate the engines, got {cycles:?}"
            );
        }
    }

    for c in ["frfcfs_row", "fcfs_row", "frfcfs_gs", "fcfs_gs"] {
        let n = summary_child(&node, c);
        assert_eq!(n.counter_at("sched_hit_bypasses"), Some(0), "{c}");
        assert_eq!(n.counter_at("sched_promotions"), Some(0), "{c}");
        assert_eq!(n.counter_at("sched_batch_rotations"), Some(0), "{c}");
    }
    let cap = summary_child(&node, "frfcfs-cap_row");
    assert!(cap.counter_at("sched_hit_bypasses") > Some(0));
    assert!(cap.counter_at("sched_promotions") > Some(0));
    let rr = summary_child(&node, "bank-rr_row");
    assert!(rr.counter_at("sched_batch_rotations") > Some(0));

    // Same spec, same bytes: the engines are deterministic.
    let again = run_experiment(def, &args);
    assert!(node.to_json_pretty() == again.to_json_pretty());
}

/// The mapping ablation must separate direct from XOR-hashed banks on
/// the random-transaction runs and stay deterministic.
#[test]
fn ablation_mapping_is_distinct_and_deterministic() {
    let def = find("ablation_mapping").expect("registered");
    let args = Args::new(["--tuples", "2048"]);
    let node = run_experiment(def, &args);
    assert_eq!(node.counter_at("total_runs"), Some(8));

    for layout in ["row", "gs"] {
        let direct = summary_child(&node, &format!("direct_{layout}"));
        let xor = summary_child(&node, &format!("xor-bank_{layout}"));
        assert!(
            direct.gauge_at("txn_row_hit_rate") != xor.gauge_at("txn_row_hit_rate"),
            "{layout}: the bank hash must change transaction row locality"
        );
    }

    let again = run_experiment(def, &args);
    assert!(node.to_json_pretty() == again.to_json_pretty());
}
