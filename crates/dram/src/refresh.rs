//! Refresh engine: the periodic-refresh schedule extracted from the
//! controller's `advance()` loop.
//!
//! DDR3 devices must receive a REFRESH command every tREFI on average.
//! The engine tracks when the next refresh is due and how it interacts
//! with command scheduling: refresh takes priority over any command
//! that is not strictly earlier than the due time (otherwise a steady
//! request stream could postpone refresh forever). Issuing the actual
//! PRE+REF command sequence stays in the controller, which owns the
//! rank state machines, clocks and energy accounting.

use crate::timing::Cycles;

/// The periodic-refresh schedule for one channel.
#[derive(Debug, Clone, Copy)]
pub struct RefreshTimer {
    enabled: bool,
    refi: Cycles,
    next_due: Cycles,
}

impl RefreshTimer {
    /// A timer firing every `refi` cycles, first at `refi`. When
    /// `enabled` is false the timer never fires.
    pub fn new(enabled: bool, refi: Cycles) -> Self {
        RefreshTimer {
            enabled,
            refi,
            next_due: if enabled { refi } else { Cycles::MAX },
        }
    }

    /// Whether periodic refresh is modelled at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Cycle the next refresh is due (`Cycles::MAX` when disabled).
    pub fn next_due(&self) -> Cycles {
        self.next_due
    }

    /// Whether a refresh is due within the scheduling horizon `limit`.
    pub fn due_by(&self, limit: Cycles) -> bool {
        self.enabled && self.next_due <= limit
    }

    /// Whether a due refresh preempts a command that could issue at
    /// `ready`: refresh wins unless the command is strictly earlier.
    pub fn preempts(&self, ready: Cycles, limit: Cycles) -> bool {
        self.due_by(limit) && ready >= self.next_due
    }

    /// Advances the schedule by one period, after the controller issued
    /// the refresh sequence.
    pub fn advance_period(&mut self) {
        self.next_due += self.refi;
    }

    /// The timer's time-skip horizon: the exact next cycle its state
    /// can change (the next due refresh), or `None` when disabled —
    /// the form [`gsdram_core::time::TimeFold`] folds.
    pub fn horizon(&self) -> Option<Cycles> {
        self.enabled.then_some(self.next_due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_every_period_when_enabled() {
        let mut r = RefreshTimer::new(true, 100);
        assert!(r.enabled());
        assert_eq!(r.next_due(), 100);
        assert!(!r.due_by(99));
        assert!(r.due_by(100));
        r.advance_period();
        assert_eq!(r.next_due(), 200);
    }

    #[test]
    fn disabled_timer_never_fires() {
        let r = RefreshTimer::new(false, 100);
        assert!(!r.enabled());
        assert_eq!(r.next_due(), Cycles::MAX);
        assert!(!r.due_by(Cycles::MAX));
        assert!(!r.preempts(0, Cycles::MAX));
    }

    #[test]
    fn preempts_commands_not_strictly_earlier() {
        let r = RefreshTimer::new(true, 100);
        assert!(r.preempts(100, 1000), "tie goes to refresh");
        assert!(r.preempts(150, 1000));
        assert!(!r.preempts(99, 1000), "strictly earlier command wins");
        assert!(!r.preempts(150, 50), "not due within the horizon");
    }
}
