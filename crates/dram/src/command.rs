//! DRAM commands as issued on the command bus.

use gsdram_core::{ColumnId, PatternId, RowId};

/// Index of a bank within the rank.
pub type BankId = usize;

/// A command the memory controller places on the command/address bus.
///
/// READ and WRITE carry the GS-DRAM pattern ID (paper §3.3); for the
/// command-bus and timing model the pattern is inert — that is the
/// point of the mechanism: a gather costs exactly one ordinary column
/// command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramCommand {
    /// Open `row` in `bank`, copying it into the bank's row buffer.
    Activate {
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: RowId,
    },
    /// Close the open row of `bank`.
    Precharge {
        /// Target bank.
        bank: BankId,
    },
    /// Column read of one cache line (with a GS-DRAM pattern).
    Read {
        /// Target bank.
        bank: BankId,
        /// Column address broadcast to all chips.
        col: ColumnId,
        /// GS-DRAM pattern ID riding on spare address pins (§3.6).
        pattern: PatternId,
    },
    /// Column write of one cache line (with a GS-DRAM pattern).
    Write {
        /// Target bank.
        bank: BankId,
        /// Column address broadcast to all chips.
        col: ColumnId,
        /// GS-DRAM pattern ID.
        pattern: PatternId,
    },
    /// All-bank auto refresh.
    Refresh,
}

impl DramCommand {
    /// The bank this command addresses, if it is bank-scoped.
    pub fn bank(&self) -> Option<BankId> {
        match self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Precharge { bank }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. } => Some(*bank),
            DramCommand::Refresh => None,
        }
    }

    /// Whether this is a column (data-transferring) command.
    pub fn is_column(&self) -> bool {
        matches!(self, DramCommand::Read { .. } | DramCommand::Write { .. })
    }
}

/// A timestamped command, for trace logging and timing verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedCommand {
    /// Issue cycle (memory clock).
    pub at: u64,
    /// Rank the command addresses (0 for single-rank channels;
    /// REFRESH is issued per rank).
    pub rank: usize,
    /// The command issued.
    pub cmd: DramCommand,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_extraction() {
        assert_eq!(
            DramCommand::Activate {
                bank: 3,
                row: RowId(7)
            }
            .bank(),
            Some(3)
        );
        assert_eq!(DramCommand::Refresh.bank(), None);
    }

    #[test]
    fn column_classification() {
        assert!(DramCommand::Read {
            bank: 0,
            col: ColumnId(0),
            pattern: PatternId(0)
        }
        .is_column());
        assert!(DramCommand::Write {
            bank: 0,
            col: ColumnId(0),
            pattern: PatternId(3)
        }
        .is_column());
        assert!(!DramCommand::Precharge { bank: 0 }.is_column());
        assert!(!DramCommand::Refresh.is_column());
    }
}
