//! Sharded per-channel controller advance.
//!
//! ROADMAP item 2's payoff: once a machine has N independent channel
//! controllers, advancing them to a common horizon is embarrassingly
//! parallel — controllers share no state, each one's event stream is
//! fully determined by its own queues, and the caller merges results
//! *after* every controller has reached the horizon. That makes the
//! sharded advance bit-identical to the serial loop by construction:
//! there is no cross-thread communication to order, only a fork at a
//! common start time and a join at a common horizon (the same
//! `Horizon`/next-event contract the time-skip engine already
//! guarantees per controller).
//!
//! Observation is the one thing that cannot shard: an attached
//! [`EventHub`] is a single mutable event sink with a global order, so
//! callers must only take this path when no observer is attached
//! (each shard gets a private detached hub, which drops events for
//! free). The bridge enforces that gate; see
//! `gsdram_system::bridge`.
//!
//! This module is the second sanctioned D8 site after the bench
//! sweep runner, and carries the same proof obligation: a
//! sharded ≡ serial byte-diff (here `sharded_matches_serial_advance`,
//! at machine scope `bench/tests/engine.rs`).

use crate::controller::MemController;
use crate::timing::Cycles;
use gsdram_core::port::EventHub;

/// Minimum advance span (memory cycles) for which forking threads can
/// beat the serial loop: below this, spawn/join overhead dominates the
/// handful of commands each controller would issue. Callers gate on
/// [`worth_sharding`], which bakes this in.
pub const MIN_SPAN: Cycles = 4096;

/// True when a sharded advance of `ctls` to `to` can plausibly beat
/// the serial loop: at least two controllers have real work in the
/// span (a quiescent controller just leaps its clock, which is not
/// worth a thread).
pub fn worth_sharding(ctls: &[MemController], to: Cycles) -> bool {
    if ctls.len() < 2 {
        return false;
    }
    let busy = ctls
        .iter()
        .filter(|c| !c.quiescent_until(to) && to.saturating_sub(c.now()) >= MIN_SPAN)
        .count();
    busy >= 2
}

/// Advances every controller to `to` on the calling thread, events
/// dropped — the serial twin of [`advance_sharded`], used by the
/// determinism proofs and by callers that fail the shard gate.
pub fn advance_serial(ctls: &mut [MemController], to: Cycles) {
    let mut hub = EventHub::new();
    for c in ctls.iter_mut() {
        c.advance_observed(to, &mut hub);
    }
}

/// Advances every controller to `to`, one thread per non-quiescent
/// controller, quiescent ones leapt on the calling thread. Events are
/// dropped (each shard advances under a private detached hub), so
/// callers must not take this path while an observer is attached.
///
/// Equivalent to [`advance_serial`] state-for-state: controllers are
/// disjoint, each advance is deterministic given its own queues, and
/// the scope joins every shard before returning.
// gsdram-lint: allow-block(D8) the channel-shard site: disjoint controllers fork at a common start and join at a common horizon, no shared state, proven bit-identical to the serial loop in this module's tests and bench/tests/engine.rs
pub fn advance_sharded(ctls: &mut [MemController], to: Cycles) {
    std::thread::scope(|scope| {
        for c in ctls.iter_mut() {
            if c.quiescent_until(to) {
                // Pure clock leap; cheaper than a thread.
                let mut hub = EventHub::new();
                c.advance_observed(to, &mut hub);
            } else {
                scope.spawn(move || {
                    let mut hub = EventHub::new();
                    c.advance_observed(to, &mut hub);
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{AccessKind, ControllerConfig, MemController, MemRequest};
    use crate::mapping::AddressMap;
    use gsdram_core::PatternId;

    /// A deterministic SplitMix64 stream for request addresses.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Builds `channels` controllers pre-loaded with an identical
    /// deterministic request mix (mapped through a multi-channel
    /// address map, scattered to each request's channel).
    fn loaded_controllers(channels: usize, requests: usize, seed: u64) -> Vec<MemController> {
        let map = AddressMap::with_shape(
            64,
            128,
            8,
            1,
            channels as u64,
            crate::mapping::Interleave::ColumnFirst,
        );
        let mut ctls: Vec<MemController> = (0..channels)
            .map(|ch| {
                let mut c = MemController::new(ControllerConfig::default());
                c.set_channel(ch);
                c
            })
            .collect();
        let mut rng = Rng(seed);
        for id in 0..requests {
            let addr = (rng.next() % (1 << 24)) * 64;
            let loc = map.decompose(addr);
            let kind = if rng.next().is_multiple_of(4) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let at = rng.next() % 50_000;
            ctls[loc.channel].enqueue(
                MemRequest {
                    id: id as u64,
                    loc,
                    pattern: PatternId(0),
                    kind,
                },
                at,
            );
        }
        ctls
    }

    fn snapshot(ctls: &mut [MemController]) -> String {
        let mut out = String::new();
        for c in ctls.iter_mut() {
            let mut done = Vec::new();
            c.take_completions_into(u64::MAX, &mut done);
            out.push_str(&format!(
                "clock={} pending={} stats={:?} energy={:?} completions={:?}\n",
                c.now(),
                c.pending(),
                c.stats(),
                c.energy(),
                done
            ));
        }
        out
    }

    #[test]
    fn sharded_matches_serial_advance() {
        for channels in [2usize, 4] {
            let horizon = 400_000u64;
            let mut serial = loaded_controllers(channels, 600, 7);
            let mut sharded = loaded_controllers(channels, 600, 7);
            assert!(worth_sharding(&serial, horizon));
            advance_serial(&mut serial, horizon);
            advance_sharded(&mut sharded, horizon);
            assert_eq!(
                snapshot(&mut serial),
                snapshot(&mut sharded),
                "{channels} channels"
            );
        }
    }

    #[test]
    fn repeated_sharded_advances_stay_deterministic() {
        let run = || {
            let mut ctls = loaded_controllers(4, 400, 99);
            // Advance in several uneven hops, sharding each time.
            for to in [10_000u64, 50_000, 123_456, 300_000] {
                advance_sharded(&mut ctls, to);
            }
            snapshot(&mut ctls)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shard_gate_requires_two_busy_controllers() {
        // Below MIN_SPAN nothing is worth a thread.
        let idle: Vec<MemController> = (0..4)
            .map(|_| MemController::new(ControllerConfig::default()))
            .collect();
        assert!(!worth_sharding(&idle, 10));
        // One busy controller is not enough either.
        let mut one = loaded_controllers(1, 64, 3);
        assert!(!worth_sharding(&one, 400_000));
        advance_serial(&mut one, 400_000);
        // Two busy controllers over a long span: shard.
        let two = loaded_controllers(2, 256, 3);
        assert!(worth_sharding(&two, 400_000));
        // ... but not over a span shorter than MIN_SPAN.
        assert!(!worth_sharding(&two, MIN_SPAN / 2));
    }
}
