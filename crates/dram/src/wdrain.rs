//! Write-drain engine: watermark hysteresis deciding when the
//! controller services writes instead of reads.
//!
//! Reads are latency-critical and writes are not, so the controller
//! normally lets reads bypass the write queue. Left unchecked that
//! starves writebacks, so once the write queue reaches a *high
//! watermark* the engine enters drain mode and services writes until
//! the queue shrinks to a *low watermark* (batching writes amortises
//! the bus read↔write turnaround). This state machine was previously
//! inlined in `MemController::serving_writes`; extracting it makes the
//! mode edges observable — [`WriteDrain::update`] reports each
//! enter/exit transition, which the controller folds into
//! `ControllerStats` and telemetry.

/// A drain-mode edge reported by [`WriteDrain::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainTransition {
    /// The write queue reached the high watermark: drain mode starts.
    Entered,
    /// The write queue shrank to the low watermark: drain mode ends.
    Exited,
}

/// Watermark-hysteresis write-drain state machine.
#[derive(Debug, Clone, Copy)]
pub struct WriteDrain {
    high: usize,
    low: usize,
    draining: bool,
}

impl WriteDrain {
    /// An engine entering drain mode at `high` queued writes and
    /// leaving it at `low`.
    pub fn new(high: usize, low: usize) -> Self {
        WriteDrain {
            high,
            low,
            draining: false,
        }
    }

    /// Whether drain mode is currently active.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Re-evaluates the hysteresis for the current write-queue depth,
    /// reporting an edge when the mode flips. Called once per
    /// scheduling step, before [`should_serve`](Self::should_serve).
    pub fn update(&mut self, depth: usize) -> Option<DrainTransition> {
        let was = self.draining;
        if depth >= self.high {
            self.draining = true;
        }
        if depth <= self.low {
            self.draining = false;
        }
        match (was, self.draining) {
            (false, true) => Some(DrainTransition::Entered),
            (true, false) => Some(DrainTransition::Exited),
            _ => None,
        }
    }

    /// Whether writes should be serviced now: always while draining,
    /// and opportunistically when no read is ready.
    pub fn should_serve(&self, depth: usize, have_ready_read: bool) -> bool {
        depth > 0 && (self.draining || !have_ready_read)
    }

    /// The drain mode [`update`](Self::update) *would* leave the engine
    /// in at `depth`, without mutating it — the time-skip engine's pure
    /// preview for computing `next_event` bounds. Replicates `update`'s
    /// enter-then-exit evaluation order exactly (so degenerate
    /// `high <= low` watermarks preview the same way they latch).
    pub fn would_drain(&self, depth: usize) -> bool {
        let mut draining = self.draining;
        if depth >= self.high {
            draining = true;
        }
        if depth <= self.low {
            draining = false;
        }
        draining
    }

    /// Pure preview of [`update`](Self::update) followed by
    /// [`should_serve`](Self::should_serve): which queue the next
    /// scheduling step will draw from, without mutating the hysteresis.
    pub fn would_serve(&self, depth: usize, have_ready_read: bool) -> bool {
        depth > 0 && (self.would_drain(depth) || !have_ready_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hysteresis_enters_high_exits_low() {
        let mut w = WriteDrain::new(4, 1);
        assert_eq!(w.update(3), None);
        assert!(!w.is_draining());
        assert_eq!(w.update(4), Some(DrainTransition::Entered));
        assert!(w.is_draining());
        // Stays in drain mode between the watermarks — no edge.
        assert_eq!(w.update(3), None);
        assert_eq!(w.update(2), None);
        assert!(w.is_draining());
        assert_eq!(w.update(1), Some(DrainTransition::Exited));
        assert!(!w.is_draining());
        assert_eq!(w.update(0), None);
    }

    #[test]
    fn serves_writes_when_draining_or_idle() {
        let mut w = WriteDrain::new(4, 1);
        // Not draining: writes only when no read is ready.
        assert!(!w.should_serve(2, true));
        assert!(w.should_serve(2, false));
        assert!(!w.should_serve(0, false), "nothing to serve");
        // Draining: writes even with ready reads.
        w.update(4);
        assert!(w.should_serve(4, true));
    }

    #[test]
    fn would_serve_previews_update_then_should_serve() {
        // Exhaustive check: for every (state, depth, ready-read) cell,
        // the pure preview equals mutate-then-ask on a scratch copy.
        for high in 1..6 {
            for low in 0..6 {
                for start in [false, true] {
                    for depth in 0..8 {
                        for ready in [false, true] {
                            let w = WriteDrain {
                                high,
                                low,
                                draining: start,
                            };
                            let mut scratch = w;
                            scratch.update(depth);
                            assert_eq!(
                                w.would_drain(depth),
                                scratch.is_draining(),
                                "would_drain high={high} low={low} start={start} depth={depth}"
                            );
                            assert_eq!(
                                w.would_serve(depth, ready),
                                scratch.should_serve(depth, ready),
                                "would_serve high={high} low={low} start={start} \
                                 depth={depth} ready={ready}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_watermarks_never_latch() {
        // high <= low: the exit check runs after the enter check, so
        // the engine can never stay latched in drain mode (matches the
        // pre-extraction controller behaviour).
        let mut w = WriteDrain::new(2, 2);
        assert_eq!(w.update(2), None);
        assert!(!w.is_draining());
        assert_eq!(w.update(3), Some(DrainTransition::Entered));
        assert_eq!(w.update(2), Some(DrainTransition::Exited));
    }
}
