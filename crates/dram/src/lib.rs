//! # gsdram-dram
//!
//! A from-scratch DDR3 DRAM timing, scheduling and energy substrate for
//! the GS-DRAM reproduction (DESIGN.md §3).
//!
//! The paper evaluates GS-DRAM on a simulated DDR3-1600 channel with one
//! rank, eight banks, an open-row policy and FR-FCFS scheduling
//! (Table 1). This crate models exactly that stack:
//!
//! * [`timing`] — JEDEC timing parameters (DDR3-1600 preset);
//! * [`bank`] — bank/rank state machines enforcing tRCD/tRP/tRAS/tCCD/
//!   tWR/tWTR/tRRD/tFAW/tRFC;
//! * [`command`] — the command-bus vocabulary, with pattern IDs riding on
//!   column commands at zero timing cost (the central property of §3.6);
//! * [`mapping`] — physical-address interleaving, structured as
//!   composable component-function stages (interleave split + optional
//!   XOR bank hash);
//! * [`sched`] — pluggable scheduling engines (FR-FCFS, FCFS, a
//!   starvation-capped FR-FCFS and a bank-round-robin batcher);
//! * [`refresh`] — the periodic-refresh schedule;
//! * [`wdrain`] — write-drain watermark hysteresis;
//! * [`controller`] — the composition shell owning queues, clocks,
//!   stats, energy and event emission;
//! * [`energy`] — a DRAMPower-style IDD energy model.
//!
//! ```
//! use gsdram_dram::controller::{AccessKind, ControllerConfig, MemController, MemRequest};
//! use gsdram_dram::mapping::AddressMap;
//! use gsdram_core::PatternId;
//!
//! let mut mc = MemController::new(ControllerConfig::default());
//! let req = MemRequest {
//!     id: 1,
//!     loc: AddressMap::table1().decompose(0x4000),
//!     pattern: PatternId(7), // a gather costs one ordinary READ
//!     kind: AccessKind::Read,
//! };
//! mc.enqueue(req, 0);
//! mc.advance(1000);
//! assert_eq!(mc.take_completions(1000).len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod command;
pub mod controller;
pub mod energy;
pub mod mapping;
pub mod refresh;
pub mod sched;
pub mod shard;
pub mod timing;
pub mod verify;
pub mod wdrain;
