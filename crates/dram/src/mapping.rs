//! Physical address to DRAM-coordinate mapping.
//!
//! The map is structured as a pipeline of *component functions* in the
//! Sudoku sense: every stage is a bijection on the line space, so the
//! composed map stays invertible by running the stages' inverses in
//! reverse order. Two stages exist today:
//!
//! 1. the interleave *split* ([`Interleave`]) — div/mod chains turning
//!    a line index into raw `(rank, bank, row, col)` coordinates;
//! 2. an optional *bank-hash* stage ([`BankHash`]) — a per-row
//!    permutation of the bank index ([`BankHash::XorRow`] XORs the low
//!    row bits into the bank, spreading row-crossing streams across
//!    banks the way commodity controllers do).
//!
//! [`AddressMap::decompose`] runs split-then-hash;
//! [`AddressMap::compose`] runs the inverses hash-then-combine (the
//! XOR stage is its own inverse). The default [`AddressMap::table1`]
//! uses no hash stage, matching the paper's Table 1 system.

use crate::command::BankId;
use gsdram_core::{cast, ColumnId, RowId};

/// Where a cache line lives in the DRAM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Cache-line column within the row.
    pub col: ColumnId,
}

/// Which coordinate consecutive cache lines walk first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// Consecutive lines fill the columns of one row before moving to
    /// the next bank (row-streaming scans enjoy row-buffer hits — the
    /// open-row-friendly mapping the paper's HTAP analysis assumes).
    ColumnFirst,
    /// Consecutive lines stripe across banks (maximises bank-level
    /// parallelism at the cost of row locality).
    BankFirst,
}

/// The optional bank-hash component function: a per-row permutation of
/// the bank index applied after the interleave split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankHash {
    /// Identity: the bank comes straight from the interleave split.
    Direct,
    /// XOR the low `log2(banks)` row bits into the bank index. Rows
    /// that would pile onto one bank under the direct map spread
    /// across banks; within a row nothing changes. Self-inverse.
    XorRow,
}

impl BankHash {
    /// Parses a stage name as accepted by the `--mapping` flag:
    /// `direct` or `xor-bank`.
    pub fn parse(s: &str) -> Option<BankHash> {
        match s {
            "direct" => Some(BankHash::Direct),
            "xor-bank" | "xorbank" | "xor" => Some(BankHash::XorRow),
            _ => None,
        }
    }

    /// Canonical label, stable across runs (used in run ids and the
    /// machine description line).
    pub fn label(&self) -> &'static str {
        match self {
            BankHash::Direct => "direct",
            BankHash::XorRow => "xor-bank",
        }
    }

    /// Applies the stage to a raw bank index for the given row. The
    /// XOR stage is an involution, so this is also the inverse.
    fn apply(&self, banks: u64, bank: u64, row: u64) -> u64 {
        match self {
            BankHash::Direct => bank,
            BankHash::XorRow => bank ^ (row & (banks - 1)),
        }
    }
}

/// Maps byte addresses to (bank, row, column) coordinates.
///
/// ```
/// use gsdram_dram::mapping::{AddressMap, Interleave};
/// let m = AddressMap::new(64, 128, 8, Interleave::ColumnFirst);
/// let a = m.decompose(0);
/// let b = m.decompose(64);
/// assert_eq!(a.bank, b.bank);
/// assert_eq!(a.row, b.row);
/// assert_eq!(b.col.0, a.col.0 + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    line_bytes: u64,
    cols_per_row: u64,
    banks: u64,
    ranks: u64,
    interleave: Interleave,
    hash: BankHash,
}

impl AddressMap {
    /// A map for lines of `line_bytes`, rows of `cols_per_row` lines and
    /// `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `line_bytes` is not a power of
    /// two.
    pub fn new(line_bytes: u64, cols_per_row: u64, banks: u64, interleave: Interleave) -> Self {
        Self::with_ranks(line_bytes, cols_per_row, banks, 1, interleave)
    }

    /// A map over `ranks` ranks: the rank index varies just above the
    /// bank bits (whichever interleave is chosen).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `line_bytes` is not a power
    /// of two.
    pub fn with_ranks(
        line_bytes: u64,
        cols_per_row: u64,
        banks: u64,
        ranks: u64,
        interleave: Interleave,
    ) -> Self {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(cols_per_row > 0 && banks > 0 && ranks > 0);
        AddressMap {
            line_bytes,
            cols_per_row,
            banks,
            ranks,
            interleave,
            hash: BankHash::Direct,
        }
    }

    /// The same map with the given bank-hash stage appended.
    ///
    /// # Panics
    ///
    /// Panics if the stage is [`BankHash::XorRow`] and the bank count
    /// is not a power of two (the XOR mask must cover exactly the bank
    /// index space to stay bijective).
    pub fn with_bank_hash(mut self, hash: BankHash) -> Self {
        assert!(
            hash == BankHash::Direct || self.banks.is_power_of_two(),
            "XOR bank hash needs a power-of-two bank count, got {}",
            self.banks
        );
        self.hash = hash;
        self
    }

    /// The Table 1 system: 64-byte lines, 8 KB rows (128 lines), 8 banks,
    /// one rank, column-first interleave.
    pub fn table1() -> Self {
        Self::new(64, 128, 8, Interleave::ColumnFirst)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// The cache-line index of a byte address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// DRAM coordinates of the cache line containing `addr`: the
    /// interleave split followed by the bank-hash stage.
    pub fn decompose(&self, addr: u64) -> DramLocation {
        let line = self.line_of(addr);
        let (rank, bank, row, col) = match self.interleave {
            Interleave::ColumnFirst => {
                let col = line % self.cols_per_row;
                let bank = (line / self.cols_per_row) % self.banks;
                let rank = (line / (self.cols_per_row * self.banks)) % self.ranks;
                let row = line / (self.cols_per_row * self.banks * self.ranks);
                (rank, bank, row, col)
            }
            Interleave::BankFirst => {
                let bank = line % self.banks;
                let rank = (line / self.banks) % self.ranks;
                let col = (line / (self.banks * self.ranks)) % self.cols_per_row;
                let row = line / (self.banks * self.ranks * self.cols_per_row);
                (rank, bank, row, col)
            }
        };
        let bank = self.hash.apply(self.banks, bank, row);
        DramLocation {
            rank: cast::to_usize(rank),
            bank: cast::to_usize(bank),
            row: RowId(cast::to_u32(row)),
            col: ColumnId(cast::to_u32(col)),
        }
    }

    /// Inverse of [`decompose`](Self::decompose): the first byte address
    /// of a location's line — the bank-hash inverse (XOR is its own)
    /// followed by the interleave combine.
    pub fn compose(&self, loc: DramLocation) -> u64 {
        let row = u64::from(loc.row.0);
        let bank = self.hash.apply(self.banks, cast::widen(loc.bank), row);
        let line = match self.interleave {
            Interleave::ColumnFirst => {
                ((row * self.ranks + cast::widen(loc.rank)) * self.banks + bank) * self.cols_per_row
                    + u64::from(loc.col.0)
            }
            Interleave::BankFirst => {
                ((row * self.cols_per_row + u64::from(loc.col.0)) * self.ranks
                    + cast::widen(loc.rank))
                    * self.banks
                    + bank
            }
        };
        line * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_first_keeps_scans_in_row() {
        let m = AddressMap::table1();
        let locs: Vec<_> = (0..128u64).map(|i| m.decompose(i * 64)).collect();
        assert!(locs.iter().all(|l| l.bank == 0 && l.row == RowId(0)));
        assert_eq!(locs[127].col, ColumnId(127));
        // Line 128 spills into the next bank, same row index.
        let next = m.decompose(128 * 64);
        assert_eq!(next.bank, 1);
        assert_eq!(next.col, ColumnId(0));
    }

    #[test]
    fn bank_first_stripes() {
        let m = AddressMap::new(64, 128, 8, Interleave::BankFirst);
        for i in 0..8u64 {
            assert_eq!(m.decompose(i * 64).bank, i as usize);
        }
        assert_eq!(m.decompose(8 * 64).bank, 0);
        assert_eq!(m.decompose(8 * 64).col, ColumnId(1));
    }

    #[test]
    fn compose_inverts_decompose() {
        for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
            let m = AddressMap::new(64, 128, 8, interleave);
            for line in [0u64, 1, 127, 128, 1023, 999_999] {
                let addr = line * 64;
                assert_eq!(m.compose(m.decompose(addr)), addr, "{interleave:?} {line}");
            }
        }
    }

    #[test]
    fn xor_bank_hash_permutes_banks_per_row() {
        let m = AddressMap::table1().with_bank_hash(BankHash::XorRow);
        // Row 0: the XOR mask is 0, identical to the direct map.
        assert_eq!(m.decompose(0), AddressMap::table1().decompose(0));
        // One full row group later (row 1), bank 0 hashes to bank 1.
        let row1 = 128 * 64 * 8; // cols * line * banks
        let direct = AddressMap::table1().decompose(row1);
        let hashed = m.decompose(row1);
        assert_eq!(direct.row, RowId(1));
        assert_eq!(direct.bank, 0);
        assert_eq!(hashed.bank, 1);
        assert_eq!((hashed.row, hashed.col), (direct.row, direct.col));
        // The stage is an involution: compose inverts decompose.
        for line in [0u64, 1, 127, 128, 1023, 999_999] {
            assert_eq!(m.compose(m.decompose(line * 64)), line * 64, "{line}");
        }
    }

    #[test]
    fn bank_hash_parse_labels() {
        for h in [BankHash::Direct, BankHash::XorRow] {
            assert_eq!(BankHash::parse(h.label()), Some(h));
        }
        assert_eq!(BankHash::parse("nonsense"), None);
    }

    #[test]
    #[should_panic(expected = "power-of-two bank count")]
    fn xor_hash_rejects_odd_bank_counts() {
        let _ =
            AddressMap::new(64, 128, 6, Interleave::ColumnFirst).with_bank_hash(BankHash::XorRow);
    }

    #[test]
    fn sub_line_addresses_share_a_location() {
        let m = AddressMap::table1();
        assert_eq!(m.decompose(64), m.decompose(65));
        assert_eq!(m.decompose(64), m.decompose(127));
        assert_ne!(m.decompose(64), m.decompose(128));
    }
}
