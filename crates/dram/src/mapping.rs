//! Physical address to DRAM-coordinate mapping.
//!
//! The map is structured as a pipeline of *component functions* in the
//! Sudoku sense: every stage is a bijection on the line space, so the
//! composed map stays invertible by running the stages' inverses in
//! reverse order. The pipeline has two kinds of stage:
//!
//! 1. the interleave *split* ([`Interleave`]) — div/mod chains turning
//!    a line index into raw `(channel, rank, bank, row, col)`
//!    coordinates;
//! 2. three XOR-matrix stages ([`XorStage`]) — one each for the
//!    channel, rank and bank index. A stage is a GF(2)-linear
//!    component function: output bit `i` of the index is the input bit
//!    XOR the parity of `row & masks[i]`. Because the row is left
//!    untouched, every stage is an involution on its own coordinate
//!    and the composed map stays bijective for *any* mask matrix.
//!
//! [`AddressMap::decompose`] runs split-then-stages;
//! [`AddressMap::compose`] runs the same stages (each is its own
//! inverse) then the interleave combine. [`MapHash`] names the
//! preset mask matrices reachable from the CLI (`--mapping`); the
//! classic controller hash `bank ^= row & (banks-1)` is the
//! [`MapHash::XorBank`] preset. The default [`AddressMap::table1`]
//! uses identity stages everywhere, matching the paper's Table 1
//! system (1 channel × 1 rank × 8 banks).

use crate::command::BankId;
use gsdram_core::{cast, ColumnId, RowId};

/// Widest XOR-stage output supported: up to 2^8 channels, ranks or
/// banks — far above any config the simulator accepts.
pub const MAX_INDEX_BITS: usize = 8;

/// Where a cache line lives in the DRAM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index within the system.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Cache-line column within the row.
    pub col: ColumnId,
}

/// Which coordinate consecutive cache lines walk first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// Consecutive lines fill the columns of one row before striping
    /// across channels, then banks (row-streaming scans enjoy
    /// row-buffer hits — the open-row-friendly mapping the paper's
    /// HTAP analysis assumes — while whole-row blocks still spread
    /// over every channel).
    ColumnFirst,
    /// Consecutive lines stripe across banks (maximises bank-level
    /// parallelism at the cost of row locality).
    BankFirst,
}

/// One XOR-matrix component function: a keyed permutation of a small
/// index (channel, rank or bank), applied after the interleave split.
///
/// Output bit `i` is `index[i] ^ parity(key & masks[i])` where the key
/// is the (unhashed) row index. The key is never modified, so the
/// stage is an involution — applying it twice with the same key is the
/// identity — and therefore bijective on the index space for every
/// mask matrix. This is the Sudoku/DReAM shape: swapping matrices
/// swaps mappings without touching the split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorStage {
    bits: u32,
    masks: [u64; MAX_INDEX_BITS],
}

impl XorStage {
    /// The identity stage over a `bits`-wide index (all masks zero).
    pub fn identity(bits: u32) -> Self {
        Self::from_masks(bits, &[])
    }

    /// The classic controller hash: XOR the low `bits` key bits into
    /// the index (`masks[i] = 1 << i`), i.e. `index ^ (key & mask)`.
    pub fn low_bits(bits: u32) -> Self {
        Self::shifted(bits, 0)
    }

    /// Like [`low_bits`](Self::low_bits) but reading the key window
    /// starting at bit `shift`: `masks[i] = 1 << (shift + i)`. Used to
    /// give the channel, rank and bank stages disjoint row bit-fields.
    pub fn shifted(bits: u32, shift: u32) -> Self {
        let mut masks = [0u64; MAX_INDEX_BITS];
        for (i, m) in masks.iter_mut().enumerate().take(cast::index(bits)) {
            let b = shift + cast::len_to_u32(i);
            if b < u64::BITS {
                *m = 1 << b;
            }
        }
        Self::from_masks(bits, &masks[..cast::index(bits)])
    }

    /// The Sudoku-style fold: chop the whole 64-bit key into
    /// `bits`-wide chunks and XOR them all into the index, so *every*
    /// key bit disturbs the permutation (`masks[i]` selects key bits
    /// `i, i+bits, i+2*bits, …`).
    pub fn fold(bits: u32) -> Self {
        let mut masks = [0u64; MAX_INDEX_BITS];
        for (i, m) in masks.iter_mut().enumerate().take(cast::index(bits)) {
            let mut b = cast::len_to_u32(i);
            while b < u64::BITS {
                *m |= 1 << b;
                b += bits;
            }
        }
        Self::from_masks(bits, &masks[..cast::index(bits)])
    }

    /// A stage from an explicit mask matrix (`masks[i]` keys output
    /// bit `i`; missing rows are zero).
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds [`MAX_INDEX_BITS`] or more than `bits`
    /// masks are given.
    pub fn from_masks(bits: u32, rows: &[u64]) -> Self {
        assert!(
            cast::index(bits) <= MAX_INDEX_BITS,
            "XOR stage supports at most {MAX_INDEX_BITS} index bits, got {bits}"
        );
        assert!(rows.len() <= cast::index(bits));
        let mut masks = [0u64; MAX_INDEX_BITS];
        masks[..rows.len()].copy_from_slice(rows);
        XorStage { bits, masks }
    }

    /// True when every mask is zero (the stage is a no-op).
    pub fn is_identity(&self) -> bool {
        self.masks.iter().all(|&m| m == 0)
    }

    /// Applies the stage: `index` XOR the mask-parity column keyed on
    /// `key`. An involution in `index`, hence its own inverse.
    pub fn apply(&self, index: u64, key: u64) -> u64 {
        let mut out = index;
        for (i, &mask) in self.masks.iter().enumerate().take(cast::index(self.bits)) {
            out ^= u64::from((key & mask).count_ones() & 1) << cast::len_to_u32(i);
        }
        out
    }
}

/// Preset XOR-matrix pipelines selectable via `--mapping`. Each
/// variant names which coordinate stages are non-identity; the row
/// bit-fields feeding the three stages are disjoint (bank reads the
/// low row bits, rank the next field, channel the one above), so the
/// presets compose freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapHash {
    /// Identity everywhere: coordinates come straight from the split.
    Direct,
    /// XOR the low `log2(banks)` row bits into the bank index. Rows
    /// that would pile onto one bank under the direct map spread
    /// across banks; within a row nothing changes. Self-inverse.
    XorBank,
    /// XOR a row bit-field into the rank index (row-crossing streams
    /// alternate ranks, hiding tRTRS behind rank parallelism).
    XorRank,
    /// XOR a row bit-field into the channel index (row-crossing
    /// streams alternate channels).
    XorChannel,
    /// All three stages at once, each on its own row bit-field.
    XorAll,
}

impl MapHash {
    /// Every preset with its CLI label and a one-line note, in
    /// listing order.
    pub const VARIANTS: [(MapHash, &'static str, &'static str); 5] = [
        (
            MapHash::Direct,
            "direct",
            "identity stages (Table 1 default)",
        ),
        (
            MapHash::XorBank,
            "xor-bank",
            "low row bits XOR into the bank",
        ),
        (
            MapHash::XorRank,
            "xor-rank",
            "row bit-field XOR into the rank",
        ),
        (
            MapHash::XorChannel,
            "xor-channel",
            "row bit-field XOR into the channel",
        ),
        (MapHash::XorAll, "xor-all", "bank + rank + channel stages"),
    ];

    /// Parses a preset name as accepted by the `--mapping` flag.
    pub fn parse(s: &str) -> Option<MapHash> {
        match s {
            "direct" => Some(MapHash::Direct),
            "xor-bank" | "xorbank" | "xor" => Some(MapHash::XorBank),
            "xor-rank" | "xorrank" => Some(MapHash::XorRank),
            "xor-channel" | "xorchannel" => Some(MapHash::XorChannel),
            "xor-all" | "xorall" => Some(MapHash::XorAll),
            _ => None,
        }
    }

    /// Canonical label, stable across runs (used in run ids and the
    /// machine description line).
    pub fn label(&self) -> &'static str {
        match self {
            MapHash::Direct => "direct",
            MapHash::XorBank => "xor-bank",
            MapHash::XorRank => "xor-rank",
            MapHash::XorChannel => "xor-channel",
            MapHash::XorAll => "xor-all",
        }
    }
}

/// Number of index bits for a power-of-two coordinate count.
fn index_bits(count: u64) -> u32 {
    count.trailing_zeros()
}

/// Maps byte addresses to (channel, rank, bank, row, column)
/// coordinates.
///
/// ```
/// use gsdram_dram::mapping::{AddressMap, Interleave};
/// let m = AddressMap::new(64, 128, 8, Interleave::ColumnFirst);
/// let a = m.decompose(0);
/// let b = m.decompose(64);
/// assert_eq!(a.bank, b.bank);
/// assert_eq!(a.row, b.row);
/// assert_eq!(b.col.0, a.col.0 + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    line_bytes: u64,
    cols_per_row: u64,
    banks: u64,
    ranks: u64,
    channels: u64,
    interleave: Interleave,
    channel_stage: XorStage,
    rank_stage: XorStage,
    bank_stage: XorStage,
}

impl AddressMap {
    /// A map for lines of `line_bytes`, rows of `cols_per_row` lines and
    /// `banks` banks (one rank, one channel).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `line_bytes` is not a power of
    /// two.
    pub fn new(line_bytes: u64, cols_per_row: u64, banks: u64, interleave: Interleave) -> Self {
        Self::with_shape(line_bytes, cols_per_row, banks, 1, 1, interleave)
    }

    /// A map over `ranks` ranks: the rank index varies just above the
    /// bank bits (whichever interleave is chosen).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `line_bytes` is not a power
    /// of two.
    pub fn with_ranks(
        line_bytes: u64,
        cols_per_row: u64,
        banks: u64,
        ranks: u64,
        interleave: Interleave,
    ) -> Self {
        Self::with_shape(line_bytes, cols_per_row, banks, ranks, 1, interleave)
    }

    /// The full geometry: `channels` channels of `ranks` ranks of
    /// `banks` banks. Under [`Interleave::ColumnFirst`] the channel
    /// index varies just above the column bits — consecutive DRAM-row
    /// blocks stripe round-robin over channels, so single-channel maps
    /// are bit-identical to the pre-channel mapping.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `line_bytes` is not a power
    /// of two.
    pub fn with_shape(
        line_bytes: u64,
        cols_per_row: u64,
        banks: u64,
        ranks: u64,
        channels: u64,
        interleave: Interleave,
    ) -> Self {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(cols_per_row > 0 && banks > 0 && ranks > 0 && channels > 0);
        AddressMap {
            line_bytes,
            cols_per_row,
            banks,
            ranks,
            channels,
            interleave,
            channel_stage: XorStage::identity(0),
            rank_stage: XorStage::identity(0),
            bank_stage: XorStage::identity(0),
        }
    }

    /// The same map with the given preset XOR stages appended. The
    /// bank stage reads row bits `[0, log2(banks))`, the rank stage
    /// the next `log2(ranks)` bits, the channel stage the
    /// `log2(channels)` above those — disjoint key fields, so
    /// [`MapHash::XorAll`] decorrelates all three coordinates.
    ///
    /// # Panics
    ///
    /// Panics if a requested stage's coordinate count is not a power
    /// of two (the XOR mask must cover exactly the index space to stay
    /// bijective).
    pub fn with_hash(mut self, hash: MapHash) -> Self {
        let (want_bank, want_rank, want_channel) = match hash {
            MapHash::Direct => (false, false, false),
            MapHash::XorBank => (true, false, false),
            MapHash::XorRank => (false, true, false),
            MapHash::XorChannel => (false, false, true),
            MapHash::XorAll => (true, true, true),
        };
        assert!(
            !want_bank || self.banks.is_power_of_two(),
            "XOR bank stage needs a power-of-two bank count, got {}",
            self.banks
        );
        assert!(
            !want_rank || self.ranks.is_power_of_two(),
            "XOR rank stage needs a power-of-two rank count, got {}",
            self.ranks
        );
        assert!(
            !want_channel || self.channels.is_power_of_two(),
            "XOR channel stage needs a power-of-two channel count, got {}",
            self.channels
        );
        let bank_bits = index_bits(self.banks);
        let rank_bits = index_bits(self.ranks);
        let channel_bits = index_bits(self.channels);
        // Identity stages stay `identity(0)` so a `Direct` hash leaves
        // the map equal to one that never saw `with_hash` at all.
        if want_bank {
            self.bank_stage = XorStage::low_bits(bank_bits);
        }
        if want_rank {
            self.rank_stage = XorStage::shifted(rank_bits, bank_bits);
        }
        if want_channel {
            self.channel_stage = XorStage::shifted(channel_bits, bank_bits + rank_bits);
        }
        self
    }

    /// The same map with explicit per-coordinate stages — the DReAM
    /// hook: any mask matrices keep the map bijective, so runtime
    /// remapping only needs to swap stages.
    ///
    /// # Panics
    ///
    /// Panics if a non-identity stage's coordinate count is not a
    /// power of two.
    pub fn with_stages(mut self, channel: XorStage, rank: XorStage, bank: XorStage) -> Self {
        assert!(
            bank.is_identity() || self.banks.is_power_of_two(),
            "XOR bank stage needs a power-of-two bank count, got {}",
            self.banks
        );
        assert!(
            rank.is_identity() || self.ranks.is_power_of_two(),
            "XOR rank stage needs a power-of-two rank count, got {}",
            self.ranks
        );
        assert!(
            channel.is_identity() || self.channels.is_power_of_two(),
            "XOR channel stage needs a power-of-two channel count, got {}",
            self.channels
        );
        self.channel_stage = channel;
        self.rank_stage = rank;
        self.bank_stage = bank;
        self
    }

    /// The Table 1 system: 64-byte lines, 8 KB rows (128 lines), 8 banks,
    /// one rank, one channel, column-first interleave, identity stages.
    pub fn table1() -> Self {
        Self::new(64, 128, 8, Interleave::ColumnFirst)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Channel count.
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// The cache-line index of a byte address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// The raw interleave split, before any XOR stage: line index to
    /// `(channel, rank, bank, row, col)`.
    fn split(&self, line: u64) -> (u64, u64, u64, u64, u64) {
        match self.interleave {
            Interleave::ColumnFirst => {
                let col = line % self.cols_per_row;
                let rest = line / self.cols_per_row;
                let channel = rest % self.channels;
                let rest = rest / self.channels;
                let bank = rest % self.banks;
                let rest = rest / self.banks;
                let rank = rest % self.ranks;
                let row = rest / self.ranks;
                (channel, rank, bank, row, col)
            }
            Interleave::BankFirst => {
                let bank = line % self.banks;
                let rest = line / self.banks;
                let rank = rest % self.ranks;
                let rest = rest / self.ranks;
                let channel = rest % self.channels;
                let rest = rest / self.channels;
                let col = rest % self.cols_per_row;
                let row = rest / self.cols_per_row;
                (channel, rank, bank, row, col)
            }
        }
    }

    /// Inverse of [`split`](Self::split): coordinates back to the line
    /// index.
    fn combine(&self, channel: u64, rank: u64, bank: u64, row: u64, col: u64) -> u64 {
        match self.interleave {
            Interleave::ColumnFirst => {
                (((row * self.ranks + rank) * self.banks + bank) * self.channels + channel)
                    * self.cols_per_row
                    + col
            }
            Interleave::BankFirst => {
                (((row * self.cols_per_row + col) * self.channels + channel) * self.ranks + rank)
                    * self.banks
                    + bank
            }
        }
    }

    /// DRAM coordinates of the cache line containing `addr`: the
    /// interleave split followed by the three XOR stages, each keyed
    /// on the raw row index.
    pub fn decompose(&self, addr: u64) -> DramLocation {
        let line = self.line_of(addr);
        let (channel, rank, bank, row, col) = self.split(line);
        let channel = self.channel_stage.apply(channel, row);
        let rank = self.rank_stage.apply(rank, row);
        let bank = self.bank_stage.apply(bank, row);
        DramLocation {
            channel: cast::to_usize(channel),
            rank: cast::to_usize(rank),
            bank: cast::to_usize(bank),
            row: RowId(cast::to_u32(row)),
            col: ColumnId(cast::to_u32(col)),
        }
    }

    /// Inverse of [`decompose`](Self::decompose): the first byte address
    /// of a location's line — the XOR stages again (each is its own
    /// inverse) followed by the interleave combine.
    pub fn compose(&self, loc: DramLocation) -> u64 {
        let row = u64::from(loc.row.0);
        let channel = self.channel_stage.apply(cast::widen(loc.channel), row);
        let rank = self.rank_stage.apply(cast::widen(loc.rank), row);
        let bank = self.bank_stage.apply(cast::widen(loc.bank), row);
        let line = self.combine(channel, rank, bank, row, u64::from(loc.col.0));
        line * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_first_keeps_scans_in_row() {
        let m = AddressMap::table1();
        let locs: Vec<_> = (0..128u64).map(|i| m.decompose(i * 64)).collect();
        assert!(locs.iter().all(|l| l.bank == 0 && l.row == RowId(0)));
        assert_eq!(locs[127].col, ColumnId(127));
        // Line 128 spills into the next bank, same row index.
        let next = m.decompose(128 * 64);
        assert_eq!(next.bank, 1);
        assert_eq!(next.col, ColumnId(0));
    }

    #[test]
    fn bank_first_stripes() {
        let m = AddressMap::new(64, 128, 8, Interleave::BankFirst);
        for i in 0..8u64 {
            assert_eq!(m.decompose(i * 64).bank, i as usize);
        }
        assert_eq!(m.decompose(8 * 64).bank, 0);
        assert_eq!(m.decompose(8 * 64).col, ColumnId(1));
    }

    #[test]
    fn channels_split_at_row_granularity() {
        // Under ColumnFirst the channel bit sits just above the
        // column bits: whole DRAM-row blocks alternate channels, and
        // the per-channel coordinates match a channel-less map over
        // the surviving row blocks.
        let m = AddressMap::with_shape(64, 128, 8, 1, 2, Interleave::ColumnFirst);
        let one = AddressMap::table1();
        let row_bytes = 128 * 64;
        for blk in 0..16u64 {
            for off in [0u64, 64, 4032] {
                let a = blk * row_bytes + off;
                let loc = m.decompose(a);
                assert_eq!(loc.channel, cast::to_usize(blk % 2), "addr {a}");
                let local = one.decompose((blk / 2) * row_bytes + off);
                assert_eq!(
                    (loc.rank, loc.bank, loc.row, loc.col),
                    (local.rank, local.bank, local.row, local.col),
                    "addr {a}"
                );
            }
        }
    }

    #[test]
    fn single_channel_matches_channel_less_map() {
        let with = AddressMap::with_shape(64, 128, 8, 2, 1, Interleave::ColumnFirst);
        let without = AddressMap::with_ranks(64, 128, 8, 2, Interleave::ColumnFirst);
        for line in [0u64, 1, 127, 128, 1023, 999_999] {
            let a = with.decompose(line * 64);
            let b = without.decompose(line * 64);
            assert_eq!(a.channel, 0);
            assert_eq!(
                (a.rank, a.bank, a.row, a.col),
                (b.rank, b.bank, b.row, b.col),
                "{line}"
            );
        }
    }

    #[test]
    fn compose_inverts_decompose() {
        for interleave in [Interleave::ColumnFirst, Interleave::BankFirst] {
            let m = AddressMap::with_shape(64, 128, 8, 2, 4, interleave);
            for line in [0u64, 1, 127, 128, 1023, 999_999] {
                let addr = line * 64;
                assert_eq!(m.compose(m.decompose(addr)), addr, "{interleave:?} {line}");
            }
        }
    }

    #[test]
    fn xor_bank_hash_permutes_banks_per_row() {
        let m = AddressMap::table1().with_hash(MapHash::XorBank);
        // Row 0: the XOR mask is 0, identical to the direct map.
        assert_eq!(m.decompose(0), AddressMap::table1().decompose(0));
        // One full row group later (row 1), bank 0 hashes to bank 1.
        let row1 = 128 * 64 * 8; // cols * line * banks
        let direct = AddressMap::table1().decompose(row1);
        let hashed = m.decompose(row1);
        assert_eq!(direct.row, RowId(1));
        assert_eq!(direct.bank, 0);
        assert_eq!(hashed.bank, 1);
        assert_eq!((hashed.row, hashed.col), (direct.row, direct.col));
        // The stage is an involution: compose inverts decompose.
        for line in [0u64, 1, 127, 128, 1023, 999_999] {
            assert_eq!(m.compose(m.decompose(line * 64)), line * 64, "{line}");
        }
    }

    #[test]
    fn xor_stage_constructors_are_involutions() {
        let stages = [
            XorStage::identity(3),
            XorStage::low_bits(3),
            XorStage::shifted(3, 5),
            XorStage::fold(3),
            XorStage::from_masks(3, &[0b101, 0b1, 0b11010]),
        ];
        for (si, s) in stages.iter().enumerate() {
            for key in [0u64, 1, 5, 0xDEAD_BEEF, u64::MAX] {
                for idx in 0..8u64 {
                    assert_eq!(s.apply(s.apply(idx, key), key), idx, "stage {si} key {key}");
                    assert!(s.apply(idx, key) < 8, "stage {si} stays in range");
                }
            }
        }
        assert!(XorStage::identity(3).is_identity());
        assert!(!XorStage::low_bits(3).is_identity());
    }

    #[test]
    fn fold_uses_high_key_bits() {
        // The fold stage reacts to key bits far above the low field
        // the classic hash reads.
        let fold = XorStage::fold(3);
        let low = XorStage::low_bits(3);
        let high_key = 1u64 << 40;
        assert_eq!(low.apply(0, high_key), 0);
        assert_ne!(fold.apply(0, high_key), 0);
    }

    #[test]
    fn map_hash_parse_labels() {
        for (h, label, _) in MapHash::VARIANTS {
            assert_eq!(MapHash::parse(label), Some(h));
            assert_eq!(h.label(), label);
        }
        assert_eq!(MapHash::parse("nonsense"), None);
    }

    #[test]
    #[should_panic(expected = "power-of-two bank count")]
    fn xor_hash_rejects_odd_bank_counts() {
        let _ = AddressMap::new(64, 128, 6, Interleave::ColumnFirst).with_hash(MapHash::XorBank);
    }

    #[test]
    #[should_panic(expected = "power-of-two channel count")]
    fn xor_channel_rejects_odd_channel_counts() {
        let _ = AddressMap::with_shape(64, 128, 8, 1, 3, Interleave::ColumnFirst)
            .with_hash(MapHash::XorChannel);
    }

    #[test]
    fn sub_line_addresses_share_a_location() {
        let m = AddressMap::table1();
        assert_eq!(m.decompose(64), m.decompose(65));
        assert_eq!(m.decompose(64), m.decompose(127));
        assert_ne!(m.decompose(64), m.decompose(128));
    }
}
