//! Bank and rank state machines enforcing DDR3 timing constraints.
//!
//! The model follows the abstraction of paper §2: each bank is a grid of
//! rows plus a row buffer caching the last activated row. Commands are
//! legal only after their JEDEC-mandated delays; [`Rank::earliest`]
//! computes the first legal issue cycle for a command and
//! [`Rank::issue`] applies it.
//!
//! Per-bank state lives in a [`BankSet`] — parallel `open_row` /
//! `ready_*` arrays (struct-of-arrays) rather than an array of bank
//! structs, so the controller's FR-FCFS candidate scan and the
//! time-skip engine's next-event min-fold sweep flat, branch-light
//! arrays instead of striding over interleaved fields.

use crate::command::{BankId, DramCommand};
use crate::timing::{Cycles, TimingParams};
use gsdram_core::RowId;

/// Never-issued sentinel: commands constrained by this are immediately
/// legal.
const NEVER: Cycles = 0;

/// Per-bank timing state for one rank, stored as parallel arrays.
///
/// Index `b` of each array describes bank `b`: the row its buffer holds
/// (if any) and the earliest cycle each command class may issue there.
#[derive(Debug, Clone)]
pub struct BankSet {
    /// The row each bank's row buffer holds, `None` when precharged.
    open_row: Vec<Option<RowId>>,
    /// Earliest cycle an ACTIVATE to each bank may issue.
    ready_act: Vec<Cycles>,
    /// Earliest cycle a PRECHARGE to each bank may issue.
    ready_pre: Vec<Cycles>,
    /// Earliest cycle a column command to each bank may issue
    /// (tRCD after the activate).
    ready_col: Vec<Cycles>,
}

impl BankSet {
    fn new(banks: usize) -> Self {
        BankSet {
            open_row: vec![None; banks],
            ready_act: vec![NEVER; banks],
            ready_pre: vec![NEVER; banks],
            ready_col: vec![NEVER; banks],
        }
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// Whether the set holds no banks.
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// The row open in `bank`, if any.
    pub fn open_row(&self, bank: BankId) -> Option<RowId> {
        self.open_row[bank]
    }

    /// Whether any bank has an open row — a flat sweep of the
    /// `open_row` array.
    pub fn any_open(&self) -> bool {
        self.open_row.iter().any(Option::is_some)
    }

    /// Banks with an open row, front to back, without allocating.
    pub fn open_banks(&self) -> impl Iterator<Item = BankId> + '_ {
        self.open_row
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|_| i))
    }

    /// The latest `ready_act` bound across all banks (the all-bank
    /// refresh constraint) — a flat max-fold.
    fn act_ready_all(&self) -> Cycles {
        self.ready_act.iter().copied().fold(NEVER, Cycles::max)
    }
}

/// Classification of an access against the bank's row-buffer state —
/// determines its latency class (hit < closed < conflict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferState {
    /// The needed row is open: column command may issue directly.
    Hit,
    /// The bank is precharged: needs ACTIVATE first.
    Closed,
    /// A different row is open: needs PRECHARGE, then ACTIVATE.
    Conflict,
}

/// A rank of banks sharing command/address/data buses and rank-level
/// constraints (tRRD, tFAW, bus turnaround, refresh).
#[derive(Debug, Clone)]
pub struct Rank {
    timing: TimingParams,
    banks: BankSet,
    /// Issue times of the most recent ACTIVATEs (for tFAW).
    recent_acts: Vec<Cycles>,
    /// Earliest next ACTIVATE anywhere in the rank (tRRD).
    earliest_act_rank: Cycles,
    /// Earliest next READ issue (tCCD / write-to-read turnaround).
    earliest_read: Cycles,
    /// Earliest next WRITE issue (tCCD / read-to-write turnaround).
    earliest_write: Cycles,
    /// Command bus: one command per cycle.
    earliest_cmd: Cycles,
}

impl Rank {
    /// A rank with `banks` banks and the given timing.
    pub fn new(timing: TimingParams, banks: usize) -> Self {
        Rank {
            timing,
            banks: BankSet::new(banks),
            recent_acts: Vec::new(),
            earliest_act_rank: NEVER,
            earliest_read: NEVER,
            earliest_write: NEVER,
            earliest_cmd: NEVER,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Timing parameters in force.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Row-buffer state of `bank` with respect to `row`.
    pub fn row_state(&self, bank: BankId, row: RowId) -> RowBufferState {
        match self.banks.open_row[bank] {
            Some(r) if r == row => RowBufferState::Hit,
            Some(_) => RowBufferState::Conflict,
            None => RowBufferState::Closed,
        }
    }

    /// The open row of `bank`.
    pub fn open_row(&self, bank: BankId) -> Option<RowId> {
        self.banks.open_row[bank]
    }

    /// Earliest cycle at which `cmd` may legally issue, not before `now`.
    pub fn earliest(&self, cmd: &DramCommand, now: Cycles) -> Cycles {
        let t = match cmd {
            DramCommand::Activate { bank, .. } => {
                let mut t = self.banks.ready_act[*bank].max(self.earliest_act_rank);
                // tFAW: the 4th-most-recent ACT constrains the next one.
                if self.recent_acts.len() >= 4 {
                    let window_start = self.recent_acts[self.recent_acts.len() - 4];
                    t = t.max(window_start + self.timing.faw);
                }
                t
            }
            DramCommand::Precharge { bank } => self.banks.ready_pre[*bank],
            DramCommand::Read { bank, .. } => self.banks.ready_col[*bank].max(self.earliest_read),
            DramCommand::Write { bank, .. } => self.banks.ready_col[*bank].max(self.earliest_write),
            DramCommand::Refresh => {
                // All banks must be precharged and past tRP.
                debug_assert!(!self.banks.any_open(), "refresh with open row");
                self.banks.act_ready_all()
            }
        };
        t.max(now).max(self.earliest_cmd)
    }

    /// Issues `cmd` at cycle `at`, updating all affected state.
    ///
    /// For column commands, returns the cycle the data burst completes
    /// (the request's service time); `None` otherwise.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` precedes [`Rank::earliest`] or the
    /// command is illegal in the current row-buffer state — the
    /// controller must never emit such a command.
    pub fn issue(&mut self, cmd: &DramCommand, at: Cycles) -> Option<Cycles> {
        debug_assert!(
            at >= self.earliest(cmd, at),
            "command {cmd:?} issued at {at} before legal time {}",
            self.earliest(cmd, at)
        );
        let t = &self.timing;
        let b = &mut self.banks;
        let done = match *cmd {
            DramCommand::Activate { bank, row } => {
                debug_assert!(b.open_row[bank].is_none(), "activate with row already open");
                b.open_row[bank] = Some(row);
                b.ready_col[bank] = at + t.rcd;
                b.ready_pre[bank] = at + t.ras;
                b.ready_act[bank] = at + t.rc;
                self.earliest_act_rank = self.earliest_act_rank.max(at + t.rrd);
                self.recent_acts.push(at);
                if self.recent_acts.len() > 8 {
                    self.recent_acts.drain(..4);
                }
                None
            }
            DramCommand::Precharge { bank } => {
                debug_assert!(b.open_row[bank].is_some(), "precharge with no open row");
                b.open_row[bank] = None;
                b.ready_act[bank] = b.ready_act[bank].max(at + t.rp);
                None
            }
            DramCommand::Read { bank, .. } => {
                let data_end = at + t.cl + t.burst;
                debug_assert!(b.open_row[bank].is_some(), "read with no open row");
                b.ready_pre[bank] = b.ready_pre[bank].max(at + t.rtp);
                // Next column commands: tCCD between reads; a write's data
                // must clear the read burst plus turnaround.
                self.earliest_read = self.earliest_read.max(at + t.ccd);
                self.earliest_write = self
                    .earliest_write
                    .max((data_end + t.rtw).saturating_sub(t.cwl))
                    .max(at + t.ccd);
                Some(data_end)
            }
            DramCommand::Write { bank, .. } => {
                let data_end = at + t.cwl + t.burst;
                debug_assert!(b.open_row[bank].is_some(), "write with no open row");
                b.ready_pre[bank] = b.ready_pre[bank].max(data_end + t.wr);
                self.earliest_write = self.earliest_write.max(at + t.ccd);
                self.earliest_read = self.earliest_read.max(data_end + t.wtr).max(at + t.ccd);
                Some(data_end)
            }
            DramCommand::Refresh => {
                debug_assert!(!b.any_open(), "refresh with open row");
                let ready = at + t.rfc;
                for r in &mut b.ready_act {
                    *r = (*r).max(ready);
                }
                self.earliest_act_rank = self.earliest_act_rank.max(ready);
                None
            }
        };
        // One command per command-bus cycle.
        self.earliest_cmd = self.earliest_cmd.max(at + 1);
        done
    }

    /// Whether any bank has an open row (for background-energy
    /// apportioning).
    pub fn any_bank_active(&self) -> bool {
        self.banks.any_open()
    }

    /// Banks with an open row, for refresh preparation — an iterator
    /// over the flat `open_row` array, no allocation.
    pub fn open_banks(&self) -> impl Iterator<Item = BankId> + '_ {
        self.banks.open_banks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_core::{ColumnId, PatternId};

    fn rank() -> Rank {
        Rank::new(TimingParams::ddr3_1600(), 8)
    }

    fn act(bank: BankId, row: u32) -> DramCommand {
        DramCommand::Activate {
            bank,
            row: RowId(row),
        }
    }

    fn read(bank: BankId, col: u32) -> DramCommand {
        DramCommand::Read {
            bank,
            col: ColumnId(col),
            pattern: PatternId(0),
        }
    }

    fn write(bank: BankId, col: u32) -> DramCommand {
        DramCommand::Write {
            bank,
            col: ColumnId(col),
            pattern: PatternId(0),
        }
    }

    #[test]
    fn activate_then_read_honours_trcd() {
        let mut r = rank();
        r.issue(&act(0, 5), 0);
        assert_eq!(r.row_state(0, RowId(5)), RowBufferState::Hit);
        assert_eq!(r.row_state(0, RowId(6)), RowBufferState::Conflict);
        assert_eq!(r.row_state(1, RowId(5)), RowBufferState::Closed);
        let e = r.earliest(&read(0, 3), 0);
        assert_eq!(e, TimingParams::ddr3_1600().rcd);
        let done = r.issue(&read(0, 3), e).unwrap();
        assert_eq!(done, e + 11 + 4); // CL + burst
    }

    #[test]
    fn back_to_back_reads_spaced_by_tccd() {
        let mut r = rank();
        r.issue(&act(0, 1), 0);
        let t0 = r.earliest(&read(0, 0), 0);
        r.issue(&read(0, 0), t0);
        let t1 = r.earliest(&read(0, 1), t0);
        assert_eq!(t1, t0 + TimingParams::ddr3_1600().ccd);
    }

    #[test]
    fn precharge_waits_for_tras() {
        let mut r = rank();
        r.issue(&act(0, 1), 10);
        let e = r.earliest(&DramCommand::Precharge { bank: 0 }, 10);
        assert_eq!(e, 10 + TimingParams::ddr3_1600().ras);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut r = rank();
        let t = TimingParams::ddr3_1600();
        r.issue(&act(0, 1), 0);
        let tw = r.earliest(&write(0, 0), 0);
        r.issue(&write(0, 0), tw);
        let e = r.earliest(&DramCommand::Precharge { bank: 0 }, tw);
        assert_eq!(e, tw + t.cwl + t.burst + t.wr);
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut r = rank();
        let t = TimingParams::ddr3_1600();
        r.issue(&act(0, 1), 0);
        let tw = r.earliest(&write(0, 0), 0);
        r.issue(&write(0, 0), tw);
        let e = r.earliest(&read(0, 1), tw);
        assert_eq!(e, tw + t.cwl + t.burst + t.wtr);
    }

    #[test]
    fn trrd_spaces_cross_bank_activates() {
        let mut r = rank();
        let t = TimingParams::ddr3_1600();
        r.issue(&act(0, 1), 0);
        let e = r.earliest(&act(1, 1), 0);
        assert_eq!(e, t.rrd);
    }

    #[test]
    fn tfaw_limits_activation_rate() {
        let mut r = rank();
        let t = TimingParams::ddr3_1600();
        let mut at = 0;
        for b in 0..4 {
            at = r.earliest(&act(b, 1), at);
            r.issue(&act(b, 1), at);
        }
        // The 5th ACT must wait for the 4-activate window to slide.
        let e = r.earliest(&act(4, 1), at);
        assert!(e >= t.faw, "5th activate at {e} inside tFAW {}", t.faw);
    }

    #[test]
    fn same_bank_activate_honours_trc() {
        let mut r = rank();
        let t = TimingParams::ddr3_1600();
        r.issue(&act(0, 1), 0);
        let p = r.earliest(&DramCommand::Precharge { bank: 0 }, 0);
        r.issue(&DramCommand::Precharge { bank: 0 }, p);
        let e = r.earliest(&act(0, 2), p);
        // Either tRC from the ACT or tRP from the PRE, whichever is later.
        assert_eq!(e, (p + t.rp).max(t.rc));
    }

    #[test]
    fn refresh_blocks_all_banks() {
        let mut r = rank();
        let t = TimingParams::ddr3_1600();
        let e = r.earliest(&DramCommand::Refresh, 100);
        assert_eq!(e, 100);
        r.issue(&DramCommand::Refresh, 100);
        for b in 0..8 {
            assert!(r.earliest(&act(b, 0), 100) >= 100 + t.rfc);
        }
    }

    #[test]
    fn command_bus_one_command_per_cycle() {
        let mut r = rank();
        r.issue(&act(0, 1), 0);
        assert!(r.earliest(&act(1, 1), 0) >= 1);
    }

    #[test]
    fn open_banks_listing() {
        let mut r = rank();
        assert_eq!(r.open_banks().count(), 0);
        assert!(!r.any_bank_active());
        r.issue(&act(2, 1), 0);
        let e = r.earliest(&act(5, 3), 0);
        r.issue(&act(5, 3), e);
        assert_eq!(r.open_banks().collect::<Vec<_>>(), vec![2, 5]);
        assert!(r.any_bank_active());
    }
}
