//! The memory controller: request queues, FR-FCFS scheduling, write
//! draining and refresh.
//!
//! The paper's evaluated controller (Table 1) uses an open-row policy
//! with FR-FCFS scheduling [39, 56]: among pending requests, column
//! commands that hit the open row go first, then oldest-first. That
//! policy is what produces the HTAP inter-thread starvation the paper
//! analyses in §5.1 — a streaming thread's row hits starve a random
//! thread's row conflicts on the same bank.
//!
//! The implementation is event-driven: instead of ticking every memory
//! cycle, it computes the earliest legal issue time of the best
//! candidate command and jumps there, which keeps multi-billion-cycle
//! simulations fast while enforcing exact DDR3 timing via
//! [`crate::bank::Rank`]-level state machines.
//!
//! [`MemController`] itself is a *composition shell*: command selection
//! is delegated to a [`crate::sched::Scheduler`] engine, the refresh
//! schedule to [`crate::refresh::RefreshTimer`] and the write-drain
//! hysteresis to [`crate::wdrain::WriteDrain`]. The shell owns what the
//! engines must not: queues, clocks, rank state, statistics, energy and
//! event emission.

use crate::bank::{Rank, RowBufferState};
use crate::command::DramCommand;
use crate::energy::{EnergyMeter, PowerParams};
use crate::mapping::DramLocation;
use crate::refresh::RefreshTimer;
use crate::sched::{Candidate, QueueView, Retired, Scheduler};
use crate::timing::{Cycles, TimingParams};
use crate::wdrain::{DrainTransition, WriteDrain};
use gsdram_core::port::{DramCmdKind, EventHub, RowOutcome, SchedDecisionKind, SimEvent};
use gsdram_core::stats::{ReportStats, StatsNode};
use gsdram_core::time::{Horizon, TimeFold};
use gsdram_core::PatternId;
use gsdram_telemetry::Histogram;

pub use crate::sched::SchedPolicy;

/// Unique request identifier assigned by the caller.
pub type ReqId = u64;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read request (demand load, fetch or prefetch).
    Read,
    /// A write request (dirty writeback).
    Write,
}

/// A memory request presented to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier, echoed in the completion.
    pub id: ReqId,
    /// DRAM coordinates of the line.
    pub loc: DramLocation,
    /// GS-DRAM pattern for the column command.
    pub pattern: PatternId,
    /// Read or write.
    pub kind: AccessKind,
}

/// A finished request: `id` completed its data burst at cycle `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's identifier.
    pub id: ReqId,
    /// Memory cycle the data burst finished.
    pub at: Cycles,
}

/// Row-buffer management policy (Table 1 uses open-row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowPolicy {
    /// Leave rows open after column commands (bet on row locality).
    Open,
    /// Close a row once no queued request hits it (bet against
    /// locality: random traffic saves the conflict precharge).
    Closed,
}

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// DDR timing parameters.
    pub timing: TimingParams,
    /// Device power parameters.
    pub power: PowerParams,
    /// Number of banks per rank.
    pub banks: usize,
    /// Number of ranks on the channel (sharing command and data buses).
    pub ranks: usize,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Write queue occupancy that forces draining.
    pub write_high_watermark: usize,
    /// Draining stops once the write queue shrinks to this.
    pub write_low_watermark: usize,
    /// Whether periodic refresh is modelled.
    pub refresh: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            timing: TimingParams::ddr3_1600(),
            power: PowerParams::ddr3_1600_x8(),
            banks: 8,
            ranks: 1,
            policy: SchedPolicy::FrFcfs,
            row_policy: RowPolicy::Open,
            write_high_watermark: 32,
            write_low_watermark: 8,
            refresh: true,
        }
    }
}

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Demand/prefetch reads serviced.
    pub reads: u64,
    /// Writebacks serviced.
    pub writes: u64,
    /// Column commands that hit the open row.
    pub row_hits: u64,
    /// Accesses to a precharged bank.
    pub row_closed: u64,
    /// Accesses that had to close another row first.
    pub row_conflicts: u64,
    /// ACTIVATE commands issued.
    pub activates: u64,
    /// PRECHARGE commands issued.
    pub precharges: u64,
    /// REFRESH commands issued.
    pub refreshes: u64,
    /// Sum of read latencies (arrival to data completion), memory cycles.
    pub total_read_latency: u64,
    /// Smallest read latency observed, memory cycles (0 when no reads).
    pub min_read_latency: u64,
    /// Largest read latency observed, memory cycles (0 when no reads).
    pub max_read_latency: u64,
    /// Memory cycles the data bus spent transferring bursts.
    pub bus_busy_cycles: u64,
    /// Row hits serviced ahead of an older pending request, as counted
    /// by fairness-aware schedulers (always 0 under plain FR-FCFS and
    /// FCFS, which take no fairness decisions).
    pub sched_hit_bypasses: u64,
    /// Times a starvation cap forced the oldest request to be serviced.
    pub sched_promotions: u64,
    /// Times a batch scheduler's bank cursor rotated onward.
    pub sched_batch_rotations: u64,
    /// Times the write queue reached the high watermark and the
    /// controller entered write-drain mode.
    pub drain_entries: u64,
    /// Times drain mode ended at the low watermark.
    pub drain_exits: u64,
}

impl ReportStats for ControllerStats {
    fn stats_node(&self, name: &str) -> StatsNode {
        let mut node = StatsNode::new(name)
            .counter("reads", self.reads)
            .counter("writes", self.writes)
            .counter("row_hits", self.row_hits)
            .counter("row_closed", self.row_closed)
            .counter("row_conflicts", self.row_conflicts)
            .counter("activates", self.activates)
            .counter("precharges", self.precharges)
            .counter("refreshes", self.refreshes)
            .counter("total_read_latency", self.total_read_latency)
            .counter("min_read_latency", self.min_read_latency)
            .counter("max_read_latency", self.max_read_latency)
            .counter("bus_busy_cycles", self.bus_busy_cycles);
        // Engine-decision counters appear only once an engine actually
        // took a decision: the default FR-FCFS + open-row configuration
        // reports none, keeping the long-pinned figure-JSON schema (and
        // its byte-identity baselines) unchanged.
        if self.engine_decisions() > 0 {
            node = node
                .counter("sched_hit_bypasses", self.sched_hit_bypasses)
                .counter("sched_promotions", self.sched_promotions)
                .counter("sched_batch_rotations", self.sched_batch_rotations)
                .counter("drain_entries", self.drain_entries)
                .counter("drain_exits", self.drain_exits);
        }
        node.gauge("avg_read_latency", self.avg_read_latency())
            .gauge("row_hit_rate", self.row_hit_rate())
    }
}

impl ControllerStats {
    /// Folds another controller's counters into this one — the one
    /// aggregation point for multi-channel/multi-controller totals.
    pub fn merge(&mut self, other: &Self) {
        // min/max only mean something when their side has reads.
        if other.reads > 0 {
            self.min_read_latency = if self.reads == 0 {
                other.min_read_latency
            } else {
                self.min_read_latency.min(other.min_read_latency)
            };
            self.max_read_latency = self.max_read_latency.max(other.max_read_latency);
        }
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_closed += other.row_closed;
        self.row_conflicts += other.row_conflicts;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.total_read_latency += other.total_read_latency;
        self.bus_busy_cycles += other.bus_busy_cycles;
        self.sched_hit_bypasses += other.sched_hit_bypasses;
        self.sched_promotions += other.sched_promotions;
        self.sched_batch_rotations += other.sched_batch_rotations;
        self.drain_entries += other.drain_entries;
        self.drain_exits += other.drain_exits;
    }

    /// Total scheduler/write-drain decisions recorded (0 under the
    /// default FR-FCFS configuration on read-dominated workloads).
    pub fn engine_decisions(&self) -> u64 {
        self.sched_hit_bypasses
            + self.sched_promotions
            + self.sched_batch_rotations
            + self.drain_entries
            + self.drain_exits
    }

    /// Records one read latency into the sum/min/max counters.
    fn note_read_latency(&mut self, latency: u64) {
        self.total_read_latency += latency;
        self.min_read_latency = if self.reads == 0 {
            latency
        } else {
            self.min_read_latency.min(latency)
        };
        self.max_read_latency = self.max_read_latency.max(latency);
        self.reads += 1;
    }

    /// Mean read latency in memory cycles.
    // gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Data-bus utilisation over `elapsed` memory cycles.
    // gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
    pub fn bus_utilisation(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bus_busy_cycles as f64 / elapsed as f64
        }
    }

    /// Row-hit rate over all column commands.
    // gsdram-lint: allow-block(D5) report-only ratio; never feeds simulated timing
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Pending {
    req: MemRequest,
    arrival: Cycles,
    seq: u64,
    /// How this request was served, decided by the first row command
    /// issued on its behalf (None until then = would be a row hit).
    served: Option<RowBufferState>,
}

/// The memory controller for one channel: a composition shell over the
/// scheduling, refresh and write-drain engines.
#[derive(Debug)]
pub struct MemController {
    cfg: ControllerConfig,
    ranks: Vec<Rank>,
    now: Cycles,
    /// Shared data bus: end of the last burst and the rank that drove it
    /// (rank switches pay tRTRS).
    bus_free_at: Cycles,
    bus_last_rank: Option<usize>,
    /// Shared command bus: one command per cycle across all ranks.
    cmd_bus_at: Cycles,
    readq: Vec<Pending>,
    writeq: Vec<Pending>,
    completions: Vec<Completion>,
    /// Command-selection engine built from `cfg.policy`.
    sched: Box<dyn Scheduler>,
    /// Periodic-refresh schedule.
    refresh: RefreshTimer,
    /// Write-drain watermark hysteresis.
    wdrain: WriteDrain,
    seq: u64,
    energy: EnergyMeter,
    energy_cursor: Cycles,
    stats: ControllerStats,
    /// Banks scheduled for a closed-row-policy precharge.
    pending_close: Vec<(usize, usize)>,
    /// Optional command trace for timing verification in tests.
    trace: Option<Vec<crate::command::TimedCommand>>,
    /// Which channel this controller drives, echoed in emitted events.
    channel: usize,
    /// Read latency distribution (arrival to data completion).
    /// Maintained unconditionally — never via the observer — so report
    /// output is bit-identical whether or not a sink is attached.
    read_hist: Histogram,
    /// Queue occupancy (reads + writes, serviced request included)
    /// sampled at each column-command retire. Unconditional, like
    /// `read_hist`.
    depth_hist: Histogram,
    /// Cached next-event bound (the time-skip contract): every
    /// scheduling scan that issues nothing already knows the exact next
    /// cycle something can issue, so it is remembered here and
    /// [`advance_observed`](Self::advance_observed) short-circuits any
    /// advance that stops before it. Invalidated on every state change
    /// (enqueue, command issue).
    horizon: Horizon,
    /// Whether `advance` may leap over horizon-proven dead time
    /// (disable only to cross-check leap ≡ step in tests).
    time_skip: bool,
    /// Scratch for the per-(rank, bank) representative pick of the
    /// candidate scan (reused across steps; no steady-state allocation).
    bank_best: Vec<Option<usize>>,
    /// Scratch for the candidate list itself.
    cand_buf: Vec<Candidate>,
    /// Scratch for the open-bank list of a refreshing rank.
    open_buf: Vec<usize>,
}

impl MemController {
    /// A controller with the given configuration.
    pub fn new(cfg: ControllerConfig) -> Self {
        let ranks = (0..cfg.ranks.max(1))
            .map(|_| Rank::new(cfg.timing.clone(), cfg.banks))
            .collect();
        let energy = EnergyMeter::new(cfg.power.clone(), cfg.timing.clone());
        let sched = cfg.policy.engine(cfg.ranks.max(1), cfg.banks);
        let refresh = RefreshTimer::new(cfg.refresh, cfg.timing.refi);
        let wdrain = WriteDrain::new(cfg.write_high_watermark, cfg.write_low_watermark);
        MemController {
            cfg,
            ranks,
            now: 0,
            bus_free_at: 0,
            bus_last_rank: None,
            cmd_bus_at: 0,
            readq: Vec::new(),
            writeq: Vec::new(),
            completions: Vec::new(),
            sched,
            refresh,
            wdrain,
            seq: 0,
            energy,
            energy_cursor: 0,
            stats: ControllerStats::default(),
            pending_close: Vec::new(),
            trace: None,
            channel: 0,
            read_hist: Histogram::new(),
            depth_hist: Histogram::new(),
            horizon: Horizon::Stale,
            time_skip: true,
            bank_best: Vec::new(),
            cand_buf: Vec::new(),
            open_buf: Vec::new(),
        }
    }

    /// Enables or disables time-skipping (leaping over horizon-proven
    /// dead time in [`advance`](Self::advance)). On by default; turning
    /// it off forces every advance through the full scheduling scan —
    /// the two modes are byte-identical in every observable (commands,
    /// completions, statistics, events), which the leap≡step
    /// differential tests pin.
    pub fn set_time_skip(&mut self, on: bool) {
        self.time_skip = on;
    }

    /// Sets the channel index stamped on emitted [`SimEvent`]s
    /// (defaults to 0 for single-channel use).
    pub fn set_channel(&mut self, channel: usize) {
        self.channel = channel;
    }

    /// Read latency distribution (arrival to data-burst completion, in
    /// memory cycles), one sample per serviced read.
    pub fn read_latency_hist(&self) -> &Histogram {
        &self.read_hist
    }

    /// Queue occupancy distribution: reads + writes outstanding at each
    /// column-command retire, the serviced request included.
    pub fn queue_depth_hist(&self) -> &Histogram {
        &self.depth_hist
    }

    /// Enables command tracing (used by the timing-verification tests).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The trace collected so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&[crate::command::TimedCommand]> {
        self.trace.as_deref()
    }

    /// Current memory-clock time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Energy accumulated so far.
    pub fn energy(&self) -> crate::energy::EnergyBreakdown {
        self.energy.breakdown()
    }

    /// Outstanding request count (both queues).
    pub fn pending(&self) -> usize {
        self.readq.len() + self.writeq.len()
    }

    /// Enqueues a request arriving at cycle `at` (which may be in the
    /// future relative to [`now`](Self::now); it becomes schedulable
    /// then).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the controller's current time — the
    /// caller must not rewrite history.
    pub fn enqueue(&mut self, req: MemRequest, at: Cycles) {
        assert!(
            at >= self.now,
            "request arrives at {at} but now is {}",
            self.now
        );
        let p = Pending {
            req,
            arrival: at,
            seq: self.seq,
            served: None,
        };
        self.seq += 1;
        self.horizon.invalidate();
        match req.kind {
            AccessKind::Read => self.readq.push(p),
            AccessKind::Write => self.writeq.push(p),
        }
    }

    /// Removes and returns all completions with `at <= up_to`.
    pub fn take_completions(&mut self, up_to: Cycles) -> Vec<Completion> {
        let mut done = Vec::new();
        self.take_completions_into(up_to, &mut done);
        done
    }

    /// Allocation-free variant of
    /// [`take_completions`](Self::take_completions): appends every
    /// completion with `at <= up_to` to `out` (in recorded order, the
    /// order delivery relies on) and removes them from the controller.
    pub fn take_completions_into(&mut self, up_to: Cycles, out: &mut Vec<Completion>) {
        self.completions.retain(|c| {
            if c.at <= up_to {
                out.push(*c);
                false
            } else {
                true
            }
        });
    }

    /// The *exact* earliest cycle at which something will happen if no
    /// new requests arrive: the next issuable command (through the same
    /// scheduling-engine selection `advance` uses, so capped/fair
    /// engines report the command they would actually pick), the next
    /// due auto-precharge under the closed-row policy, or the next due
    /// refresh. `None` when fully idle (nothing pending and refresh
    /// disabled).
    ///
    /// Satisfies the time-skip contract of [`gsdram_core::time`]:
    /// `advance(next_event() - 1)` issues nothing, `advance
    /// (next_event())` makes progress.
    pub fn next_event(&self) -> Option<Cycles> {
        if !self.horizon.is_stale() {
            return self.horizon.known();
        }
        self.compute_next_event()
    }

    /// The uncached next-event computation: a pure replay of the next
    /// scheduling step's decision logic. The fold over {selected
    /// candidate, due auto-precharge, refresh due} is exact — see the
    /// ordering-invariant argument in `docs/PERF.md`.
    fn compute_next_event(&self) -> Option<Cycles> {
        let mut fold = TimeFold::new();
        fold.fold_opt(self.refresh.horizon());
        let writes = self
            .wdrain
            .would_serve(self.writeq.len(), !self.readq.is_empty());
        let queue = if writes { &self.writeq } else { &self.readq };
        let cands = self.candidates(queue, self.now);
        if !cands.is_empty() {
            fold.fold(cands[self.sched.select(&cands)].ready);
        }
        if self.cfg.row_policy == RowPolicy::Closed {
            fold.fold_opt(self.peek_close(self.now));
        }
        fold.earliest()
    }

    fn accrue_energy(&mut self, to: Cycles) {
        if to > self.energy_cursor {
            let delta = to - self.energy_cursor;
            let active = self.ranks.iter().any(Rank::any_bank_active);
            if !active && self.pending() == 0 {
                // A genuinely idle gap: eligible for precharge
                // power-down.
                self.energy.on_idle_gap(delta);
            } else {
                self.energy.on_elapsed(delta, active);
            }
            self.energy_cursor = to;
        }
    }

    fn issue(
        &mut self,
        rank: usize,
        cmd: DramCommand,
        at: Cycles,
        events: &mut EventHub,
    ) -> Option<Cycles> {
        self.horizon.invalidate();
        self.accrue_energy(at);
        let done = self.ranks[rank].issue(&cmd, at);
        if let Some(end) = done {
            self.bus_free_at = self.bus_free_at.max(end);
            self.bus_last_rank = Some(rank);
            self.stats.bus_busy_cycles += self.cfg.timing.burst;
        }
        self.cmd_bus_at = self.cmd_bus_at.max(at + 1);
        match cmd {
            DramCommand::Activate { .. } => {
                self.stats.activates += 1;
                self.energy.on_activate();
            }
            DramCommand::Precharge { .. } => self.stats.precharges += 1,
            DramCommand::Read { .. } => self.energy.on_read(64),
            DramCommand::Write { .. } => self.energy.on_write(64),
            DramCommand::Refresh => {
                self.stats.refreshes += 1;
                self.energy.on_refresh();
            }
        }
        let channel = self.channel;
        events.emit(|| SimEvent::DramCommand {
            channel,
            rank,
            bank: cmd.bank(),
            kind: match cmd {
                DramCommand::Activate { .. } => DramCmdKind::Activate,
                DramCommand::Precharge { .. } => DramCmdKind::Precharge,
                DramCommand::Read { .. } => DramCmdKind::Read,
                DramCommand::Write { .. } => DramCmdKind::Write,
                DramCommand::Refresh => DramCmdKind::Refresh,
            },
            at_mem: at,
        });
        if let Some(t) = self.trace.as_mut() {
            t.push(crate::command::TimedCommand { at, rank, cmd });
        }
        self.now = self.now.max(at);
        done
    }

    /// Performs the periodic refresh sequence: precharge open banks,
    /// then an all-bank REFRESH.
    fn do_refresh(&mut self, events: &mut EventHub) {
        let mut t = self.now.max(self.refresh.next_due());
        let mut open = std::mem::take(&mut self.open_buf);
        for r in 0..self.ranks.len() {
            open.clear();
            open.extend(self.ranks[r].open_banks());
            for &bank in &open {
                let cmd = DramCommand::Precharge { bank };
                let at = self.ranks[r].earliest(&cmd, t).max(self.cmd_bus_at);
                self.issue(r, cmd, at, events);
                t = t.max(at);
            }
            let cmd = DramCommand::Refresh;
            let at = self.ranks[r].earliest(&cmd, t).max(self.cmd_bus_at);
            self.issue(r, cmd, at, events);
            t = t.max(at);
        }
        self.open_buf = open;
        self.refresh.advance_period();
        self.horizon.invalidate();
    }

    /// Whether writes should be serviced now, per the write-drain
    /// engine; mode edges are folded into stats and telemetry here.
    fn serving_writes(&mut self, have_ready_read: bool, events: &mut EventHub) -> bool {
        if let Some(tr) = self.wdrain.update(self.writeq.len()) {
            let kind = match tr {
                DrainTransition::Entered => {
                    self.stats.drain_entries += 1;
                    SchedDecisionKind::DrainEnter
                }
                DrainTransition::Exited => {
                    self.stats.drain_exits += 1;
                    SchedDecisionKind::DrainExit
                }
            };
            let channel = self.channel;
            let at_mem = self.now;
            events.emit(|| SimEvent::SchedDecision {
                channel,
                kind,
                at_mem,
            });
        }
        self.wdrain.should_serve(self.writeq.len(), have_ready_read)
    }

    /// For one queue, selects the per-bank representative request and its
    /// next command, returning `(queue_index, command, earliest, is_hit,
    /// seq)` candidates.
    /// Earliest issue time for a command on `rank`, including the
    /// shared command bus and (for column commands) the shared data bus
    /// with rank-to-rank turnaround.
    fn earliest_on(&self, rank: usize, cmd: &DramCommand, from: Cycles) -> Cycles {
        let mut t = self.ranks[rank].earliest(cmd, from).max(self.cmd_bus_at);
        if cmd.is_column() {
            let latency = match cmd {
                DramCommand::Read { .. } => self.cfg.timing.cl,
                _ => self.cfg.timing.cwl,
            };
            let mut bus_ready = self.bus_free_at;
            if self.bus_last_rank.is_some_and(|r| r != rank) {
                bus_ready += self.cfg.timing.rtrs;
            }
            // Data burst must start at or after the bus is free.
            t = t.max(bus_ready.saturating_sub(latency));
        }
        t
    }

    /// Allocating wrapper over
    /// [`candidates_into`](Self::candidates_into) for `&self` callers
    /// off the hot path ([`next_event`](Self::next_event) cache
    /// misses).
    fn candidates(&self, queue: &[Pending], from: Cycles) -> Vec<Candidate> {
        let mut out = Vec::new();
        let mut best_per_bank = Vec::new();
        self.candidates_into(queue, from, &mut best_per_bank, &mut out);
        out
    }

    /// For one queue, selects the per-bank representative request and
    /// its next command into `out` as (queue index, command, earliest,
    /// is-hit, seq) candidates. `best_per_bank` and `out` are caller
    /// scratch (cleared here), so the per-step scan allocates nothing
    /// in the steady state — both scans are flat sweeps over the
    /// [`crate::bank::BankSet`] arrays.
    fn candidates_into(
        &self,
        queue: &[Pending],
        from: Cycles,
        best_per_bank: &mut Vec<Option<usize>>,
        out: &mut Vec<Candidate>,
    ) {
        let banks = self.cfg.banks;
        let slots = self.ranks.len() * banks;
        out.clear();
        best_per_bank.clear();
        best_per_bank.resize(slots, None);
        // Pass 1: pick the representative request per (rank, bank) —
        // the ordering criterion is the scheduling engine's.
        for (i, p) in queue.iter().enumerate() {
            let loc = p.req.loc;
            let state = self.ranks[loc.rank].row_state(loc.bank, loc.row);
            let cur = &mut best_per_bank[loc.rank * banks + loc.bank];
            match cur {
                None => *cur = Some(i),
                Some(j) => {
                    let jp = &queue[*j];
                    let j_state = self.ranks[loc.rank].row_state(loc.bank, jp.req.loc.row);
                    let better = self.sched.prefers(
                        QueueView {
                            is_hit: state == RowBufferState::Hit,
                            seq: p.seq,
                        },
                        QueueView {
                            is_hit: j_state == RowBufferState::Hit,
                            seq: jp.seq,
                        },
                    );
                    if better {
                        *cur = Some(i);
                    }
                }
            }
        }
        // Pass 2: next command + earliest time for each representative.
        for idx in best_per_bank.iter().copied().flatten() {
            let p = &queue[idx];
            let loc = p.req.loc;
            let state = self.ranks[loc.rank].row_state(loc.bank, loc.row);
            let cmd = match state {
                RowBufferState::Hit => match p.req.kind {
                    AccessKind::Read => DramCommand::Read {
                        bank: loc.bank,
                        col: loc.col,
                        pattern: p.req.pattern,
                    },
                    AccessKind::Write => DramCommand::Write {
                        bank: loc.bank,
                        col: loc.col,
                        pattern: p.req.pattern,
                    },
                },
                RowBufferState::Closed => DramCommand::Activate {
                    bank: loc.bank,
                    row: loc.row,
                },
                RowBufferState::Conflict => DramCommand::Precharge { bank: loc.bank },
            };
            let ready = self.earliest_on(loc.rank, &cmd, from.max(p.arrival));
            out.push(Candidate {
                queue_idx: idx,
                rank: loc.rank,
                bank: loc.bank,
                cmd,
                ready,
                is_hit: state == RowBufferState::Hit,
                seq: p.seq,
            });
        }
    }

    /// Advances the controller's clock to `to`, issuing every command
    /// that can legally issue before then.
    pub fn advance(&mut self, to: Cycles) {
        self.advance_observed(to, &mut EventHub::new());
    }

    /// [`advance`](Self::advance), emitting [`SimEvent`]s describing
    /// each issued command and serviced request to `events`.
    ///
    /// When the cached horizon proves nothing can issue by `to`, the
    /// clock leaps straight there — one compare instead of a scheduling
    /// scan. The horizon stays valid across leaps (bounds only move
    /// later as time passes) until an enqueue or issue invalidates it.
    pub fn advance_observed(&mut self, to: Cycles, events: &mut EventHub) {
        if !(self.time_skip && self.horizon.skips(to)) {
            while self.step(to, events) {}
        }
        self.now = self.now.max(to);
        self.accrue_energy(self.now);
    }

    /// Whether advancing to `to` is provably a no-op for observers: the
    /// cached horizon shows no command can issue by `to` and no
    /// recorded completion is due by then. Deliberately cheap — a stale
    /// horizon answers `false` rather than triggering a scheduling
    /// scan, so callers can use this as a per-sync fast-path guard
    /// (see `DramBridge::quiescent_until` in gsdram-system).
    pub fn quiescent_until(&self, to: Cycles) -> bool {
        self.time_skip && self.horizon.skips(to) && self.completions.iter().all(|c| c.at > to)
    }

    /// Whether any completions are recorded (at any time).
    pub fn has_completions(&self) -> bool {
        !self.completions.is_empty()
    }

    /// The earliest recorded completion time, if any.
    pub fn peek_completion(&self) -> Option<Cycles> {
        self.completions.iter().map(|c| c.at).min()
    }

    /// Advances just far enough that at least one completion exists,
    /// issuing commands at their exact legal times (the clock never
    /// overshoots the last issued command, so subsequently arriving
    /// requests are not penalised). Returns the earliest completion
    /// time, or `None` if no pending work can ever complete.
    pub fn advance_until_completion(&mut self) -> Option<Cycles> {
        self.advance_until_completion_observed(&mut EventHub::new())
    }

    /// [`advance_until_completion`](Self::advance_until_completion),
    /// emitting [`SimEvent`]s to `events`.
    pub fn advance_until_completion_observed(&mut self, events: &mut EventHub) -> Option<Cycles> {
        loop {
            if let Some(t) = self.peek_completion() {
                return Some(t);
            }
            if self.pending() == 0 || !self.step(Cycles::MAX, events) {
                return None;
            }
        }
    }

    /// Whether any queued request would hit the open row of
    /// `(rank, bank)`.
    fn queued_hit_for(&self, rank: usize, bank: usize) -> bool {
        let Some(row) = self.ranks[rank].open_row(bank) else {
            return false;
        };
        self.readq
            .iter()
            .chain(self.writeq.iter())
            .any(|p| p.req.loc.rank == rank && p.req.loc.bank == bank && p.req.loc.row == row)
    }

    /// Under the closed-row policy: the next due auto-precharge, if any
    /// is still warranted (drops entries whose row closed or became
    /// useful again).
    fn close_candidate(&mut self, from: Cycles) -> Option<(usize, DramCommand, Cycles)> {
        while let Some(&(rank, bank)) = self.pending_close.first() {
            if self.ranks[rank].open_row(bank).is_none() || self.queued_hit_for(rank, bank) {
                self.pending_close.remove(0);
                continue;
            }
            let cmd = DramCommand::Precharge { bank };
            let at = self.earliest_on(rank, &cmd, from);
            return Some((rank, cmd, at));
        }
        None
    }

    /// Pure preview of [`close_candidate`](Self::close_candidate):
    /// the next due auto-precharge time without dropping stale entries
    /// (the next scheduling step drops them; skipping them here is
    /// equivalent because only still-warranted entries can act).
    fn peek_close(&self, from: Cycles) -> Option<Cycles> {
        for &(rank, bank) in &self.pending_close {
            if self.ranks[rank].open_row(bank).is_none() || self.queued_hit_for(rank, bank) {
                continue;
            }
            let cmd = DramCommand::Precharge { bank };
            return Some(self.earliest_on(rank, &cmd, from));
        }
        None
    }

    /// Issues the single next command whose legal issue time is ≤
    /// `limit` (refresh included), advancing the clock exactly to it.
    /// Returns `false` when nothing could be issued within `limit`.
    fn step(&mut self, limit: Cycles, events: &mut EventHub) -> bool {
        {
            // Every queued request yields a per-bank representative
            // candidate, so "a read candidate exists" is exactly "the
            // read queue is non-empty" — the write-drain decision needs
            // no read scan.
            let have_ready_read = !self.readq.is_empty();
            let writes = self.serving_writes(have_ready_read, events);
            let mut cands = std::mem::take(&mut self.cand_buf);
            let mut bank_best = std::mem::take(&mut self.bank_best);
            let queue = if writes { &self.writeq } else { &self.readq };
            self.candidates_into(queue, self.now, &mut bank_best, &mut cands);
            let from_writeq = writes;

            // Pass 2 belongs to the scheduling engine.
            let best = if cands.is_empty() {
                None
            } else {
                Some(cands[self.sched.select(&cands)])
            };
            self.cand_buf = cands;
            self.bank_best = bank_best;

            // Closed-row policy: a due auto-precharge competes with (and
            // on ties loses to) request commands.
            if self.cfg.row_policy == RowPolicy::Closed {
                if let Some((rank, cmd, at)) = self.close_candidate(self.now) {
                    let beats = best.is_none_or(|c| at < c.ready);
                    let refresh_blocks = self.refresh.preempts(at, limit);
                    if beats && !refresh_blocks {
                        if at > limit {
                            // Next state change: this precharge, unless
                            // a refresh comes due first (the precharge
                            // beats `best`, so `best` never fires
                            // earlier).
                            let mut fold = TimeFold::new();
                            fold.fold(at);
                            fold.fold_opt(self.refresh.horizon());
                            self.horizon.learn(fold.earliest());
                            return false;
                        }
                        self.issue(rank, cmd, at, events);
                        self.pending_close.remove(0);
                        return true;
                    }
                }
            }

            // Refresh takes priority over any command not strictly
            // earlier than it.
            if self.refresh.due_by(limit) && best.is_none_or(|c| c.ready >= self.refresh.next_due())
            {
                self.do_refresh(events);
                return true;
            }

            let Some(Candidate {
                queue_idx: idx,
                rank,
                bank,
                cmd,
                ready: at,
                ..
            }) = best
            else {
                // Nothing pending: only a refresh can happen.
                self.horizon.learn(self.refresh.horizon());
                return false;
            };

            // Do not run past `limit`.
            if at > limit {
                // Next state change: the selected command, unless a
                // refresh comes due first (any due auto-precharge did
                // not beat it, so it cannot fire earlier either).
                let mut fold = TimeFold::new();
                fold.fold(at);
                fold.fold_opt(self.refresh.horizon());
                self.horizon.learn(fold.earliest());
                return false;
            }

            let is_column = cmd.is_column();
            // Occupancy at issue, the serviced request included —
            // sampled before the retire below removes it.
            let depth_at_issue = self.pending() as u32;
            let data_end = self.issue(rank, cmd, at, events);
            if is_column && self.cfg.row_policy == RowPolicy::Closed {
                if let Some(bank) = cmd.bank() {
                    if !self.pending_close.contains(&(rank, bank)) {
                        self.pending_close.push((rank, bank));
                    }
                }
            }
            let queue = if from_writeq {
                &mut self.writeq
            } else {
                &mut self.readq
            };
            if is_column {
                // Oldest request still pending in this queue (serviced
                // one included) — fairness engines judge the service
                // against it.
                let oldest_seq = queue.iter().fold(u64::MAX, |m, p| m.min(p.seq));
                let p = queue.swap_remove(idx);
                // gsdram-lint: allow(D4) issue() returns a data window for every column command
                let at_done = data_end.expect("column command returns completion");
                self.completions.push(Completion {
                    id: p.req.id,
                    at: at_done,
                });
                let served = p.served.unwrap_or(RowBufferState::Hit);
                match served {
                    RowBufferState::Hit => self.stats.row_hits += 1,
                    RowBufferState::Closed => self.stats.row_closed += 1,
                    RowBufferState::Conflict => self.stats.row_conflicts += 1,
                }
                self.depth_hist.record(u64::from(depth_at_issue));
                match p.req.kind {
                    AccessKind::Read => {
                        let latency = at_done - p.arrival;
                        self.stats.note_read_latency(latency);
                        self.read_hist.record(latency);
                    }
                    AccessKind::Write => self.stats.writes += 1,
                }
                let channel = self.channel;
                events.emit(|| SimEvent::DramService {
                    id: p.req.id,
                    channel,
                    bank: p.req.loc.bank,
                    pattern: p.req.pattern,
                    write: p.req.kind == AccessKind::Write,
                    outcome: match served {
                        RowBufferState::Hit => RowOutcome::Hit,
                        RowBufferState::Closed => RowOutcome::Closed,
                        RowBufferState::Conflict => RowOutcome::Conflict,
                    },
                    queue_depth: depth_at_issue,
                    arrived_at_mem: p.arrival,
                    done_at_mem: at_done,
                });
                // Report the retire to the scheduling engine; fold any
                // fairness decision into stats and telemetry.
                let fb = self.sched.on_retire(Retired {
                    seq: p.seq,
                    is_hit: served == RowBufferState::Hit,
                    slot: rank * self.cfg.banks + bank,
                    oldest_seq,
                });
                for (taken, counter, kind) in [
                    (
                        fb.hit_bypass,
                        &mut self.stats.sched_hit_bypasses,
                        SchedDecisionKind::RowHitBypass,
                    ),
                    (
                        fb.promoted,
                        &mut self.stats.sched_promotions,
                        SchedDecisionKind::StarvationPromotion,
                    ),
                    (
                        fb.rotated,
                        &mut self.stats.sched_batch_rotations,
                        SchedDecisionKind::BatchRotation,
                    ),
                ] {
                    if taken {
                        *counter += 1;
                        events.emit(|| SimEvent::SchedDecision {
                            channel,
                            kind,
                            at_mem: at,
                        });
                    }
                }
            } else {
                // Remember how this request is being served: a precharge
                // marks a row conflict; a bare activate a closed-row
                // access.
                let p = &mut queue[idx];
                match cmd {
                    DramCommand::Activate { .. } if p.served.is_none() => {
                        p.served = Some(RowBufferState::Closed);
                    }
                    DramCommand::Precharge { .. } => p.served = Some(RowBufferState::Conflict),
                    _ => {}
                }
            }
            true
        }
    }

    /// Runs until all pending requests have completed, returning the
    /// cycle the last data burst finished.
    pub fn drain(&mut self) -> Cycles {
        let mut last = self.now;
        while self.pending() > 0 {
            let target = self.now + self.cfg.timing.refi;
            self.advance(target);
        }
        for c in &self.completions {
            last = last.max(c.at);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMap;
    use gsdram_core::PatternId;

    fn read_req(id: u64, addr: u64) -> MemRequest {
        MemRequest {
            id,
            loc: AddressMap::table1().decompose(addr),
            pattern: PatternId(0),
            kind: AccessKind::Read,
        }
    }

    fn write_req(id: u64, addr: u64) -> MemRequest {
        MemRequest {
            kind: AccessKind::Write,
            ..read_req(id, addr)
        }
    }

    fn quiet_cfg() -> ControllerConfig {
        ControllerConfig {
            refresh: false,
            ..ControllerConfig::default()
        }
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        // Exhaustive struct literals (no `..Default::default()`): adding
        // a counter without extending `merge` fails to compile here, and
        // the field-by-field asserts catch a counter `merge` drops.
        let mut a = ControllerStats {
            reads: 1,
            writes: 2,
            row_hits: 3,
            row_closed: 4,
            row_conflicts: 5,
            activates: 6,
            precharges: 7,
            refreshes: 8,
            total_read_latency: 9,
            min_read_latency: 9,
            max_read_latency: 9,
            bus_busy_cycles: 10,
            sched_hit_bypasses: 11,
            sched_promotions: 12,
            sched_batch_rotations: 13,
            drain_entries: 14,
            drain_exits: 15,
        };
        let b = ControllerStats {
            reads: 10,
            writes: 20,
            row_hits: 30,
            row_closed: 40,
            row_conflicts: 50,
            activates: 60,
            precharges: 70,
            refreshes: 80,
            total_read_latency: 90,
            min_read_latency: 4,
            max_read_latency: 30,
            bus_busy_cycles: 100,
            sched_hit_bypasses: 110,
            sched_promotions: 120,
            sched_batch_rotations: 130,
            drain_entries: 140,
            drain_exits: 150,
        };
        a.merge(&b);
        assert_eq!(a.reads, 11);
        assert_eq!(a.writes, 22);
        assert_eq!(a.row_hits, 33);
        assert_eq!(a.row_closed, 44);
        assert_eq!(a.row_conflicts, 55);
        assert_eq!(a.activates, 66);
        assert_eq!(a.precharges, 77);
        assert_eq!(a.refreshes, 88);
        assert_eq!(a.total_read_latency, 99);
        assert_eq!(a.min_read_latency, 4, "min takes the smaller side");
        assert_eq!(a.max_read_latency, 30, "max takes the larger side");
        assert_eq!(a.bus_busy_cycles, 110);
        assert_eq!(a.sched_hit_bypasses, 121);
        assert_eq!(a.sched_promotions, 132);
        assert_eq!(a.sched_batch_rotations, 143);
        assert_eq!(a.drain_entries, 154);
        assert_eq!(a.drain_exits, 165);
        assert_eq!(
            a,
            ControllerStats {
                reads: 11,
                writes: 22,
                row_hits: 33,
                row_closed: 44,
                row_conflicts: 55,
                activates: 66,
                precharges: 77,
                refreshes: 88,
                total_read_latency: 99,
                min_read_latency: 4,
                max_read_latency: 30,
                bus_busy_cycles: 110,
                sched_hit_bypasses: 121,
                sched_promotions: 132,
                sched_batch_rotations: 143,
                drain_entries: 154,
                drain_exits: 165,
            }
        );
        // Merging the default is the identity: a read-free side must
        // not drag min_read_latency to 0.
        let before = a;
        a.merge(&ControllerStats::default());
        assert_eq!(a, before);
        // And merging *into* a read-free side adopts the other's range.
        let mut empty = ControllerStats::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn decision_counters_stay_out_of_the_default_stats_schema() {
        // The frozen figure-JSON schema: a stats tree with no engine
        // decisions must not mention the decision counters at all...
        let quiet = ControllerStats {
            reads: 5,
            row_hits: 4,
            ..ControllerStats::default()
        };
        let json = quiet.stats_node("dram").to_json();
        assert!(!json.contains("sched_"), "{json}");
        assert!(!json.contains("drain_"), "{json}");
        // ...while any decision surfaces all five counters.
        let busy = ControllerStats {
            drain_entries: 1,
            ..quiet
        };
        let json = busy.stats_node("dram").to_json();
        for key in [
            "sched_hit_bypasses",
            "sched_promotions",
            "sched_batch_rotations",
            "drain_entries",
            "drain_exits",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        assert_eq!(busy.engine_decisions(), 1);
    }

    #[test]
    fn single_read_latency_is_closed_row_path() {
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(read_req(1, 0), 0);
        c.advance(1000);
        let done = c.take_completions(1000);
        assert_eq!(done.len(), 1);
        let t = TimingParams::ddr3_1600();
        // ACT at 0, READ at tRCD, data at +CL+burst.
        assert_eq!(done[0].at, t.rcd + t.cl + t.burst);
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().row_closed, 1);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        // Two reads to the same row: second is a hit, spaced by tCCD.
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(read_req(1, 0), 0);
        c.enqueue(read_req(2, 64), 0);
        c.advance(1000);
        let done = c.take_completions(1000);
        let t = TimingParams::ddr3_1600();
        assert_eq!(done[1].at - done[0].at, t.ccd);
        assert_eq!(c.stats().row_hits, 1);
        assert_eq!(c.stats().row_closed, 1);

        // Conflict: same bank, different row.
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(read_req(1, 0), 0);
        // Row 1 of bank 0 starts at line 128*8 = addr 65536.
        c.enqueue(read_req(2, 65536), 0);
        c.advance(10000);
        let done = c.take_completions(10000);
        assert!(done[1].at - done[0].at > t.ccd * 4);
        assert_eq!(c.stats().row_conflicts, 1);
    }

    #[test]
    fn frfcfs_prefers_row_hits_over_older_conflicts() {
        let mut c = MemController::new(quiet_cfg());
        // Open row 0 of bank 0.
        c.enqueue(read_req(1, 0), 0);
        c.advance(50);
        // Older conflicting request (row 1), then a younger hit (row 0).
        c.enqueue(read_req(2, 65536), 50);
        c.enqueue(read_req(3, 64), 50);
        c.advance(10000);
        let done = c.take_completions(10000);
        let pos2 = done.iter().position(|x| x.id == 2).unwrap();
        let pos3 = done.iter().position(|x| x.id == 3).unwrap();
        assert!(done[pos3].at < done[pos2].at, "hit must finish first");
    }

    #[test]
    fn next_event_is_exact_and_pins_advance_until_completion() {
        // Walk a mixed read/write stream (row hits, conflicts, drain
        // mode, refresh all in play) strictly through next_event():
        // stepping to bound-1 must issue nothing, stepping to the bound
        // must issue something. A twin controller running the one-shot
        // advance_until_completion path must land on the identical
        // completion schedule.
        let req = |i: u64| {
            let addr = (i % 6) * 65536 + i * 64;
            if i.is_multiple_of(3) {
                write_req(i, addr)
            } else {
                read_req(i, addr)
            }
        };
        let mut c = MemController::new(ControllerConfig::default());
        let mut twin = MemController::new(ControllerConfig::default());
        for i in 0..24 {
            c.enqueue(req(i), i * 7);
            twin.enqueue(req(i), i * 7);
        }
        // Command-issue observables only: drain-mode edge counters may
        // lazily materialise at the first step after an enqueue, which
        // the time-skip contract deliberately leaves unscheduled.
        let obs = |c: &MemController| {
            let s = c.stats();
            let issued = (s.reads, s.writes, s.activates, s.precharges, s.refreshes);
            (issued, c.pending())
        };
        let mut guard = 0;
        while c.pending() > 0 {
            let ne = c.next_event().expect("pending work must report a bound");
            if ne > 0 {
                let before = obs(&c);
                c.advance(ne - 1);
                assert_eq!(obs(&c), before, "issued before the reported bound {ne}");
            }
            let before = obs(&c);
            c.advance(ne);
            assert_ne!(obs(&c), before, "no progress at the reported bound {ne}");
            guard += 1;
            assert!(guard < 10_000, "next_event walk failed to converge");
        }
        let mut expect = Vec::new();
        while twin.advance_until_completion().is_some() {
            twin.take_completions_into(Cycles::MAX, &mut expect);
        }
        let walked = c.take_completions(Cycles::MAX);
        assert!(!walked.is_empty());
        assert_eq!(
            walked.iter().map(|x| (x.id, x.at)).collect::<Vec<_>>(),
            expect.iter().map(|x| (x.id, x.at)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fcfs_serves_in_arrival_order() {
        let mut c = MemController::new(ControllerConfig {
            policy: SchedPolicy::Fcfs,
            refresh: false,
            ..ControllerConfig::default()
        });
        c.enqueue(read_req(1, 0), 0);
        c.advance(50);
        c.enqueue(read_req(2, 65536), 50);
        c.enqueue(read_req(3, 64), 50);
        c.advance(20000);
        let done = c.take_completions(20000);
        let pos2 = done.iter().position(|x| x.id == 2).unwrap();
        let pos3 = done.iter().position(|x| x.id == 3).unwrap();
        assert!(done[pos2].at < done[pos3].at, "FCFS must serve older first");
    }

    #[test]
    fn writes_drain_when_no_reads() {
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(write_req(1, 0), 0);
        c.advance(1000);
        assert_eq!(c.stats().writes, 1);
        assert_eq!(c.take_completions(1000).len(), 1);
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(write_req(1, 65536), 0);
        c.enqueue(read_req(2, 0), 0);
        c.advance(10000);
        let done = c.take_completions(10000);
        let pos1 = done.iter().position(|x| x.id == 1).unwrap();
        let pos2 = done.iter().position(|x| x.id == 2).unwrap();
        assert!(
            done[pos2].at < done[pos1].at,
            "read must finish before write"
        );
    }

    #[test]
    fn write_watermark_forces_drain() {
        let mut cfg = quiet_cfg();
        cfg.write_high_watermark = 4;
        cfg.write_low_watermark = 1;
        let mut c = MemController::new(cfg);
        for i in 0..6 {
            c.enqueue(write_req(i, i * 64), 0);
        }
        // A stream of reads that would otherwise starve writes.
        for i in 0..4 {
            c.enqueue(read_req(100 + i, 1_000_000 + i * 64), 0);
        }
        c.advance(100_000);
        assert_eq!(c.stats().writes, 6);
        assert_eq!(c.stats().reads, 4);
    }

    #[test]
    fn refresh_happens_periodically() {
        let mut c = MemController::new(ControllerConfig::default());
        let t = TimingParams::ddr3_1600();
        c.advance(t.refi * 3 + 10);
        assert_eq!(c.stats().refreshes, 3);
    }

    #[test]
    fn refresh_closes_open_rows() {
        let mut c = MemController::new(ControllerConfig::default());
        c.enqueue(read_req(1, 0), 0);
        let t = TimingParams::ddr3_1600();
        c.advance(t.refi + t.rfc + 100);
        assert_eq!(c.stats().refreshes, 1);
        assert!(c.stats().precharges >= 1, "open row must close before REF");
    }

    #[test]
    fn advance_does_not_issue_past_target() {
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(read_req(1, 0), 0);
        c.advance(5); // Not enough time for ACT+RCD+READ.
        assert_eq!(c.pending(), 1);
        assert_eq!(c.take_completions(5).len(), 0);
        c.advance(1000);
        assert_eq!(c.take_completions(1000).len(), 1);
    }

    #[test]
    fn future_arrivals_wait() {
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(read_req(1, 0), 500);
        c.advance(400);
        assert_eq!(c.take_completions(400).len(), 0);
        c.advance(2000);
        let done = c.take_completions(2000);
        assert_eq!(done.len(), 1);
        assert!(done[0].at >= 500);
    }

    #[test]
    fn pattern_reads_cost_the_same_as_normal_reads() {
        // The core claim of §3.6: a gather is one ordinary READ.
        let t = TimingParams::ddr3_1600();
        let mut normal = MemController::new(quiet_cfg());
        normal.enqueue(read_req(1, 0), 0);
        normal.advance(1000);
        let t_normal = normal.take_completions(1000)[0].at;

        let mut gs = MemController::new(quiet_cfg());
        gs.enqueue(
            MemRequest {
                pattern: PatternId(7),
                ..read_req(1, 0)
            },
            0,
        );
        gs.advance(1000);
        let t_gs = gs.take_completions(1000)[0].at;
        assert_eq!(t_normal, t_gs);
        assert_eq!(t_gs, t.rcd + t.cl + t.burst);
    }

    #[test]
    fn drain_completes_everything() {
        let mut c = MemController::new(ControllerConfig::default());
        for i in 0..64 {
            c.enqueue(read_req(i, i * 64 * 997), i);
        }
        let end = c.drain();
        assert_eq!(c.pending(), 0);
        let done = c.take_completions(end);
        assert_eq!(done.len(), 64);
    }

    #[test]
    fn two_ranks_overlap_row_activations() {
        // The same two row-conflict streams finish faster when split
        // across ranks: activations overlap while the data bus is shared.
        let map2 = AddressMap::with_ranks(64, 128, 8, 2, crate::mapping::Interleave::ColumnFirst);
        let run = |ranks: usize| {
            let mut c = MemController::new(ControllerConfig {
                ranks,
                refresh: false,
                ..ControllerConfig::default()
            });
            // Requests alternating between two far-apart regions that
            // map to the same bank (rank differs when ranks = 2).
            let stride = 128 * 64; // one full row of one bank
            for i in 0..16u64 {
                let addr = (i % 2) * (8 * stride) + (i / 2) * 16 * stride;
                let loc = if ranks == 2 {
                    map2.decompose(addr)
                } else {
                    AddressMap::table1().decompose(addr)
                };
                c.enqueue(
                    MemRequest {
                        id: i,
                        loc,
                        pattern: PatternId(0),
                        kind: AccessKind::Read,
                    },
                    0,
                );
            }
            c.drain()
        };
        let one = run(1);
        let two = run(2);
        assert!(two < one, "2 ranks {two} !< 1 rank {one}");
    }

    #[test]
    fn rank_turnaround_separates_bursts() {
        // Two row hits on different ranks must be spaced by at least
        // the burst plus tRTRS on the data bus.
        let t = TimingParams::ddr3_1600();
        let map2 = AddressMap::with_ranks(64, 128, 8, 2, crate::mapping::Interleave::ColumnFirst);
        let mut c = MemController::new(ControllerConfig {
            ranks: 2,
            refresh: false,
            ..ControllerConfig::default()
        });
        c.enable_trace();
        // Rank 0 and rank 1, same bank/row/col.
        let a0 = 0u64;
        let a1 = 128 * 64 * 8; // next rank, ColumnFirst with 8 banks
        assert_eq!(map2.decompose(a1).rank, 1);
        c.enqueue(
            MemRequest {
                id: 0,
                loc: map2.decompose(a0),
                pattern: PatternId(0),
                kind: AccessKind::Read,
            },
            0,
        );
        c.enqueue(
            MemRequest {
                id: 1,
                loc: map2.decompose(a1),
                pattern: PatternId(0),
                kind: AccessKind::Read,
            },
            0,
        );
        let end = c.drain();
        let done = c.take_completions(end);
        let mut ats: Vec<u64> = done.iter().map(|x| x.at).collect();
        ats.sort_unstable();
        assert!(
            ats[1] - ats[0] >= t.burst + t.rtrs,
            "bursts too close: {ats:?}"
        );
        crate::verify::check_trace(c.trace().unwrap(), &t, 8).unwrap();
    }

    #[test]
    fn closed_policy_precharges_idle_rows() {
        let mut c = MemController::new(ControllerConfig {
            row_policy: RowPolicy::Closed,
            refresh: false,
            ..ControllerConfig::default()
        });
        c.enable_trace();
        c.enqueue(read_req(1, 0), 0);
        c.advance(1000);
        assert_eq!(c.take_completions(1000).len(), 1);
        // The row was closed by policy, without any conflicting access.
        assert_eq!(c.stats().precharges, 1);
        // A second access to a different row pays no conflict precharge.
        c.enqueue(read_req(2, 65536), 1000);
        c.advance(5000);
        assert_eq!(c.stats().row_conflicts, 0);
        crate::verify::check_trace(c.trace().unwrap(), &TimingParams::ddr3_1600(), 8).unwrap();
    }

    #[test]
    fn closed_policy_spares_rows_with_queued_hits() {
        let mut c = MemController::new(ControllerConfig {
            row_policy: RowPolicy::Closed,
            refresh: false,
            ..ControllerConfig::default()
        });
        // Two hits to the same row queued together: no precharge between
        // them.
        c.enqueue(read_req(1, 0), 0);
        c.enqueue(read_req(2, 64), 0);
        c.advance(10_000);
        let done = c.take_completions(10_000);
        let t = TimingParams::ddr3_1600();
        assert_eq!(done[1].at - done[0].at, t.ccd, "second hit not delayed");
    }

    #[test]
    fn open_vs_closed_tradeoff() {
        // Streaming (row hits) favours open; random rows favour closed.
        let stream = |policy| {
            let mut c = MemController::new(ControllerConfig {
                row_policy: policy,
                refresh: false,
                ..ControllerConfig::default()
            });
            for i in 0..32u64 {
                c.enqueue(read_req(i, i * 64), i * 40);
            }
            c.drain()
        };
        assert!(stream(RowPolicy::Open) <= stream(RowPolicy::Closed));

        let random_rows = |policy| {
            let mut c = MemController::new(ControllerConfig {
                row_policy: policy,
                refresh: false,
                ..ControllerConfig::default()
            });
            for i in 0..32u64 {
                // Same bank, different row each time, spaced out enough
                // for the auto-precharge to win.
                c.enqueue(read_req(i, i * 65536), i * 120);
            }
            c.drain()
        };
        assert!(random_rows(RowPolicy::Closed) < random_rows(RowPolicy::Open));
    }

    #[test]
    fn energy_accumulates_with_activity() {
        let mut c = MemController::new(quiet_cfg());
        c.enqueue(read_req(1, 0), 0);
        c.advance(10_000);
        let e = c.energy();
        assert!(e.activation_nj > 0.0);
        assert!(e.read_nj > 0.0);
        assert!(e.background_nj > 0.0);
        assert!(e.total_nj() > e.read_nj);
    }

    #[test]
    fn bus_busy_cycles_track_bursts() {
        let mut c = MemController::new(quiet_cfg());
        for i in 0..16 {
            c.enqueue(read_req(i, i * 64), 0);
        }
        let end = c.drain();
        let t = TimingParams::ddr3_1600();
        assert_eq!(c.stats().bus_busy_cycles, 16 * t.burst);
        assert!(c.stats().bus_utilisation(end) > 0.0);
        assert!(c.stats().bus_utilisation(end) <= 1.0);
        assert_eq!(c.stats().bus_utilisation(0), 0.0);
    }

    #[test]
    fn latency_counters_and_histograms_agree() {
        let mut c = MemController::new(quiet_cfg());
        for i in 0..16 {
            c.enqueue(read_req(i, i * 64 * 997), 0);
        }
        let end = c.drain();
        c.take_completions(end);
        let s = c.stats();
        let h = c.read_latency_hist();
        assert_eq!(h.count(), s.reads);
        assert_eq!(h.sum(), s.total_read_latency);
        assert_eq!(h.min(), s.min_read_latency);
        assert_eq!(h.max(), s.max_read_latency);
        assert!(s.min_read_latency > 0);
        assert!(s.min_read_latency <= s.max_read_latency);
        // One depth sample per serviced request; all 16 were queued
        // when the first retired.
        assert_eq!(c.queue_depth_hist().count(), s.reads + s.writes);
        assert_eq!(c.queue_depth_hist().max(), 16);
        assert_eq!(c.queue_depth_hist().min(), 1);
    }

    #[test]
    fn observed_advance_emits_commands_and_service_events() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<SimEvent>>> = Rc::default();
        let log = Rc::clone(&seen);
        let mut hub = EventHub::new();
        hub.attach(Box::new(move |ev: &SimEvent| log.borrow_mut().push(*ev)));
        let mut c = MemController::new(quiet_cfg());
        c.set_channel(3);
        c.enqueue(read_req(1, 0), 0);
        c.advance_observed(1000, &mut hub);
        let done = c.take_completions(1000);
        let seen = seen.borrow();
        // A cold read is exactly ACT then READ.
        let kinds: Vec<DramCmdKind> = seen
            .iter()
            .filter_map(|e| match *e {
                SimEvent::DramCommand { channel, kind, .. } => {
                    assert_eq!(channel, 3);
                    Some(kind)
                }
                _ => None,
            })
            .collect();
        assert_eq!(kinds, [DramCmdKind::Activate, DramCmdKind::Read]);
        let service = seen
            .iter()
            .find_map(|e| match *e {
                SimEvent::DramService {
                    id,
                    channel,
                    outcome,
                    queue_depth,
                    arrived_at_mem,
                    done_at_mem,
                    write,
                    ..
                } => Some((
                    id,
                    channel,
                    outcome,
                    queue_depth,
                    arrived_at_mem,
                    done_at_mem,
                    write,
                )),
                _ => None,
            })
            .expect("one DramService event");
        assert_eq!(service, (1, 3, RowOutcome::Closed, 1, 0, done[0].at, false));
    }

    #[test]
    fn observation_does_not_change_behaviour() {
        // An attached sink must not perturb scheduling, completions or
        // statistics — the bit-identity invariant at controller level.
        let run = |observe: bool| {
            let mut c = MemController::new(ControllerConfig::default());
            let mut hub = EventHub::new();
            if observe {
                hub.attach(Box::new(|_: &SimEvent| {}));
            }
            for i in 0..32 {
                c.enqueue(read_req(i, i * 64 * 997), i * 3);
            }
            let mut t = 0;
            while c.pending() > 0 {
                t += 1000;
                c.advance_observed(t, &mut hub);
            }
            (
                c.take_completions(t),
                c.stats(),
                c.read_latency_hist().clone(),
                c.queue_depth_hist().clone(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stats_track_hit_rate() {
        let mut c = MemController::new(quiet_cfg());
        for i in 0..16 {
            c.enqueue(read_req(i, i * 64), 0);
        }
        c.advance(100_000);
        let s = c.stats();
        assert_eq!(s.reads, 16);
        assert_eq!(s.row_hits, 15);
        assert!(s.row_hit_rate() > 0.9);
        assert!(s.avg_read_latency() > 0.0);
    }
}
