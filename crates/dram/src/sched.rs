//! Scheduling engines: pluggable command-selection policies for the
//! memory controller.
//!
//! The controller picks the next DRAM command in two passes (DESIGN.md
//! §3.5): pass 1 chooses one *representative* request per (rank, bank)
//! pair; pass 2 picks the globally best representative. Both passes
//! delegate their ordering decisions to a [`Scheduler`] engine, so the
//! policy is a swappable stage rather than a hard-coded branch:
//!
//! * [`FrFcfs`] — the paper's Table 1 policy: row hits first, then
//!   oldest-first. Produces the §5.1 inter-thread starvation.
//! * [`Fcfs`] — strict arrival order per bank; the ablation baseline.
//! * [`FrFcfsCap`] — FR-FCFS with a starvation cap: after `cap`
//!   row-hit bypasses of the oldest pending request, the engine
//!   promotes that request ahead of younger hits (a simplified
//!   FR-FCFS+Cap in the spirit of batch schedulers such as PAR-BS).
//! * [`BankRr`] — a bank-round-robin batch scheduler: serves up to
//!   `batch` column commands from one bank, then rotates a cursor to
//!   the next bank with pending work.
//!
//! Engines are deliberately *decision-only*: they order candidates and
//! report what they did ([`SchedFeedback`]); the controller owns all
//! clocks, stats, energy and event emission. Determinism contract: a
//! scheduler's choice may depend only on the candidate list and its own
//! (deterministically updated) state — never on wall-clock time or
//! hashing.

use crate::command::DramCommand;
use crate::timing::Cycles;

/// Scheduling policy selector (FR-FCFS is the paper's; the others are
/// ablation baselines). This is the plain-data configuration value;
/// [`SchedPolicy::engine`] builds the corresponding [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-ready, first-come-first-served: row hits first.
    FrFcfs,
    /// Strict arrival order per bank.
    Fcfs,
    /// FR-FCFS with a starvation cap.
    FrFcfsCap {
        /// Row-hit bypasses tolerated before the oldest pending
        /// request is promoted ahead of younger hits.
        cap: u32,
    },
    /// Bank-round-robin batch scheduling.
    BankRr {
        /// Column commands served from one bank before the round-robin
        /// cursor advances to the next bank.
        batch: u32,
    },
}

impl SchedPolicy {
    /// Default starvation cap for [`SchedPolicy::FrFcfsCap`].
    pub const DEFAULT_CAP: u32 = 4;
    /// Default batch size for [`SchedPolicy::BankRr`].
    pub const DEFAULT_BATCH: u32 = 4;

    /// Parses a policy name as accepted by the `--sched` flag:
    /// `fr-fcfs`, `fcfs`, `fr-fcfs-cap[:N]`, `bank-rr[:N]`
    /// (`frfcfs`/`frfcfs-cap` spellings are accepted too).
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let param_u32 = |default: u32| match param {
            None => Some(default),
            Some(p) => p.parse::<u32>().ok().filter(|&v| v > 0),
        };
        match name {
            "fr-fcfs" | "frfcfs" => param.is_none().then_some(SchedPolicy::FrFcfs),
            "fcfs" => param.is_none().then_some(SchedPolicy::Fcfs),
            "fr-fcfs-cap" | "frfcfs-cap" => {
                param_u32(Self::DEFAULT_CAP).map(|cap| SchedPolicy::FrFcfsCap { cap })
            }
            "bank-rr" | "bankrr" => {
                param_u32(Self::DEFAULT_BATCH).map(|batch| SchedPolicy::BankRr { batch })
            }
            _ => None,
        }
    }

    /// Canonical label, stable across runs (used in run ids and the
    /// machine description line).
    pub fn label(&self) -> String {
        match self {
            SchedPolicy::FrFcfs => "fr-fcfs".to_string(),
            SchedPolicy::Fcfs => "fcfs".to_string(),
            SchedPolicy::FrFcfsCap { cap } => format!("fr-fcfs-cap{cap}"),
            SchedPolicy::BankRr { batch } => format!("bank-rr{batch}"),
        }
    }

    /// Builds the scheduling engine for a channel with `ranks` ranks of
    /// `banks` banks each.
    pub fn engine(&self, ranks: usize, banks: usize) -> Box<dyn Scheduler> {
        match *self {
            SchedPolicy::FrFcfs => Box::new(FrFcfs),
            SchedPolicy::Fcfs => Box::new(Fcfs),
            SchedPolicy::FrFcfsCap { cap } => Box::new(FrFcfsCap::new(cap)),
            SchedPolicy::BankRr { batch } => Box::new(BankRr::new(batch, ranks, banks)),
        }
    }
}

/// The per-request view pass 1 orders by: whether the request's next
/// column command would hit the open row, and its arrival sequence
/// number (smaller = older).
#[derive(Debug, Clone, Copy)]
pub struct QueueView {
    /// Whether the request hits the currently open row of its bank.
    pub is_hit: bool,
    /// Arrival sequence number within the controller.
    pub seq: u64,
}

/// A per-(rank, bank) representative request with its next command and
/// the earliest cycle that command could legally issue.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Index of the represented request in its queue.
    pub queue_idx: usize,
    /// Rank the command targets.
    pub rank: usize,
    /// Bank the command targets.
    pub bank: usize,
    /// The next command on the request's behalf (ACT/PRE/column).
    pub cmd: DramCommand,
    /// Earliest legal issue cycle (timing, command bus, data bus).
    pub ready: Cycles,
    /// Whether the request hits the currently open row.
    pub is_hit: bool,
    /// Arrival sequence number.
    pub seq: u64,
}

/// A retired request, reported to the engine after its column command
/// issued.
#[derive(Debug, Clone, Copy)]
pub struct Retired {
    /// Arrival sequence number of the serviced request.
    pub seq: u64,
    /// Whether it was serviced as a row hit.
    pub is_hit: bool,
    /// Flat (rank, bank) slot index: `rank * banks + bank`.
    pub slot: usize,
    /// Oldest arrival sequence number still pending in the same queue
    /// at the moment of service (the serviced request included).
    pub oldest_seq: u64,
}

/// What an engine did at a retire, for the controller to fold into
/// stats and telemetry. Engines that take no fairness decisions (the
/// default [`FrFcfs`], and [`Fcfs`]) always report
/// [`SchedFeedback::NONE`], which keeps the default stats schema — and
/// therefore the pinned figure JSON — unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedFeedback {
    /// A younger row hit was serviced while an older request waited.
    pub hit_bypass: bool,
    /// The starvation cap forced the oldest request to be serviced.
    pub promoted: bool,
    /// The round-robin cursor rotated to the next bank.
    pub rotated: bool,
}

impl SchedFeedback {
    /// No decision taken.
    pub const NONE: SchedFeedback = SchedFeedback {
        hit_bypass: false,
        promoted: false,
        rotated: false,
    };
}

/// A command-selection engine. See the module docs for the contract;
/// `prefers` must be a strict ordering criterion (irreflexive), and
/// `select` must be deterministic in `cands` and engine state.
///
/// `Send` so a whole controller can move to a shard thread during the
/// channel-sharded advance ([`crate::shard`]); engines are plain data,
/// never shared between threads.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Pass 1: whether request `a` should represent its bank over `b`.
    fn prefers(&self, a: QueueView, b: QueueView) -> bool;

    /// Pass 2: index into `cands` of the command to issue next.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `cands` is empty; the controller
    /// never calls `select` with an empty list.
    fn select(&self, cands: &[Candidate]) -> usize;

    /// Reports a serviced request so stateful engines can update their
    /// fairness bookkeeping. Stateless engines use the default no-op.
    fn on_retire(&mut self, retired: Retired) -> SchedFeedback {
        let _ = retired;
        SchedFeedback::NONE
    }
}

/// Picks the index of the minimum candidate by `(ready, !is_hit, seq)`
/// — the classic FR-FCFS global ordering. `seq` is unique per queue,
/// so the minimum is unambiguous.
fn select_first_ready(cands: &[Candidate]) -> usize {
    cands
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| (c.ready, !c.is_hit, c.seq))
        .map(|(i, _)| i)
        // gsdram-lint: allow(D4) the controller never schedules an empty candidate list
        .expect("select on empty candidate list")
}

/// Picks the index of the oldest candidate (minimum `seq`).
fn select_oldest(cands: &[Candidate]) -> usize {
    cands
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| c.seq)
        .map(|(i, _)| i)
        // gsdram-lint: allow(D4) the controller never schedules an empty candidate list
        .expect("select on empty candidate list")
}

/// First-ready FCFS: row hits beat non-hits, ties by age (Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfs;

impl Scheduler for FrFcfs {
    fn prefers(&self, a: QueueView, b: QueueView) -> bool {
        (a.is_hit && !b.is_hit) || (a.is_hit == b.is_hit && a.seq < b.seq)
    }

    fn select(&self, cands: &[Candidate]) -> usize {
        select_first_ready(cands)
    }
}

/// Strict arrival order per bank; banks still interleave by readiness.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Scheduler for Fcfs {
    fn prefers(&self, a: QueueView, b: QueueView) -> bool {
        a.seq < b.seq
    }

    fn select(&self, cands: &[Candidate]) -> usize {
        select_first_ready(cands)
    }
}

/// FR-FCFS with a starvation cap: behaves exactly like [`FrFcfs`]
/// until `cap` row hits have bypassed the oldest pending request;
/// it then switches to oldest-first (both passes) until that request
/// is serviced, and resets.
#[derive(Debug, Clone, Copy)]
pub struct FrFcfsCap {
    cap: u32,
    bypasses: u32,
}

impl FrFcfsCap {
    /// An engine promoting the oldest request after `cap` bypasses.
    pub fn new(cap: u32) -> Self {
        FrFcfsCap { cap, bypasses: 0 }
    }

    fn capped(&self) -> bool {
        self.bypasses >= self.cap
    }
}

impl Scheduler for FrFcfsCap {
    fn prefers(&self, a: QueueView, b: QueueView) -> bool {
        if self.capped() {
            a.seq < b.seq
        } else {
            FrFcfs.prefers(a, b)
        }
    }

    fn select(&self, cands: &[Candidate]) -> usize {
        if self.capped() {
            select_oldest(cands)
        } else {
            select_first_ready(cands)
        }
    }

    fn on_retire(&mut self, retired: Retired) -> SchedFeedback {
        let mut fb = SchedFeedback::NONE;
        if retired.seq == retired.oldest_seq {
            fb.promoted = self.capped();
            self.bypasses = 0;
        } else if retired.is_hit {
            self.bypasses += 1;
            fb.hit_bypass = true;
        }
        fb
    }
}

/// Bank-round-robin batch scheduler: a cursor walks the (rank, bank)
/// slots; among equally ready candidates, the one closest past the
/// cursor wins, and after `batch` consecutive services from one slot
/// the cursor rotates to the next slot.
#[derive(Debug, Clone, Copy)]
pub struct BankRr {
    batch: u32,
    banks: usize,
    slots: usize,
    cursor: usize,
    in_batch: u32,
}

impl BankRr {
    /// An engine for `ranks` ranks of `banks` banks, rotating after
    /// `batch` consecutive services from one bank.
    pub fn new(batch: u32, ranks: usize, banks: usize) -> Self {
        BankRr {
            batch: batch.max(1),
            banks,
            slots: (ranks * banks).max(1),
            cursor: 0,
            in_batch: 0,
        }
    }

    fn slot(&self, rank: usize, bank: usize) -> usize {
        rank * self.banks + bank
    }

    /// Cyclic distance from the cursor (0 = the cursor's own slot).
    fn distance(&self, slot: usize) -> usize {
        (slot + self.slots - self.cursor) % self.slots
    }
}

impl Scheduler for BankRr {
    fn prefers(&self, a: QueueView, b: QueueView) -> bool {
        // Within a bank the batch is served oldest-first, so a bank
        // cannot starve its own old requests behind younger hits.
        a.seq < b.seq
    }

    fn select(&self, cands: &[Candidate]) -> usize {
        cands
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.ready, self.distance(self.slot(c.rank, c.bank)), c.seq))
            .map(|(i, _)| i)
            // gsdram-lint: allow(D4) the controller never schedules an empty candidate list
            .expect("select on empty candidate list")
    }

    fn on_retire(&mut self, retired: Retired) -> SchedFeedback {
        if retired.slot == self.cursor {
            self.in_batch += 1;
        } else {
            // The scheduler moved on (readiness forced it, or the
            // cursor's bank had nothing): restart the batch there.
            self.cursor = retired.slot % self.slots;
            self.in_batch = 1;
        }
        let mut fb = SchedFeedback::NONE;
        if self.in_batch >= self.batch {
            self.cursor = (self.cursor + 1) % self.slots;
            self.in_batch = 0;
            fb.rotated = true;
        }
        fb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(
        queue_idx: usize,
        rank: usize,
        bank: usize,
        ready: Cycles,
        is_hit: bool,
        seq: u64,
    ) -> Candidate {
        Candidate {
            queue_idx,
            rank,
            bank,
            cmd: DramCommand::Precharge { bank },
            ready,
            is_hit,
            seq,
        }
    }

    fn view(is_hit: bool, seq: u64) -> QueueView {
        QueueView { is_hit, seq }
    }

    #[test]
    fn policy_labels_round_trip_through_parse() {
        for p in [
            SchedPolicy::FrFcfs,
            SchedPolicy::Fcfs,
            SchedPolicy::FrFcfsCap { cap: 4 },
            SchedPolicy::FrFcfsCap { cap: 9 },
            SchedPolicy::BankRr { batch: 4 },
            SchedPolicy::BankRr { batch: 2 },
        ] {
            let label = p.label();
            // Labels are human-facing; the parse spelling inserts `:`
            // before the numeric parameter.
            let spelling = match p {
                SchedPolicy::FrFcfsCap { cap } => format!("fr-fcfs-cap:{cap}"),
                SchedPolicy::BankRr { batch } => format!("bank-rr:{batch}"),
                _ => label.clone(),
            };
            assert_eq!(SchedPolicy::parse(&spelling), Some(p), "{label}");
        }
        assert_eq!(
            SchedPolicy::parse("fr-fcfs-cap"),
            Some(SchedPolicy::FrFcfsCap {
                cap: SchedPolicy::DEFAULT_CAP
            })
        );
        assert_eq!(
            SchedPolicy::parse("bank-rr"),
            Some(SchedPolicy::BankRr {
                batch: SchedPolicy::DEFAULT_BATCH
            })
        );
        assert_eq!(SchedPolicy::parse("nonsense"), None);
        assert_eq!(SchedPolicy::parse("fr-fcfs-cap:0"), None);
        assert_eq!(SchedPolicy::parse("fcfs:3"), None);
    }

    #[test]
    fn frfcfs_orders_hits_then_age() {
        let s = FrFcfs;
        assert!(s.prefers(view(true, 9), view(false, 1)));
        assert!(!s.prefers(view(false, 1), view(true, 9)));
        assert!(s.prefers(view(true, 1), view(true, 2)));
        assert!(s.prefers(view(false, 1), view(false, 2)));
        // Global: readiness first, then hit, then age.
        let cands = [
            cand(0, 0, 0, 10, false, 0),
            cand(1, 0, 1, 5, false, 3),
            cand(2, 0, 2, 5, true, 4),
        ];
        assert_eq!(s.select(&cands), 2);
    }

    #[test]
    fn fcfs_ignores_hits() {
        let s = Fcfs;
        assert!(!s.prefers(view(true, 9), view(false, 1)));
        assert!(s.prefers(view(false, 1), view(true, 9)));
    }

    #[test]
    fn cap_engine_switches_to_oldest_first_and_reports() {
        let mut s = FrFcfsCap::new(2);
        // Two row-hit bypasses of the oldest request (seq 1)...
        for seq in [5, 6] {
            let fb = s.on_retire(Retired {
                seq,
                is_hit: true,
                slot: 0,
                oldest_seq: 1,
            });
            assert!(fb.hit_bypass && !fb.promoted);
        }
        // ...flip both passes to oldest-first.
        assert!(s.capped());
        assert!(s.prefers(view(false, 1), view(true, 9)));
        let cands = [cand(0, 0, 0, 5, true, 9), cand(1, 0, 1, 5, false, 1)];
        assert_eq!(s.select(&cands), 1);
        // Serving the oldest is the promotion, and resets the count.
        let fb = s.on_retire(Retired {
            seq: 1,
            is_hit: false,
            slot: 1,
            oldest_seq: 1,
        });
        assert!(fb.promoted && !fb.hit_bypass);
        assert!(!s.capped());
        // Non-hit bypasses neither count nor promote.
        let fb = s.on_retire(Retired {
            seq: 7,
            is_hit: false,
            slot: 0,
            oldest_seq: 2,
        });
        assert_eq!(fb, SchedFeedback::NONE);
    }

    #[test]
    fn bank_rr_rotates_after_a_full_batch() {
        let mut s = BankRr::new(2, 1, 8);
        // Equal readiness: the cursor's bank (0) wins over bank 1.
        let cands = [cand(0, 0, 1, 5, true, 1), cand(1, 0, 0, 5, false, 2)];
        assert_eq!(s.select(&cands), 1);
        assert_eq!(
            s.on_retire(Retired {
                seq: 2,
                is_hit: false,
                slot: 0,
                oldest_seq: 1
            }),
            SchedFeedback::NONE
        );
        // Second service from bank 0 completes the batch: rotate.
        let fb = s.on_retire(Retired {
            seq: 3,
            is_hit: true,
            slot: 0,
            oldest_seq: 1,
        });
        assert!(fb.rotated);
        assert_eq!(s.select(&cands), 0, "cursor now favours bank 1");
        // An off-cursor service restarts the batch at that slot.
        let fb = s.on_retire(Retired {
            seq: 4,
            is_hit: true,
            slot: 5,
            oldest_seq: 4,
        });
        assert_eq!(fb, SchedFeedback::NONE);
        assert_eq!(s.cursor, 5);
    }

    #[test]
    fn engines_build_from_policy() {
        for p in [
            SchedPolicy::FrFcfs,
            SchedPolicy::Fcfs,
            SchedPolicy::FrFcfsCap { cap: 1 },
            SchedPolicy::BankRr { batch: 1 },
        ] {
            let e = p.engine(1, 8);
            let cands = [cand(0, 0, 0, 0, false, 0)];
            assert_eq!(e.select(&cands), 0, "{}", p.label());
        }
    }
}
