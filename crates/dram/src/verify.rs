//! Independent DDR3 command-trace verification.
//!
//! [`check_trace`] replays a [`TimedCommand`] log against the JEDEC
//! rules, re-deriving every constraint independently of the
//! [`Rank`](crate::bank::Rank) state machine — so a bookkeeping bug in
//! the controller cannot mask itself. The controller's own tests and
//! the property suite run every generated trace through it; users
//! embedding the controller can do the same via
//! [`MemController::enable_trace`](crate::controller::MemController::enable_trace).

use crate::command::{DramCommand, TimedCommand};
use crate::timing::{Cycles, TimingParams};
use core::fmt;

/// A specific timing-rule violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingViolation {
    /// Cycle of the offending command.
    pub at: Cycles,
    /// The rule violated (e.g. "tRCD", "tFAW", "bus conflict").
    pub rule: &'static str,
    /// Human-readable details.
    pub detail: String,
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation at cycle {}: {}",
            self.rule, self.at, self.detail
        )
    }
}

impl std::error::Error for TimingViolation {}

/// Replays `trace` (for a rank of `banks` banks) against the DDR3 rules
/// in `t`.
///
/// # Errors
///
/// Returns the first [`TimingViolation`] encountered; `Ok(())` means the
/// whole trace is JEDEC-legal.
pub fn check_trace(
    trace: &[TimedCommand],
    t: &TimingParams,
    banks: usize,
) -> Result<(), TimingViolation> {
    let ranks = trace.iter().map(|c| c.rank + 1).max().unwrap_or(1);
    // Per-rank state.
    let mut open: Vec<Vec<Option<u32>>> = vec![vec![None; banks]; ranks];
    let mut last_act = vec![vec![None::<u64>; banks]; ranks];
    let mut last_pre = vec![vec![None::<u64>; banks]; ranks];
    let mut acts: Vec<Vec<u64>> = vec![Vec::new(); ranks];
    let mut refresh_until: Vec<u64> = vec![0; ranks];
    // tCCD/tWTR/read-to-write turnaround are per-rank device
    // constraints; cross-rank spacing is enforced by the shared-bus
    // burst check below.
    let mut last_col_read: Vec<Option<u64>> = vec![None; ranks];
    let mut last_col_write: Vec<Option<u64>> = vec![None; ranks];
    let mut last_cmd_at: Option<u64> = None;
    // Shared data bus: (burst end, driving rank).
    let mut last_burst: Option<(u64, usize)> = None;

    let err = |at, rule, detail: String| Err(TimingViolation { at, rule, detail });

    for tc in trace {
        let at = tc.at;
        let r = tc.rank;
        let open = &mut open[r];
        let last_act = &mut last_act[r];
        let last_pre = &mut last_pre[r];
        let acts = &mut acts[r];
        let refresh_until = &mut refresh_until[r];
        let rank_col_read = last_col_read[r];
        let rank_col_write = last_col_write[r];
        if let Some(prev) = last_cmd_at {
            if at == prev {
                return err(at, "command bus", "two commands in one cycle".into());
            }
            if at < prev {
                return err(at, "ordering", format!("trace goes backwards after {prev}"));
            }
        }
        last_cmd_at = Some(at);
        match tc.cmd {
            DramCommand::Activate { bank, row } => {
                if open[bank].is_some() {
                    return err(at, "state", format!("ACT to open bank {bank}"));
                }
                if at < *refresh_until {
                    return err(
                        at,
                        "tRFC",
                        format!("ACT during refresh (until {refresh_until})"),
                    );
                }
                if let Some(a) = last_act[bank] {
                    if at < a + t.rc {
                        return err(
                            at,
                            "tRC",
                            format!("bank {bank} re-activated {} early", a + t.rc - at),
                        );
                    }
                }
                if let Some(p) = last_pre[bank] {
                    if at < p + t.rp {
                        return err(
                            at,
                            "tRP",
                            format!("bank {bank} activated {} early", p + t.rp - at),
                        );
                    }
                }
                if let Some(&a) = acts.last() {
                    if at < a + t.rrd {
                        return err(at, "tRRD", format!("activate {} early", a + t.rrd - at));
                    }
                }
                if acts.len() >= 4 {
                    let w = acts[acts.len() - 4];
                    if at < w + t.faw {
                        return err(at, "tFAW", format!("5th activate inside window from {w}"));
                    }
                }
                open[bank] = Some(row.0);
                last_act[bank] = Some(at);
                acts.push(at);
            }
            DramCommand::Precharge { bank } => {
                if open[bank].is_none() {
                    return err(at, "state", format!("PRE to closed bank {bank}"));
                }
                if let Some(a) = last_act[bank] {
                    if at < a + t.ras {
                        return err(
                            at,
                            "tRAS",
                            format!("bank {bank} precharged {} early", a + t.ras - at),
                        );
                    }
                }
                open[bank] = None;
                last_pre[bank] = Some(at);
            }
            DramCommand::Read { bank, .. } => {
                if open[bank].is_none() {
                    return err(at, "state", format!("READ to closed bank {bank}"));
                }
                if let Some(a) = last_act[bank] {
                    if at < a + t.rcd {
                        return err(at, "tRCD", "read before row ready".into());
                    }
                }
                if let Some(prev_rd) = rank_col_read {
                    if at < prev_rd + t.ccd {
                        return err(at, "tCCD", "reads too close".into());
                    }
                }
                if let Some(w) = rank_col_write {
                    if at < w + t.cwl + t.burst + t.wtr {
                        return err(at, "tWTR", "read too soon after write burst".into());
                    }
                }
                let start = at + t.cl;
                if let Some((end, rank)) = last_burst {
                    let gap = if rank != r { t.rtrs } else { 0 };
                    if start < end + gap {
                        return err(at, "data bus", "read burst overlaps previous burst".into());
                    }
                }
                last_burst = Some((start + t.burst, r));
                last_col_read[r] = Some(at);
            }
            DramCommand::Write { bank, .. } => {
                if open[bank].is_none() {
                    return err(at, "state", format!("WRITE to closed bank {bank}"));
                }
                if let Some(a) = last_act[bank] {
                    if at < a + t.rcd {
                        return err(at, "tRCD", "write before row ready".into());
                    }
                }
                if let Some(w) = rank_col_write {
                    if at < w + t.ccd {
                        return err(at, "tCCD", "writes too close".into());
                    }
                }
                if let Some(prev_rd) = rank_col_read {
                    if at + t.cwl < prev_rd + t.cl + t.burst + t.rtw {
                        return err(
                            at,
                            "bus turnaround",
                            "write data collides with read burst".into(),
                        );
                    }
                }
                let start = at + t.cwl;
                if let Some((end, rank)) = last_burst {
                    let gap = if rank != r { t.rtrs } else { 0 };
                    if start < end + gap {
                        return err(at, "data bus", "write burst overlaps previous burst".into());
                    }
                }
                last_burst = Some((start + t.burst, r));
                last_col_write[r] = Some(at);
            }
            DramCommand::Refresh => {
                if open.iter().any(Option::is_some) {
                    return err(at, "state", "REF with open banks".into());
                }
                *refresh_until = at + t.rfc;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsdram_core::{ColumnId, PatternId, RowId};

    fn act(at: u64, bank: usize, row: u32) -> TimedCommand {
        TimedCommand {
            at,
            rank: 0,
            cmd: DramCommand::Activate {
                bank,
                row: RowId(row),
            },
        }
    }

    fn read(at: u64, bank: usize) -> TimedCommand {
        TimedCommand {
            at,
            rank: 0,
            cmd: DramCommand::Read {
                bank,
                col: ColumnId(0),
                pattern: PatternId(0),
            },
        }
    }

    fn pre(at: u64, bank: usize) -> TimedCommand {
        TimedCommand {
            at,
            rank: 0,
            cmd: DramCommand::Precharge { bank },
        }
    }

    #[test]
    fn accepts_legal_sequence() {
        let t = TimingParams::ddr3_1600();
        let trace = vec![act(0, 0, 1), read(t.rcd, 0), pre(t.ras, 0)];
        check_trace(&trace, &t, 8).unwrap();
    }

    #[test]
    fn catches_trcd() {
        let t = TimingParams::ddr3_1600();
        let trace = vec![act(0, 0, 1), read(t.rcd - 1, 0)];
        let e = check_trace(&trace, &t, 8).unwrap_err();
        assert_eq!(e.rule, "tRCD");
        assert!(e.to_string().contains("tRCD"));
    }

    #[test]
    fn catches_tras() {
        let t = TimingParams::ddr3_1600();
        let trace = vec![act(0, 0, 1), pre(t.ras - 1, 0)];
        assert_eq!(check_trace(&trace, &t, 8).unwrap_err().rule, "tRAS");
    }

    #[test]
    fn catches_double_activate() {
        let t = TimingParams::ddr3_1600();
        let trace = vec![act(0, 0, 1), act(5, 0, 2)];
        assert_eq!(check_trace(&trace, &t, 8).unwrap_err().rule, "state");
    }

    #[test]
    fn catches_faw() {
        let t = TimingParams::ddr3_1600();
        let mut trace = Vec::new();
        let mut at = 0;
        for b in 0..5usize {
            trace.push(act(at, b, 1));
            at += t.rrd;
        }
        // 5 activates spaced only by tRRD violate tFAW (4*tRRD < tFAW).
        assert!(4 * t.rrd < t.faw, "test premise");
        assert_eq!(check_trace(&trace, &t, 8).unwrap_err().rule, "tFAW");
    }

    #[test]
    fn catches_bus_double_issue() {
        let t = TimingParams::ddr3_1600();
        let trace = vec![act(0, 0, 1), act(0, 1, 1)];
        assert_eq!(check_trace(&trace, &t, 8).unwrap_err().rule, "command bus");
    }

    #[test]
    fn catches_refresh_with_open_bank() {
        let t = TimingParams::ddr3_1600();
        let trace = vec![
            act(0, 0, 1),
            TimedCommand {
                at: 5,
                rank: 0,
                cmd: DramCommand::Refresh,
            },
        ];
        assert_eq!(check_trace(&trace, &t, 8).unwrap_err().rule, "state");
    }
}
